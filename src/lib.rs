//! # amcad
//!
//! Facade crate for the Rust reproduction of **AMCAD: Adaptive
//! Mixed-Curvature Representation based Advertisement Retrieval System**
//! (ICDE 2022).
//!
//! The implementation is split into focused crates, all re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`manifold`] | `amcad-manifold` | κ-stereographic constant-curvature and product-manifold math |
//! | [`autodiff`] | `amcad-autodiff` | reverse-mode autodiff, parameter store, AdaGrad |
//! | [`graph`] | `amcad-graph` | heterogeneous query–item–ad graph engine, meta-path sampling |
//! | [`datagen`] | `amcad-datagen` | synthetic sponsored-search behaviour-log generator |
//! | [`model`] | `amcad-model` | the adaptive mixed-curvature model family + walk baselines |
//! | [`mnn`] | `amcad-mnn` | pluggable ANN backends (`AnnIndex`): exact parallel scan, tangent-space IVF |
//! | [`retrieval`] | `amcad-retrieval` | the serving triad — `Retrieve` trait, `RetrievalEngine` / `ShardedEngine`, hot-swappable `EngineHandle` — plus delta publishes, durable snapshots and the serving runtime |
//! | [`eval`] | `amcad-eval` | ranking metrics and the A/B click/revenue simulator |
//! | [`core`] | `amcad-core` | the end-to-end pipeline and the offline evaluation protocol |
//!
//! ## Quickstart
//!
//! ```no_run
//! use amcad::core::{Pipeline, PipelineConfig};
//! use amcad::retrieval::Request;
//!
//! // logs → graph → training → indices → retrieval engine → metrics
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! println!("Next AUC = {:.2}", result.offline.next_auc);
//!
//! let session = &result.dataset.eval_sessions[0];
//! let response = result
//!     .engine
//!     .retrieve(&Request { query: session.query.0, preclick_items: vec![] })
//!     .expect("covered query");
//! println!(
//!     "retrieved {} ads via {:?} ({} postings scanned)",
//!     response.ads.len(),
//!     response.stats.coverage,
//!     response.stats.postings_scanned
//! );
//! ```
//!
//! ## The serving triad: `Retrieve`, `ShardedEngine`, `EngineHandle`
//!
//! Production callers program against the object-safe
//! [`retrieval::Retrieve`] trait; the deployment topology behind it —
//! shard count, replicas per shard, build-pool and fan-out-pool widths —
//! is a pure configuration choice that never changes a ranking:
//!
//! ```no_run
//! use amcad::core::{build_index_inputs, Pipeline, PipelineConfig};
//! use amcad::mnn::{IndexBackend, IvfConfig};
//! use amcad::retrieval::{EngineHandle, Retrieve, RetrievalEngine, ShardedEngine};
//!
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! let inputs = build_index_inputs(&result.export, &result.dataset);
//!
//! // one node: exact multi-threaded scan (the paper's MNN module) ...
//! let exact = RetrievalEngine::builder()
//!     .backend(IndexBackend::Exact)
//!     .build(&inputs)?;
//! // ... or approximate IVF with a recall/latency trade-off ...
//! let ivf = RetrievalEngine::builder()
//!     .backend(IndexBackend::Ivf(IvfConfig::default()))
//!     .build(&inputs)?;
//! assert_eq!(exact.indexes().total_keys(), ivf.indexes().total_keys());
//!
//! // ... or the paper's cluster shape: ads hash-partitioned across 4
//! // shards (each shard's index built concurrently on a scoped worker
//! // pool), 2 serving replicas per shard with round-robin failover, and
//! // the per-request fan-out gathered in parallel — all returning
//! // bit-identical rankings to the single exact engine
//! let sharded = ShardedEngine::builder()
//!     .shards(4)
//!     .replicas(2)
//!     .build_threads(4)
//!     .fanout_threads(2)
//!     .build(&inputs)?;
//!
//! // availability: a killed (or erroring) replica reroutes traffic to
//! // its siblings — every response records the route it took — and only
//! // a shard with zero healthy replicas degrades to a typed error
//! sharded.fail_replica(0, 1);
//! let response = sharded.retrieve(&amcad::retrieval::Request {
//!     query: 7,
//!     preclick_items: vec![],
//! })?;
//! println!("served by {:?}", response.stats.served_by);
//!
//! // live serving sits behind a hot-swappable handle: rebuild offline,
//! // publish with one snapshot swap, zero downtime
//! let handle = EngineHandle::new(sharded);
//! let serving: &dyn Retrieve = &handle;
//! # let _ = serving;
//! let rebuilt = ShardedEngine::builder().shards(4).replicas(2).build(&inputs)?;
//! let generation = handle.publish(rebuilt);
//! assert_eq!(handle.generation(), generation);
//! # Ok::<(), amcad::retrieval::RetrievalError>(())
//! ```
//!
//! ## Delta publishes: incremental freshness between rebuilds
//!
//! Full rebuilds cover the daily retrain; the ad corpus churns far more
//! often. A delta publish appends / retires ads **in place** between
//! generations — only the ad-side postings of only the touched shards
//! are updated (untouched shards reuse their `Arc`'d index storage
//! pointer-identically), and the resulting rankings are property-tested
//! bit-identical to a from-scratch rebuild of the post-delta corpus:
//!
//! ```no_run
//! use amcad::core::{build_index_inputs, Pipeline, PipelineConfig};
//! use amcad::retrieval::{EngineHandle, IndexDelta, ShardedDeltaBuilder, ShardedEngine};
//!
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! let inputs = build_index_inputs(&result.export, &result.dataset);
//!
//! // seed generation 1: per-shard delta state + the serving engine
//! let mut builder = ShardedDeltaBuilder::new(
//!     &inputs,
//!     ShardedEngine::builder().shards(4).replicas(2),
//! )?;
//! let handle = EngineHandle::new(builder.engine()?);
//!
//! // corpus churn: retire two ads (a retire-only delta needs no points;
//! // on-boarding new ads carries their projected points in both ad spaces)
//! let ads = inputs.ads_qa.ids();
//! let delta = IndexDelta::retire_only(&inputs, vec![ads[0], ads[1]]);
//! let generation = handle.publish_delta(&mut builder, &delta)?;
//! println!("generation {generation} live — no O(corpus²) rebuild, no downtime");
//! # Ok::<(), amcad::retrieval::RetrievalError>(())
//! ```
//!
//! Build inputs are validated on every path (duplicate ids →
//! `RetrievalError::DuplicateId`, retiring unknown ads →
//! `RetrievalError::UnknownAd`), and emptied deployments degrade to the
//! typed `EmptyIndex` / `ShardUnavailable` errors rather than panicking.
//! See `crates/retrieval/src/README.md` for the full append/retire
//! lifecycle and `table9_scalability` for the measured delta-vs-full
//! wall clock.
//!
//! ## The serving runtime: admission control, deadlines, hedging
//!
//! In production, correctness under load matters as much as correctness
//! of rankings. The [`retrieval::ServingRuntime`] puts a bounded
//! admission queue with per-request deadlines in front of any
//! `Arc<dyn Retrieve>`: when traffic outruns the workers, excess
//! requests are *shed* with the typed
//! `RetrievalError::Overloaded { queue_depth, deadline }` instead of
//! queueing without bound, requests that age past their deadline while
//! queued are shed rather than answered late, and queued neighbours are
//! drained into one scan-deduplicated `retrieve_batch` call. All serving
//! fan-out (shard gathers, batch dedup) runs on the long-lived parked
//! workers of [`retrieval::PersistentPool`] — no per-request thread
//! spawns. With `ShardedEngineBuilder::hedge_delay` and replicas ≥ 2, a
//! straggling shard gather is re-issued to a sibling replica after a
//! p9x-derived delay and the first response wins; per-replica weights
//! and `retrieval::warm_rollout` drain and relabel one replica at a
//! time so a deployment keeps serving generation G while G+1 warms from
//! a snapshot. `retrieval::Scenario` traffic (flash crowds, Zipf
//! popularity) drives it open-loop via `ServingRuntime::run_scenario`,
//! reporting shed / timeout / hedge counts and goodput per phase.
//!
//! The `PipelineConfig::with_backend` knob threads the backend selection
//! through the one-call pipeline, and `ServingSimulator` load-tests any
//! [`retrieval::Retrieve`] implementation (see
//! `examples/online_serving.rs` for the topology sweep plus the
//! flash-crowd shedding and hedged-recovery runtime demo,
//! `examples/incremental_training.rs` for the rebuild-and-publish loop,
//! and the `fig9_serving_latency` / `table9_scalability` benchmark
//! binaries for the latency, shard-count and offered-QPS-ladder sweeps).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness that regenerates every table and figure of the
//! paper.

pub use amcad_autodiff as autodiff;
pub use amcad_core as core;
pub use amcad_datagen as datagen;
pub use amcad_eval as eval;
pub use amcad_graph as graph;
pub use amcad_manifold as manifold;
pub use amcad_mnn as mnn;
pub use amcad_model as model;
pub use amcad_retrieval as retrieval;
