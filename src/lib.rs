//! # amcad
//!
//! Facade crate for the Rust reproduction of **AMCAD: Adaptive
//! Mixed-Curvature Representation based Advertisement Retrieval System**
//! (ICDE 2022).
//!
//! The implementation is split into focused crates, all re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`manifold`] | `amcad-manifold` | κ-stereographic constant-curvature and product-manifold math |
//! | [`autodiff`] | `amcad-autodiff` | reverse-mode autodiff, parameter store, AdaGrad |
//! | [`graph`] | `amcad-graph` | heterogeneous query–item–ad graph engine, meta-path sampling |
//! | [`datagen`] | `amcad-datagen` | synthetic sponsored-search behaviour-log generator |
//! | [`model`] | `amcad-model` | the adaptive mixed-curvature model family + walk baselines |
//! | [`mnn`] | `amcad-mnn` | mixed-curvature (approximate) nearest-neighbour index builder |
//! | [`retrieval`] | `amcad-retrieval` | two-layer online ad retrieval and serving simulator |
//! | [`eval`] | `amcad-eval` | ranking metrics and the A/B click/revenue simulator |
//! | [`core`] | `amcad-core` | the end-to-end pipeline and the offline evaluation protocol |
//!
//! ## Quickstart
//!
//! ```no_run
//! use amcad::core::{Pipeline, PipelineConfig};
//!
//! // logs → graph → training → indices → two-layer retrieval → metrics
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! println!("Next AUC = {:.2}", result.offline.next_auc);
//! let session = &result.dataset.eval_sessions[0];
//! let ads = result.retriever.retrieve(session.query.0, &[]);
//! println!("retrieved {} ads for the first next-day session", ads.len());
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness that regenerates every table and figure of the
//! paper.

pub use amcad_autodiff as autodiff;
pub use amcad_core as core;
pub use amcad_datagen as datagen;
pub use amcad_eval as eval;
pub use amcad_graph as graph;
pub use amcad_manifold as manifold;
pub use amcad_mnn as mnn;
pub use amcad_model as model;
pub use amcad_retrieval as retrieval;
