//! # amcad
//!
//! Facade crate for the Rust reproduction of **AMCAD: Adaptive
//! Mixed-Curvature Representation based Advertisement Retrieval System**
//! (ICDE 2022).
//!
//! The implementation is split into focused crates, all re-exported here:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`manifold`] | `amcad-manifold` | κ-stereographic constant-curvature and product-manifold math |
//! | [`autodiff`] | `amcad-autodiff` | reverse-mode autodiff, parameter store, AdaGrad |
//! | [`graph`] | `amcad-graph` | heterogeneous query–item–ad graph engine, meta-path sampling |
//! | [`datagen`] | `amcad-datagen` | synthetic sponsored-search behaviour-log generator |
//! | [`model`] | `amcad-model` | the adaptive mixed-curvature model family + walk baselines |
//! | [`mnn`] | `amcad-mnn` | pluggable ANN backends (`AnnIndex`): exact parallel scan, tangent-space IVF |
//! | [`retrieval`] | `amcad-retrieval` | the `RetrievalEngine` (two-layer retrieval, batching, typed errors) and serving simulator |
//! | [`eval`] | `amcad-eval` | ranking metrics and the A/B click/revenue simulator |
//! | [`core`] | `amcad-core` | the end-to-end pipeline and the offline evaluation protocol |
//!
//! ## Quickstart
//!
//! ```no_run
//! use amcad::core::{Pipeline, PipelineConfig};
//! use amcad::retrieval::Request;
//!
//! // logs → graph → training → indices → retrieval engine → metrics
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! println!("Next AUC = {:.2}", result.offline.next_auc);
//!
//! let session = &result.dataset.eval_sessions[0];
//! let response = result
//!     .engine
//!     .retrieve(&Request { query: session.query.0, preclick_items: vec![] })
//!     .expect("covered query");
//! println!(
//!     "retrieved {} ads via {:?} ({} postings scanned)",
//!     response.ads.len(),
//!     response.stats.coverage,
//!     response.stats.postings_scanned
//! );
//! ```
//!
//! ## Picking an ANN backend
//!
//! Index construction and serving are generic over the [`mnn::AnnIndex`]
//! backend; the engine builder selects one per deployment:
//!
//! ```no_run
//! use amcad::core::{build_index_inputs, Pipeline, PipelineConfig};
//! use amcad::mnn::{IndexBackend, IvfConfig};
//! use amcad::retrieval::RetrievalEngine;
//!
//! let result = Pipeline::new(PipelineConfig::small(42)).run();
//! let inputs = build_index_inputs(&result.export, &result.dataset);
//!
//! // exact multi-threaded scan (the paper's MNN module) ...
//! let exact = RetrievalEngine::builder()
//!     .backend(IndexBackend::Exact)
//!     .build(&inputs)?;
//! // ... or approximate IVF with a recall/latency trade-off
//! let ivf = RetrievalEngine::builder()
//!     .backend(IndexBackend::Ivf(IvfConfig::default()))
//!     .build(&inputs)?;
//! assert_eq!(exact.indexes().total_keys(), ivf.indexes().total_keys());
//! # Ok::<(), amcad::retrieval::RetrievalError>(())
//! ```
//!
//! The `PipelineConfig::with_backend` knob threads the same selection
//! through the one-call pipeline, and `ServingSimulator` load-tests any
//! engine (see `examples/online_serving.rs` and the `fig9_serving_latency`
//! benchmark binary for the exact-vs-IVF sweep).
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the experiment harness that regenerates every table and figure of the
//! paper.

pub use amcad_autodiff as autodiff;
pub use amcad_core as core;
pub use amcad_datagen as datagen;
pub use amcad_eval as eval;
pub use amcad_graph as graph;
pub use amcad_manifold as manifold;
pub use amcad_mnn as mnn;
pub use amcad_model as model;
pub use amcad_retrieval as retrieval;
