//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom`]. Deterministic, not cryptographically secure.

pub mod rngs;
pub mod seq;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift reduction.
#[inline]
fn reduce<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reduce(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reduce(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32);

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&f));
            let u = rng.gen_range(5..10usize);
            assert!((5..10).contains(&u));
            let i = rng.gen_range(0..=3u32);
            assert!(i <= 3);
            assert!(rng.gen::<f64>() < 1.0);
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn values_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
