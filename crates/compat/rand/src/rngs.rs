//! RNG implementations: only [`StdRng`].

use crate::{RngCore, SeedableRng};

/// xoshiro256++ generator, seeded through SplitMix64 (the conventional
/// seeding scheme for the xoshiro family).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's internal xoshiro256++ state. Together with
    /// [`StdRng::from_state`] this lets a durable snapshot resume the
    /// exact output stream a saved generator would have produced next —
    /// re-seeding would instead restart the stream from the beginning.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`].
    /// The restored generator continues the original output stream
    /// bit-for-bit.
    pub fn from_state(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        rng.next_u64();
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..8 {
            assert_eq!(resumed.next_u64(), rng.next_u64());
        }
    }
}
