//! Slice sampling helpers: [`SliceRandom`].

use crate::{Rng, RngCore};

/// Shuffling and element choice on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Iterator over `amount` distinct elements in random order (fewer if
    /// the slice is shorter), like rand's partial Fisher–Yates.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        let mut indices: Vec<usize> = (0..self.len()).collect();
        // partial Fisher–Yates: only the first `amount` positions are needed
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices
            .into_iter()
            .take(amount)
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
