//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut StdRng) -> i64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut StdRng) -> u64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Constructor used by the `prop_oneof!` macro.
pub fn one_of<V>(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

/// Fixed-length vector of samples from an element strategy (see
/// [`crate::collection::vec`]).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn just_and_oneof_sample_expected_values() {
        let mut rng = crate::new_rng(1);
        assert_eq!(Just(41).sample(&mut rng), 41);
        let s = prop_oneof![Just(1.0), Just(2.0), 3.0f64..4.0];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 1.0 || v == 2.0 || (3.0..4.0).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(x in -1.0f64..1.0, v in crate::collection::vec(0.0f64..1.0, 3)) {
            prop_assume!(x.abs() > 1e-12);
            prop_assert!(x.abs() < 1.0);
            prop_assert_eq!(v.len(), 3);
        }
    }
}
