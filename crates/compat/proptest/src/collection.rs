//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Strategy, VecStrategy};

/// Strategy producing vectors of exactly `len` samples of `element`.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}
