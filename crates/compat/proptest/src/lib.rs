//! Minimal offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` parameters,
//! range strategies, [`strategy::Just`], [`prop_oneof!`],
//! `prop::collection::vec`, [`prop_assert!`] / [`prop_assert_eq!`] /
//! [`prop_assume!`]. Each property runs a fixed number of random cases
//! (no shrinking, no failure persistence).

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cases run per property.
pub const NUM_CASES: usize = 128;

/// Construct the per-property RNG (deterministic per seed).
pub fn new_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// The proptest prelude: strategies, macros and the `prop` module path.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirror of proptest's `prop::` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: NUM_CASES as u32,
        }
    }
}

/// Run each body under the macro a fixed number of times with freshly
/// sampled arguments.
#[macro_export]
macro_rules! proptest {
    (@cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Seed differs per property so failures don't correlate,
                // but is fixed per name for reproducibility.
                let mut __rng = $crate::new_rng(0x5eed_0000 ^ stringify!($name).len() as u64);
                for __case in 0..$cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __run = || { $body };
                    __run();
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cases ($config).cases as usize; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cases $crate::NUM_CASES; $($rest)* }
    };
}

/// Assertion inside a property (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when an assumption fails (early-returns from the
/// per-case closure the [`proptest!`] macro wraps bodies in).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return;
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$(
            {
                // callers conventionally parenthesise range strategies
                // (real proptest needs that for weighted variants)
                #[allow(unused_parens)]
                let __strategy = $strat;
                ::std::boxed::Box::new(__strategy)
            }
        ),+])
    };
}
