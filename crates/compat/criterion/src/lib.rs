//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Benchmarks run a short warm-up, then time `sample_size` batches and
//! print the mean wall-clock time per iteration. No statistics, outlier
//! analysis or reports — just enough to keep `cargo bench` meaningful in
//! an offline environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Builder-style sample-size override (batches timed per benchmark).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: run single iterations until ~20ms total to pick a batch
    // size that keeps per-sample noise reasonable.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calib_start = Instant::now();
    let mut single_runs = 0u64;
    while calib_start.elapsed() < Duration::from_millis(20) && single_runs < 1000 {
        f(&mut calib);
        single_runs += 1;
    }
    let per_iter = calib_start.elapsed().as_secs_f64() / single_runs.max(1) as f64;
    // Aim for ~5ms per timed sample, at least 1 iteration.
    let iters = ((0.005 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{name:<60} time: {}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn group_macro_produces_runnable_function() {
        benches();
    }
}
