//! Concurrent queue: [`SegQueue`], a mutex-protected FIFO with the
//! crossbeam `SegQueue` API shape (lock-freedom is not reproduced).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Unbounded multi-producer multi-consumer FIFO queue.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        SegQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Push to the back.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pop from the front, `None` if currently empty.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_len() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
