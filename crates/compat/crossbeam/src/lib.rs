//! Minimal offline stand-in for the `crossbeam` crate: scoped threads
//! (delegating to `std::thread::scope`, stable since Rust 1.63) and a
//! concurrent FIFO queue.

pub mod queue;

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Placeholder for the nested-scope argument crossbeam passes to spawned
/// closures (callers in this workspace ignore it with `|_|`).
#[derive(Debug, Clone, Copy)]
pub struct SpawnScope;

/// A scope handle usable to spawn threads that may borrow local state.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a [`SpawnScope`]
    /// placeholder where crossbeam would pass a nested scope.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(SpawnScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(SpawnScope)),
        }
    }
}

/// Create a scope for spawning borrowing threads. Returns `Err` with the
/// panic payload if the closure or any un-joined spawned thread panicked,
/// matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let total: usize = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(total, 60);
    }

    #[test]
    fn panicking_thread_surfaces_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
