//! No-op offline stand-in for serde's derive macros.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` (as forward
//! compatibility for snapshotting) and never calls serde's runtime, so the
//! derives expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
