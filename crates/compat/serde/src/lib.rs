//! No-op offline stand-in for serde's derive macros.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` and never
//! calls serde's runtime, so the derives expand to nothing. Snapshot
//! persistence does **not** go through serde: the durable snapshot store
//! (`amcad_retrieval::store`) hand-rolls its versioned, checksummed
//! binary format precisely so it works offline with this stub in place.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
