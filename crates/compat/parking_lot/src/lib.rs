//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] with the
//! parking_lot API shape (infallible `lock`, direct `into_inner`) over
//! `std::sync::Mutex`, ignoring poison like parking_lot does.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails (poison is ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
