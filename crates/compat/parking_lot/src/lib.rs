//! Minimal offline stand-in for `parking_lot`: a [`Mutex`] and an
//! [`RwLock`] with the parking_lot API shape (infallible `lock` /
//! `read` / `write`, direct `into_inner`) over their `std::sync`
//! counterparts, ignoring poison like parking_lot does.
//!
//! The workspace's `no-std-sync-primitives` lint (see
//! `crates/analysis`) routes all lock use through this stub: a worker
//! that panics while holding a lock must not turn every later
//! acquisition into a second panic.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails (poison is ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read` / `write` never fail (poison is
/// ignored).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write_into_inner() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_ignores_poison() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u32));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        *l.write() += 1; // must not panic
        assert_eq!(*l.read(), 1);
    }
}
