//! `amcad-lint` — the workspace's offline invariant checker.
//!
//! `cargo test` samples behaviour; the contracts this crate enforces
//! are *structural*: the snapshot decoder must be panic-free on
//! hostile bytes, every `unsafe` carries its proof obligation in a
//! `SAFETY:` comment, every `Ordering::Relaxed` says why no
//! happens-before edge is needed, NaN-unsafe float orderings stay out,
//! threads are spawned only by the runtime and the build pool, locks
//! come from the poison-ignoring `parking_lot` stub — and, since the
//! structural upgrade, the serving hot path allocates nothing inside
//! its loops, no lock guard is live across a condvar park, and every
//! fan-out loop is bounded by a config knob. Clippy cannot express
//! project-specific rules and this environment has no registry access
//! (no dylint), so — like the `crates/compat/` stubs — the analyzer
//! is built in-workspace: a hand-rolled lexer ([`lexer`]), a
//! recursive-descent item/expression parser ([`parser`]), an
//! intra-workspace call graph with hot-path and park propagation
//! ([`callgraph`]), token-pattern rules ([`rules`]) and structural
//! rules ([`structural`]). No type inference, no dependencies.
//!
//! A violation a human has vetted is waived in place:
//!
//! ```text
//! // amcad-lint: allow(no-std-sync-primitives) — Condvar requires std MutexGuard
//! ```
//!
//! The reason text after the rule name is **mandatory**; an allow
//! without one is itself an (unwaivable) diagnostic, as is an allow
//! naming a rule that does not exist. `--list-allows` prints the full
//! standing-waiver inventory. A fn may opt into hot-path analysis
//! with `// amcad-lint: hot-path — <why>`. See `src/README.md` for
//! the contract behind each rule.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod structural;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{LexedFile, LineKind};
use rules::RawDiagnostic;

/// One finding, resolved against the file's allow directives.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name, or a meta rule (`allow-missing-reason`,
    /// `allow-unknown-rule`) for malformed directives.
    pub rule: &'static str,
    pub message: String,
    /// Whether a well-formed `allow(...)` waiver directive with a
    /// reason covers this finding. Meta diagnostics are never waived.
    pub waived: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed, well-formed `allow(<rule>) — <reason>` waiver directive.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    reason: String,
    /// Line the directive itself starts on.
    line: usize,
    /// The code line the directive shields: the directive's own line
    /// for a trailing comment, else the next code line below it.
    target_line: usize,
}

/// One standing waiver, for the `--list-allows` inventory and the JSON
/// report.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line the directive starts on.
    pub line: usize,
    /// 1-indexed code line the directive shields.
    pub target_line: usize,
    pub rule: String,
    pub reason: String,
}

impl fmt::Display for AllowRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow({}) — {}",
            self.path, self.line, self.rule, self.reason
        )
    }
}

/// Meta rule name: an allow directive without the mandatory reason.
pub const META_MISSING_REASON: &str = "allow-missing-reason";
/// Meta rule name: an allow directive naming an unknown rule.
pub const META_UNKNOWN_RULE: &str = "allow-unknown-rule";

const DIRECTIVE: &str = "amcad-lint:";

/// Extract allow directives (and meta diagnostics for malformed ones)
/// from a file's comments. `hot-path` markers are a directive too —
/// consumed by the parser, skipped here.
fn parse_allows(file: &LexedFile) -> (Vec<Allow>, Vec<RawDiagnostic>) {
    let mut allows = Vec::new();
    let mut meta = Vec::new();
    for comment in &file.comments {
        if comment.is_doc() {
            continue; // docs may *mention* directives without arming them
        }
        let mut rest = comment.text.as_str();
        while let Some(at) = rest.find(DIRECTIVE) {
            rest = &rest[at + DIRECTIVE.len()..];
            let body = rest.trim_start();
            if body.starts_with("hot-path") {
                continue; // the parser's opt-in hot seed, not a waiver
            }
            let Some(args) = body.strip_prefix("allow(") else {
                meta.push(RawDiagnostic {
                    rule: META_UNKNOWN_RULE,
                    line: comment.start_line,
                    message: format!(
                        "malformed directive — expected `{DIRECTIVE} allow(<rule>) — <reason>` \
                         or `{DIRECTIVE} hot-path`"
                    ),
                });
                continue;
            };
            let Some(close) = args.find(')') else {
                meta.push(RawDiagnostic {
                    rule: META_UNKNOWN_RULE,
                    line: comment.start_line,
                    message: "unclosed allow( directive".to_string(),
                });
                break;
            };
            let rule = args[..close].trim();
            rest = &args[close + 1..];
            if !rules::RULE_NAMES.contains(&rule) {
                meta.push(RawDiagnostic {
                    rule: META_UNKNOWN_RULE,
                    line: comment.start_line,
                    message: format!("allow({rule}) names no known rule"),
                });
                continue;
            }
            // the reason is mandatory: strip the separator the
            // convention uses (— or - or :) and demand nonempty text
            // up to the end of the comment / the next directive
            let upto = rest.find(DIRECTIVE).unwrap_or(rest.len());
            let reason = rest[..upto]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || c == '\u{2014}' || c == '\u{2013}' || c == '-' || c == ':'
                })
                .trim_end_matches(['*', '/'])
                .trim();
            if reason.is_empty() {
                meta.push(RawDiagnostic {
                    rule: META_MISSING_REASON,
                    line: comment.start_line,
                    message: format!(
                        "allow({rule}) has no reason — waivers must say why the rule does not apply"
                    ),
                });
                continue;
            }
            let target_line = if file.line_kind(comment.start_line) == LineKind::Code {
                comment.start_line // trailing comment shields its own line
            } else {
                file.next_code_line(comment.end_line + 1)
                    .unwrap_or(comment.end_line)
            };
            allows.push(Allow {
                rule: rule.to_string(),
                reason: reason.to_string(),
                line: comment.start_line,
                target_line,
            });
        }
    }
    (allows, meta)
}

/// One source file handed to [`lint_sources`].
pub struct SourceUnit {
    /// Workspace-relative path with `/` separators, used for
    /// location-scoped rules and reporting.
    pub path: String,
    pub source: String,
    /// Marks files under `tests/` / `benches/` (everything in them is
    /// test code).
    pub all_test: bool,
}

/// Lint a set of source files as one workspace: the call graph (and
/// therefore hot-path and park reachability) spans all of them. This
/// is the core entry point — `lint_workspace` feeds it the files on
/// disk, `lint_source` wraps a single string as a workspace of one.
pub fn lint_sources(units: &[SourceUnit]) -> Vec<Diagnostic> {
    let lexed: Vec<LexedFile> = units.iter().map(|u| lexer::lex(&u.source)).collect();
    let parsed: Vec<parser::ParsedFile> = lexed.iter().map(parser::parse).collect();
    let graph_units: Vec<callgraph::Unit<'_>> = units
        .iter()
        .zip(&parsed)
        .map(|(u, p)| callgraph::Unit {
            path: &u.path,
            parsed: p,
            all_test: u.all_test,
        })
        .collect();
    let graph = callgraph::CallGraph::build(&graph_units);

    let mut out = Vec::new();
    for (i, unit) in units.iter().enumerate() {
        let (allows, meta) = parse_allows(&lexed[i]);
        let mut raw = rules::run_rules(&unit.path, &lexed[i], unit.all_test);
        raw.extend(structural::run_rules(
            &unit.path,
            &parsed[i],
            i,
            &graph,
            unit.all_test,
        ));
        let mut file_out: Vec<Diagnostic> = raw
            .into_iter()
            .map(|raw| {
                let waived = allows
                    .iter()
                    .any(|a| a.rule == raw.rule && a.target_line == raw.line);
                Diagnostic {
                    path: unit.path.clone(),
                    line: raw.line,
                    rule: raw.rule,
                    message: raw.message,
                    waived,
                }
            })
            .collect();
        if !unit.all_test {
            file_out.extend(meta.into_iter().map(|raw| Diagnostic {
                path: unit.path.clone(),
                line: raw.line,
                rule: raw.rule,
                message: raw.message,
                waived: false,
            }));
        }
        file_out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
        out.extend(file_out);
    }
    out
}

/// Lint one source string as a workspace of one file. Hot-path
/// propagation sees only this file — fixtures make fns hot via
/// `impl Retrieve for ..` / seed names / the `hot-path` marker.
pub fn lint_source(path: &str, source: &str, all_test: bool) -> Vec<Diagnostic> {
    lint_sources(&[SourceUnit {
        path: path.to_string(),
        source: source.to_string(),
        all_test,
    }])
}

/// The standing-waiver inventory of a set of sources: every
/// well-formed `allow(<rule>) — <reason>` directive.
pub fn allows_in_sources(units: &[SourceUnit]) -> Vec<AllowRecord> {
    let mut out = Vec::new();
    for unit in units {
        let lexed = lexer::lex(&unit.source);
        let (allows, _meta) = parse_allows(&lexed);
        out.extend(allows.into_iter().map(|a| AllowRecord {
            path: unit.path.clone(),
            line: a.line,
            target_line: a.target_line,
            rule: a.rule,
            reason: a.reason,
        }));
    }
    out
}

/// Directories never descended into: build output, VCS metadata, and
/// the compat stubs (vendored stand-ins for external crates — they
/// mirror *other* projects' APIs, including `std::sync` re-exports, so
/// the workspace rules do not apply to them).
fn skip_dir(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return true;
    };
    if name == "target" || name.starts_with('.') {
        return true;
    }
    name == "compat"
        && path
            .parent()
            .and_then(|p| p.file_name())
            .and_then(|n| n.to_str())
            == Some("crates")
}

/// Recursively collect every `.rs` file under `dir`.
pub fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if !skip_dir(&path) {
                collect_rs_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Whether a path component marks the file as wholly test code.
fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

/// Read the files selected by `root` + `paths` into [`SourceUnit`]s
/// (unreadable / non-UTF-8 sources are skipped — they never reach
/// rustc either).
fn load_units(root: &Path, paths: &[PathBuf]) -> Vec<SourceUnit> {
    let mut files = Vec::new();
    if paths.is_empty() {
        collect_rs_files(root, &mut files);
    } else {
        for p in paths {
            let p = if p.is_absolute() {
                p.clone()
            } else {
                root.join(p)
            };
            if p.is_dir() {
                collect_rs_files(&p, &mut files);
            } else {
                files.push(p);
            }
        }
    }
    files
        .into_iter()
        .filter_map(|path| {
            let rel: String = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let source = std::fs::read_to_string(&path).ok()?;
            let all_test = is_test_path(&rel);
            Some(SourceUnit {
                path: rel,
                source,
                all_test,
            })
        })
        .collect()
}

/// Lint one file on disk as a workspace of one. `root` anchors the
/// workspace-relative path used in reports. Prefer [`lint_workspace`]
/// — hot-path propagation needs the whole workspace in view.
pub fn lint_file(root: &Path, path: &Path) -> Vec<Diagnostic> {
    lint_sources(&load_units(root, &[path.to_path_buf()]))
}

/// Lint every `.rs` file under `root` (or, if `paths` is nonempty,
/// under each given file/directory). The call graph spans exactly the
/// selected files — run without `paths` for full hot-path coverage.
pub fn lint_workspace(root: &Path, paths: &[PathBuf]) -> Vec<Diagnostic> {
    lint_sources(&load_units(root, paths))
}

/// The standing-waiver inventory of the workspace on disk.
pub fn workspace_allows(root: &Path, paths: &[PathBuf]) -> Vec<AllowRecord> {
    allows_in_sources(&load_units(root, paths))
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
