//! CLI driver: `cargo run -p amcad-lint -- --deny [paths…]`
//!
//! Walks the workspace (or the given files/directories), prints every
//! diagnostic plus a per-rule summary, and — with `--deny` — exits
//! nonzero if any unwaived diagnostic remains. CI runs this ahead of
//! the test jobs. `--list-allows` prints the standing-waiver inventory
//! instead; `--format github` emits workflow annotations and
//! `--format json` a machine-readable report (uploaded as a CI
//! artifact next to the `BENCH_*.json` files).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use amcad_lint::{AllowRecord, Diagnostic};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Github,
    Json,
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_allows = false;
    let mut format = Format::Text;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--list-allows" => list_allows = true,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("github") => Format::Github,
                    Some("json") => Format::Json,
                    other => {
                        eprintln!(
                            "amcad-lint: --format expects text|github|json, got {:?}",
                            other.unwrap_or("<nothing>")
                        );
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--help" | "-h" => {
                println!("usage: amcad-lint [--deny] [--list-allows] [--format text|github|json] [paths…]");
                println!("lints the workspace (default: all .rs files under the workspace root,");
                println!("skipping target/, crates/compat/, and dotdirs); --deny exits nonzero");
                println!(
                    "on any diagnostic not waived by `// amcad-lint: allow(<rule>) — <reason>`."
                );
                println!("--list-allows prints the standing-waiver inventory instead of linting;");
                println!("--format github emits ::error workflow annotations, --format json a");
                println!("machine-readable report of diagnostics and waivers.");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(err) => {
            eprintln!("amcad-lint: cannot determine working directory: {err}");
            return ExitCode::FAILURE;
        }
    };
    let root = amcad_lint::find_workspace_root(&cwd);

    if list_allows {
        let allows = amcad_lint::workspace_allows(&root, &paths);
        match format {
            Format::Json => println!("{}", allows_json(&allows)),
            _ => {
                for a in &allows {
                    println!("{a}");
                }
                println!();
                println!("{} standing waiver(s)", allows.len());
            }
        }
        return ExitCode::SUCCESS;
    }

    let diagnostics = amcad_lint::lint_workspace(&root, &paths);
    let allows = amcad_lint::workspace_allows(&root, &paths);

    // per-rule tallies: (unwaived, waived)
    let mut tally: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for d in &diagnostics {
        let entry = tally.entry(d.rule).or_insert((0, 0));
        if d.waived {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }
    }
    let unwaived: usize = tally.values().map(|(u, _)| u).sum();
    let waived: usize = tally.values().map(|(_, w)| w).sum();

    match format {
        Format::Json => println!("{}", report_json(&diagnostics, &allows, unwaived, waived)),
        Format::Github => {
            for d in diagnostics.iter().filter(|d| !d.waived) {
                // newline-free by construction: messages are single-line
                println!(
                    "::error file={},line={},title=amcad-lint[{}]::{}",
                    d.path, d.line, d.rule, d.message
                );
            }
        }
        Format::Text => {
            for d in diagnostics.iter().filter(|d| !d.waived) {
                println!("{d}");
            }
            println!();
            println!("rule summary ({} unwaived, {} waived):", unwaived, waived);
            for (rule, (u, w)) in &tally {
                println!("  {rule:<24} {u} unwaived, {w} waived");
            }
            if tally.is_empty() {
                println!("  (no diagnostics)");
            }
        }
    }

    if deny && unwaived > 0 {
        eprintln!("amcad-lint --deny: {unwaived} unwaived diagnostic(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Minimal JSON string escaping — the workspace has no serde access,
/// and diagnostic text is plain ASCII-ish prose.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn diag_json(d: &Diagnostic) -> String {
    format!(
        "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"waived\":{}}}",
        json_escape(&d.path),
        d.line,
        json_escape(d.rule),
        json_escape(&d.message),
        d.waived
    )
}

fn allow_json(a: &AllowRecord) -> String {
    format!(
        "{{\"path\":\"{}\",\"line\":{},\"target_line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
        json_escape(&a.path),
        a.line,
        a.target_line,
        json_escape(&a.rule),
        json_escape(&a.reason)
    )
}

fn allows_json(allows: &[AllowRecord]) -> String {
    let items: Vec<String> = allows.iter().map(allow_json).collect();
    format!("{{\"allows\":[{}]}}", items.join(","))
}

fn report_json(
    diagnostics: &[Diagnostic],
    allows: &[AllowRecord],
    unwaived: usize,
    waived: usize,
) -> String {
    let diags: Vec<String> = diagnostics.iter().map(diag_json).collect();
    let allow_items: Vec<String> = allows.iter().map(allow_json).collect();
    format!(
        "{{\"summary\":{{\"unwaived\":{unwaived},\"waived\":{waived}}},\"diagnostics\":[{}],\"allows\":[{}]}}",
        diags.join(","),
        allow_items.join(",")
    )
}
