//! CLI driver: `cargo run -p amcad-lint -- --deny [paths…]`
//!
//! Walks the workspace (or the given files/directories), prints every
//! diagnostic plus a per-rule summary, and — with `--deny` — exits
//! nonzero if any unwaived diagnostic remains. CI runs this ahead of
//! the test jobs.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--help" | "-h" => {
                println!("usage: amcad-lint [--deny] [paths…]");
                println!("lints the workspace (default: all .rs files under the workspace root,");
                println!("skipping target/, crates/compat/, and dotdirs); --deny exits nonzero");
                println!(
                    "on any diagnostic not waived by `// amcad-lint: allow(<rule>) — <reason>`"
                );
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(cwd) => cwd,
        Err(err) => {
            eprintln!("amcad-lint: cannot determine working directory: {err}");
            return ExitCode::FAILURE;
        }
    };
    let root = amcad_lint::find_workspace_root(&cwd);
    let diagnostics = amcad_lint::lint_workspace(&root, &paths);

    // per-rule tallies: (unwaived, waived)
    let mut tally: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
    for d in &diagnostics {
        let entry = tally.entry(d.rule).or_insert((0, 0));
        if d.waived {
            entry.1 += 1;
        } else {
            entry.0 += 1;
        }
    }
    for d in diagnostics.iter().filter(|d| !d.waived) {
        println!("{d}");
    }

    let unwaived: usize = tally.values().map(|(u, _)| u).sum();
    let waived: usize = tally.values().map(|(_, w)| w).sum();
    println!();
    println!("rule summary ({} unwaived, {} waived):", unwaived, waived);
    for (rule, (u, w)) in &tally {
        println!("  {rule:<24} {u} unwaived, {w} waived");
    }
    if tally.is_empty() {
        println!("  (no diagnostics)");
    }

    if deny && unwaived > 0 {
        eprintln!("amcad-lint --deny: {unwaived} unwaived diagnostic(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
