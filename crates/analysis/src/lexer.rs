//! A small hand-rolled Rust lexer: exactly the token stream the lint
//! rules need, and nothing more.
//!
//! This is deliberately **not** a parser. The rules in
//! [`crate::rules`] are token-pattern checks (`Ordering::Relaxed`,
//! `.partial_cmp(..).unwrap()`, an `unsafe` block without a `SAFETY:`
//! comment above it), so the lexer's job is to get four things exactly
//! right — everything a grep-based checker gets wrong:
//!
//! 1. **Comments are not code.** Line comments, doc comments and
//!    (nested) block comments are lifted out of the token stream into a
//!    side table with line spans, so `// the old partial_cmp().unwrap()
//!    panicked here` never fires a rule, while the `SAFETY:` and
//!    `allow(...)`-waiver conventions remain checkable.
//! 2. **Literals are not code.** String, raw-string, byte-string and
//!    char literals are single tokens: `"std::sync::Mutex"` inside a
//!    diagnostic message is data, not a lint violation. (The same
//!    goes for waiver directives quoted inside doc text or strings:
//!    only real comments can waive.)
//! 3. **Lifetimes are not char literals.** `'a` and `'static` must not
//!    desynchronise the literal scanner (a naive one treats the rest of
//!    the file as the inside of a char).
//! 4. **Test regions are exempt.** `#[cfg(test)]` / `#[test]` items and
//!    `mod tests { ... }` blocks are tracked by brace matching, and every
//!    token inside carries `in_test = true`; rules skip them.

/// The kind of one lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Ordering`, `unwrap`, ...).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (the leading `'` included).
    Lifetime(String),
    /// A string / raw-string / byte-string / char literal (content
    /// dropped — rules never look inside).
    Literal,
    /// A numeric literal (`0`, `0xff`, `1.5e3`, `8usize`).
    Number,
    /// A single punctuation character (`{`, `[`, `:`, `.`, `!`, ...).
    Punct(char),
}

/// One token with its location and test-region flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-indexed line the token starts on.
    pub line: usize,
    /// Whether the token sits inside a `#[cfg(test)]` / `#[test]` item
    /// or a `mod tests { ... }` block.
    pub in_test: bool,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the exact identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line, doc or block) lifted out of the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The raw comment text, delimiters included.
    pub text: String,
    /// 1-indexed first line of the comment.
    pub start_line: usize,
    /// 1-indexed last line of the comment (equal to `start_line` for
    /// line comments and single-line block comments).
    pub end_line: usize,
}

impl Comment {
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    /// Lint directives are tooling syntax, not documentation — docs
    /// that *mention* a directive must not activate it.
    pub fn is_doc(&self) -> bool {
        (self.text.starts_with("///") && !self.text.starts_with("////"))
            || self.text.starts_with("//!")
            || (self.text.starts_with("/**") && !self.text.starts_with("/***"))
            || self.text.starts_with("/*!")
    }
}

/// What a source line contains, for the "is the line above a comment?"
/// checks the safety-comments and relaxed-justified rules make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    /// Only whitespace.
    Blank,
    /// Only comments (and whitespace).
    CommentOnly,
    /// At least one code token starts on this line.
    Code,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `line_kinds[0]` describes line 1.
    pub line_kinds: Vec<LineKind>,
}

impl LexedFile {
    /// The [`LineKind`] of 1-indexed `line` (lines past EOF are blank).
    pub fn line_kind(&self, line: usize) -> LineKind {
        line.checked_sub(1)
            .and_then(|i| self.line_kinds.get(i).copied())
            .unwrap_or(LineKind::Blank)
    }

    /// Whether any comment covers (part of) 1-indexed `line`.
    pub fn comment_on_line(&self, line: usize) -> bool {
        self.comments
            .iter()
            .any(|c| c.start_line <= line && line <= c.end_line)
    }

    /// Whether any comment *ends* on 1-indexed `line`.
    pub fn comment_ending_on(&self, line: usize) -> Option<&Comment> {
        self.comments.iter().find(|c| c.end_line == line)
    }

    /// The first code line at or after 1-indexed `line`.
    pub fn next_code_line(&self, line: usize) -> Option<usize> {
        (line..=self.line_kinds.len()).find(|&l| self.line_kind(l) == LineKind::Code)
    }
}

/// Lex `source` into tokens, comments and line kinds. The lexer never
/// fails: malformed input (an unterminated string, say) degrades into
/// best-effort tokens rather than an error, because a lint tool must
/// keep walking the rest of the workspace.
pub fn lex(source: &str) -> LexedFile {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    /// Lines on which at least one code token starts.
    code_lines: Vec<usize>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            code_lines: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, tracking the line counter.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: usize) {
        self.code_lines.push(line);
        self.tokens.push(Token {
            kind,
            line,
            in_test: false, // filled in by the region pass below
        });
    }

    fn run(mut self) -> LexedFile {
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' | b'c' if self.raw_or_prefixed_string() => {}
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
                other if other.is_ascii() => {
                    self.bump();
                    self.push(TokenKind::Punct(other as char), line);
                }
                _ => {
                    // a non-ASCII byte (inside an identifier we do not
                    // care about, or stray): skip the whole UTF-8 char
                    self.bump();
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.bump();
                    }
                }
            }
        }
        let total_lines = self.line;
        let mut file = LexedFile {
            tokens: self.tokens,
            comments: self.comments,
            line_kinds: line_kinds(total_lines, &self.code_lines, &[]),
        };
        file.line_kinds = {
            let comment_spans: Vec<(usize, usize)> = file
                .comments
                .iter()
                .map(|c| (c.start_line, c.end_line))
                .collect();
            line_kinds(total_lines, &self.code_lines, &comment_spans)
        };
        mark_test_regions(&mut file.tokens);
        file
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let begin = self.pos;
        while self.peek().is_some_and(|b| b != b'\n') {
            self.bump();
        }
        self.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned(),
            start_line: start,
            end_line: start,
        });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        let begin = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: degrade gracefully
            }
        }
        self.comments.push(Comment {
            text: String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned(),
            start_line: start,
            end_line: self.line,
        });
    }

    /// Try to lex a raw / byte / C string starting at the current `r`,
    /// `b` or `c`. Returns false (consuming nothing) when the prefix is
    /// actually an ordinary identifier such as `radius`.
    fn raw_or_prefixed_string(&mut self) -> bool {
        // recognised shapes: r", r#...", b", br", b', rb is not a thing,
        // c", cr#"
        let line = self.line;
        let mut saw_raw = false;
        let mut ahead = match self.peek() {
            Some(b'r') => {
                saw_raw = true;
                1
            }
            Some(b'b') | Some(b'c') => {
                if self.peek_at(1) == Some(b'r') {
                    saw_raw = true;
                    2
                } else {
                    1
                }
            }
            _ => return false,
        };
        let mut hashes = 0usize;
        if saw_raw {
            while self.peek_at(ahead) == Some(b'#') {
                hashes += 1;
                ahead += 1;
            }
        }
        match self.peek_at(ahead) {
            Some(b'"') => {}
            Some(b'\'') if !saw_raw => {
                // b'x' byte literal: delegate to the char scanner after
                // consuming the prefix
                self.bump();
                self.char_or_lifetime();
                return true;
            }
            _ => return false,
        }
        // consume prefix + opening quote
        for _ in 0..=ahead {
            self.bump();
        }
        if saw_raw {
            // raw string: ends at '"' followed by `hashes` hashes; no
            // escapes inside
            loop {
                match self.bump() {
                    None => break,
                    Some(b'"') => {
                        let mut matched = 0usize;
                        while matched < hashes && self.peek() == Some(b'#') {
                            self.bump();
                            matched += 1;
                        }
                        if matched == hashes {
                            break;
                        }
                    }
                    Some(_) => {}
                }
            }
        } else {
            self.string_body();
        }
        self.push(TokenKind::Literal, line);
        true
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        self.string_body();
        self.push(TokenKind::Literal, line);
    }

    /// Consume an escaped string body up to and including the closing
    /// quote.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                None | Some(b'"') => break,
                Some(b'\\') => {
                    self.bump(); // the escaped character
                }
                Some(_) => {}
            }
        }
    }

    /// Disambiguate `'a'` (char literal) from `'a` / `'static`
    /// (lifetime): after the quote, an identifier run NOT followed by a
    /// closing quote is a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening '
        match self.peek() {
            Some(b'\\') => {
                // escaped char literal: '\n', '\'', '\u{1F600}'
                self.bump(); // the backslash
                self.bump(); // the escaped character (may itself be ')
                loop {
                    match self.bump() {
                        None | Some(b'\'') => break,
                        Some(_) => {}
                    }
                }
                self.push(TokenKind::Literal, line);
            }
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                let begin = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
                {
                    self.bump();
                }
                if self.peek() == Some(b'\'') {
                    // 'a' — a char literal after all
                    self.bump();
                    self.push(TokenKind::Literal, line);
                } else {
                    let name = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
                    self.push(TokenKind::Lifetime(format!("'{name}")), line);
                }
            }
            Some(_) => {
                // a non-identifier char literal: '#', '🦀', ' '
                self.bump();
                while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                    self.bump(); // UTF-8 continuation bytes
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.push(TokenKind::Literal, line);
            }
            None => self.push(TokenKind::Punct('\''), line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        // the exact numeric grammar does not matter to any rule: consume
        // the alphanumeric run (covers hex, suffixes like 0u64) plus
        // `.` digits for floats, then move on. `1..n` range syntax must
        // NOT swallow the dots: only a dot followed by a digit joins.
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self
                .peek()
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
        }
        self.push(TokenKind::Number, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let begin = self.pos;
        while self
            .peek()
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.bump();
        }
        let name = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
        self.push(TokenKind::Ident(name), line);
    }
}

/// Classify every line as blank / comment-only / code.
fn line_kinds(
    total: usize,
    code_lines: &[usize],
    comment_spans: &[(usize, usize)],
) -> Vec<LineKind> {
    let mut kinds = vec![LineKind::Blank; total];
    for &(start, end) in comment_spans {
        for line in start..=end.min(total) {
            if let Some(k) = kinds.get_mut(line - 1) {
                *k = LineKind::CommentOnly;
            }
        }
    }
    for &line in code_lines {
        if let Some(k) = kinds.get_mut(line - 1) {
            *k = LineKind::Code;
        }
    }
    kinds
}

/// Mark every token inside a `#[cfg(test)]` / `#[test]` item or a
/// `mod tests { ... }` block as test code.
///
/// The tracker is a brace-matching pass: when a test attribute (or
/// `mod tests`) is seen, the *next* `{` opens a test region that closes
/// at its matching `}`. A `;` before the `{` cancels the pending marker
/// (`#[cfg(test)] use ...;` guards a single item with no body — nothing
/// to exempt beyond what the attribute already syntactically covers).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut pending_test = false;
    // brace stack: true = this scope is (inside) a test region
    let mut stack: Vec<bool> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let in_test = stack.last().copied().unwrap_or(false);
        tokens[i].in_test = in_test || pending_test;
        match &tokens[i].kind {
            TokenKind::Punct('#') if !in_test => {
                // look for #[cfg(test)] or #[test] (possibly #[cfg(all(test, ...))])
                if let Some(end) = attribute_end(tokens, i) {
                    if attribute_mentions_test(&tokens[i..=end]) {
                        pending_test = true;
                    }
                    // tokens inside the attribute keep the current flag
                    for token in tokens.iter_mut().take(end + 1).skip(i) {
                        token.in_test = in_test || pending_test;
                    }
                    i = end + 1;
                    continue;
                }
            }
            TokenKind::Ident(name)
                if name == "mod"
                    && !in_test
                    && tokens.get(i + 1).is_some_and(|t| t.is_ident("tests")) =>
            {
                pending_test = true;
            }
            TokenKind::Punct('{') => {
                stack.push(in_test || pending_test);
                pending_test = false;
            }
            TokenKind::Punct('}') => {
                stack.pop();
            }
            TokenKind::Punct(';') if !stack.last().copied().unwrap_or(false) => {
                // an item ended without a body: drop the pending marker
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
}

/// If `tokens[start]` is `#` opening an attribute, return the index of
/// its closing `]`.
fn attribute_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct('!')) {
        i += 1; // inner attribute #![...]
    }
    if !tokens.get(i).is_some_and(|t| t.is_punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, token) in tokens.iter().enumerate().skip(i) {
        match token.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether an attribute token slice spells a test gate: `#[test]`,
/// `#[cfg(test)]`, or any `cfg(...)` whose argument list mentions the
/// bare `test` flag (`#[cfg(all(test, feature = "x"))]`).
fn attribute_mentions_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr.iter().filter_map(Token::ident).collect();
    match idents.first() {
        Some(&"test") => true, // #[test] and #[tokio::test]-style shapes
        Some(&"cfg") => idents.contains(&"test"),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexedFile) -> Vec<&str> {
        file.tokens.iter().filter_map(Token::ident).collect()
    }

    #[test]
    fn comments_are_lifted_out_of_the_token_stream() {
        let file = lex("let x = 1; // trailing .unwrap() mention\n/* block\n unwrap */ let y;\n");
        assert!(idents(&file).iter().all(|&s| s != "unwrap"));
        assert_eq!(file.comments.len(), 2);
        assert_eq!(file.comments[0].start_line, 1);
        assert_eq!(file.comments[1].start_line, 2);
        assert_eq!(file.comments[1].end_line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_where_rustc_says() {
        let file = lex("/* outer /* inner */ still comment */ let code = 1;\n");
        assert_eq!(idents(&file), vec!["let", "code"]);
        assert_eq!(file.comments.len(), 1);
    }

    #[test]
    fn string_and_raw_string_contents_are_opaque() {
        let src = r####"let a = "has .unwrap() inside";
let b = r#"raw with "quote" and unwrap"#;
let c = br##"bytes ## inside"##;
let d = 'x';
"####;
        let file = lex(src);
        assert!(idents(&file).iter().all(|&s| s != "unwrap"));
        let literals = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 4);
    }

    #[test]
    fn lifetimes_do_not_desynchronise_the_char_scanner() {
        let file = lex("fn f<'a>(x: &'a str) -> &'static str { let c = 'q'; x }\n");
        let lifetimes: Vec<&str> = file
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        // the 'q' char is one literal, and the trailing `x` survives
        assert!(file.tokens.iter().any(|t| t.is_ident("x")));
        assert_eq!(
            file.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            1
        );
    }

    #[test]
    fn escaped_char_literals_including_quote() {
        let file = lex(r"let a = '\''; let b = '\n'; let c = '\u{1F600}';");
        assert_eq!(
            file.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            3
        );
        assert_eq!(idents(&file), vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn range_syntax_is_not_swallowed_by_float_scanning() {
        let file = lex("for i in 0..10 { a[i] = 1.5; }\n");
        let dots = file.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..10 keeps both range dots");
    }

    #[test]
    fn cfg_test_mod_is_marked_and_code_after_it_is_not() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn also_live() { y.unwrap(); }\n";
        let file = lex(src);
        let unwraps: Vec<(usize, bool)> = file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| (t.line, t.in_test))
            .collect();
        assert_eq!(unwraps, vec![(4, true), (6, false)]);
    }

    #[test]
    fn test_attribute_on_a_single_fn_is_scoped_to_that_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let file = lex(src);
        let unwraps: Vec<bool> = file
            .tokens
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_gating_a_use_item_does_not_leak_into_the_next_fn() {
        let src = "#[cfg(test)]\nuse std::sync::Mutex;\nfn live() { a.unwrap(); }\n";
        let file = lex(src);
        let unwrap = file
            .tokens
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(!unwrap.in_test, "the ; must cancel the pending marker");
    }

    #[test]
    fn line_kinds_classify_blank_comment_and_code_lines() {
        let file = lex("// only comment\n\nlet x = 1; // trailing\n/* a\nb */\n");
        assert_eq!(file.line_kind(1), LineKind::CommentOnly);
        assert_eq!(file.line_kind(2), LineKind::Blank);
        assert_eq!(file.line_kind(3), LineKind::Code);
        assert_eq!(file.line_kind(4), LineKind::CommentOnly);
        assert_eq!(file.line_kind(5), LineKind::CommentOnly);
    }

    #[test]
    fn byte_char_literals_lex_as_literals() {
        let file = lex("let nl = b'\\n'; let q = b'q'; let s = b\"bytes\";");
        assert_eq!(
            file.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            3
        );
    }

    #[test]
    fn cfg_all_test_counts_as_a_test_gate() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod harness { fn f() { a.unwrap(); } }\n";
        let file = lex(src);
        let unwrap = file.tokens.iter().find(|t| t.is_ident("unwrap"));
        assert!(unwrap.is_some_and(|t| t.in_test));
    }
}
