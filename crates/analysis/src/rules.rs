//! The six token-pattern deny-by-default rules. Each is a pattern
//! check over a [`LexedFile`]; see `src/README.md` for the contract
//! behind each rule and the incident that motivated it. The four
//! structural rules (`alloc-in-hot-loop`, `guard-across-park`,
//! `unbounded-fanout`, `soa-layout`) live in [`crate::structural`].

use crate::lexer::{LexedFile, LineKind, Token, TokenKind};
use std::collections::BTreeSet;

/// Every rule name an `allow(<rule>)` waiver directive may name.
pub const RULE_NAMES: &[&str] = &[
    "panic-free-decode",
    "nan-ordering",
    "safety-comments",
    "relaxed-justified",
    "thread-discipline",
    "no-std-sync-primitives",
    "alloc-in-hot-loop",
    "guard-across-park",
    "unbounded-fanout",
    "soa-layout",
];

/// One rule violation before waiver resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDiagnostic {
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: usize,
    pub message: String,
}

fn diag(out: &mut Vec<RawDiagnostic>, rule: &'static str, line: usize, message: impl Into<String>) {
    out.push(RawDiagnostic {
        rule,
        line,
        message: message.into(),
    });
}

/// Run every applicable rule over one lexed file. `path` is the
/// workspace-relative path with `/` separators — several rules are
/// scoped by location. Files that are test-only (`tests/`, `benches/`)
/// or inside `crates/compat/` produce no diagnostics.
pub fn run_rules(path: &str, file: &LexedFile, all_test: bool) -> Vec<RawDiagnostic> {
    if all_test || path.contains("crates/compat/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    if path.contains("/store/") || path.starts_with("store/") {
        panic_free_decode(file, &mut out);
    }
    nan_ordering(file, &mut out);
    safety_comments(file, &mut out);
    relaxed_justified(file, &mut out);
    if !in_thread_sanctioned_location(path) {
        thread_discipline(file, &mut out);
    }
    no_std_sync_primitives(file, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    out
}

/// Locations where spawning OS threads is the module's actual job:
/// the serving runtime (persistent pool + admission workers) and the
/// scoped build pool.
fn in_thread_sanctioned_location(path: &str) -> bool {
    path.contains("/runtime/") || path.starts_with("runtime/") || path.ends_with("pool.rs")
}

/// Identifiers that precede `[` without it being an index expression
/// (slice patterns, loop bodies after keywords, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "while", "for",
    "loop", "box", "dyn", "where", "impl", "fn", "use", "pub", "const", "static", "type", "struct",
    "enum", "union", "trait", "unsafe", "break", "continue", "yield",
];

/// **panic-free-decode** — the PR 6 contract: snapshot decode must
/// return `Err` on hostile bytes, never panic. Inside `store/`,
/// non-test code may not call `.unwrap()` / `.expect()`, invoke
/// `panic!` / `unreachable!`, or index into a slice (`x[i]` panics on
/// out-of-range; use `.get()`).
fn panic_free_decode(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "panic-free-decode";
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(name)
                if (name == "unwrap" || name == "expect") && i > 0 && toks[i - 1].is_punct('.') =>
            {
                diag(
                    out,
                    RULE,
                    t.line,
                    format!(
                        ".{name}() can panic — store/ decode paths must return Err on hostile bytes"
                    ),
                );
            }
            TokenKind::Ident(name)
                if (name == "panic" || name == "unreachable")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                diag(
                    out,
                    RULE,
                    t.line,
                    format!(
                        "{name}! is forbidden in store/ — decode paths must return Err, not abort"
                    ),
                );
            }
            TokenKind::Punct('[') if i > 0 => {
                let indexing = match &toks[i - 1].kind {
                    TokenKind::Ident(name) => !NON_INDEX_KEYWORDS.contains(&name.as_str()),
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('?') => true,
                    _ => false,
                };
                if indexing {
                    diag(
                        out,
                        RULE,
                        t.line,
                        "slice indexing panics on out-of-range — use .get()/.get_mut() in store/ decode paths",
                    );
                }
            }
            _ => {}
        }
    }
}

/// **nan-ordering** — the PR 3 regression guard: `.partial_cmp(..)
/// .unwrap()` panics the first time a NaN score appears, and
/// float comparators built on `partial_cmp` inside `sort_by` /
/// `max_by` / `min_by` silently bypass the `total_cmp` convention.
fn nan_ordering(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "nan-ordering";
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Some(name) = t.ident() else { continue };
        let is_method_call = i > 0 && toks[i - 1].is_punct('.');
        if name == "partial_cmp" && is_method_call {
            if let Some(close) = matching_delim(toks, i + 1, '(', ')') {
                let chained_unwrap = toks.get(close + 1).is_some_and(|n| n.is_punct('.'))
                    && toks
                        .get(close + 2)
                        .is_some_and(|n| n.is_ident("unwrap") || n.is_ident("expect"));
                if chained_unwrap {
                    diag(
                        out,
                        RULE,
                        t.line,
                        ".partial_cmp(..).unwrap() panics on NaN — use f32::total_cmp/f64::total_cmp",
                    );
                }
            }
        }
        let is_comparator_sink = matches!(
            name,
            "sort_by" | "sort_unstable_by" | "max_by" | "min_by" | "binary_search_by"
        );
        if is_comparator_sink && is_method_call {
            if let Some(close) = matching_delim(toks, i + 1, '(', ')') {
                let group = &toks[i + 1..close];
                let uses_partial = group.iter().any(|g| g.is_ident("partial_cmp"));
                let uses_total = group.iter().any(|g| g.is_ident("total_cmp"));
                if uses_partial && !uses_total {
                    diag(
                        out,
                        RULE,
                        t.line,
                        format!("{name} comparator built on partial_cmp — NaN breaks the ordering; use total_cmp"),
                    );
                }
            }
        }
    }
}

/// **safety-comments** — every `unsafe` block or `unsafe impl` must be
/// immediately preceded by (or carry on its line) a comment containing
/// `SAFETY:` stating the invariant that makes it sound. Stacked
/// `unsafe impl` lines (`Send` + `Sync` for the same type) may share
/// one comment. `unsafe fn` declarations are exempt — their bodies are
/// covered by the denied `unsafe_op_in_unsafe_fn` rustc lint, which
/// forces an inner `unsafe {}` block that this rule then checks.
fn safety_comments(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "safety-comments";
    let toks = &file.tokens;
    // lines on which an `unsafe impl` item starts, so a stacked pair can
    // share the comment above the first
    let unsafe_impl_lines: BTreeSet<usize> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| {
            t.is_ident("unsafe") && toks.get(i + 1).is_some_and(|n| n.is_ident("impl"))
        })
        .map(|(_, t)| t.line)
        .collect();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("unsafe") {
            continue;
        }
        let next = toks.get(i + 1);
        let is_block = next.is_some_and(|n| n.is_punct('{'));
        let is_impl = next.is_some_and(|n| n.is_ident("impl"));
        if !(is_block || is_impl) {
            continue; // `unsafe fn` / `unsafe trait` declarations
        }
        if !has_safety_comment(file, t.line, &unsafe_impl_lines) {
            let what = if is_impl {
                "unsafe impl"
            } else {
                "unsafe block"
            };
            diag(
                out,
                RULE,
                t.line,
                format!("{what} without an immediately preceding // SAFETY: comment"),
            );
        }
    }
}

fn line_has_comment_with(file: &LexedFile, line: usize, needle: &str) -> bool {
    file.comments
        .iter()
        .any(|c| c.start_line <= line && line <= c.end_line && c.text.contains(needle))
}

fn has_safety_comment(file: &LexedFile, line: usize, unsafe_impl_lines: &BTreeSet<usize>) -> bool {
    if line_has_comment_with(file, line, "SAFETY:") {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match file.line_kind(l) {
            LineKind::CommentOnly => {
                if line_has_comment_with(file, l, "SAFETY:") {
                    return true;
                }
                // keep walking up through a multi-line comment whose
                // SAFETY: sentence may be on an earlier line
            }
            LineKind::Code => {
                if unsafe_impl_lines.contains(&l) {
                    continue; // stacked unsafe impls share one comment
                }
                return line_has_comment_with(file, l, "SAFETY:");
            }
            LineKind::Blank => return false,
        }
    }
    false
}

/// **relaxed-justified** — every `Ordering::Relaxed` use must carry a
/// same-line comment or sit directly under a comment explaining why no
/// synchronisation edge is needed. Consecutive Relaxed lines (a block
/// of monitoring counters) may share the comment above the first.
fn relaxed_justified(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "relaxed-justified";
    let toks = &file.tokens;
    let mut relaxed_lines: BTreeSet<usize> = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("Relaxed"))
        {
            relaxed_lines.insert(t.line);
        }
    }
    'site: for &line in &relaxed_lines {
        if file.comment_on_line(line) {
            continue;
        }
        // walk upward through other Relaxed lines (a shared-comment
        // counter block) until a comment or something else
        let mut l = line;
        for _ in 0..10 {
            if l <= 1 {
                break;
            }
            l -= 1;
            if file.comment_on_line(l) {
                continue 'site; // justified by the comment above
            }
            if !relaxed_lines.contains(&l) {
                break;
            }
        }
        diag(
            out,
            RULE,
            line,
            "Ordering::Relaxed without a justification comment — state why no happens-before edge is needed, or use Acquire/Release",
        );
    }
}

/// **thread-discipline** — OS threads are spawned only by the serving
/// runtime (`runtime/`), the scoped build pool (`pool.rs`), and tests.
/// Everything else must submit work to `PersistentPool` / `WorkerPool`
/// so thread counts stay bounded and observable.
fn thread_discipline(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "thread-discipline";
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let pair = |a: &str, b: &str| {
            t.is_ident(a)
                && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                && toks.get(i + 3).is_some_and(|n| n.is_ident(b))
        };
        let hit = if pair("thread", "spawn") {
            Some("thread::spawn")
        } else if pair("thread", "scope") {
            Some("thread::scope")
        } else if pair("crossbeam", "scope") {
            Some("crossbeam::scope")
        } else {
            None
        };
        if let Some(what) = hit {
            let line = toks[i + 3].line;
            diag(
                out,
                RULE,
                line,
                format!("{what} outside runtime//pool.rs — route work through PersistentPool/WorkerPool"),
            );
        }
    }
}

/// **no-std-sync-primitives** — locks come from the workspace
/// `parking_lot` stub (`crates/compat/parking_lot`), which ignores
/// poisoning the way the real crate does: a panicking worker must not
/// turn every later `lock()` into a second panic. `std::sync::Mutex`
/// is allowed only where a `Condvar` is involved (std condvars only
/// accept std guards) — and such sites must say so with an allow.
fn no_std_sync_primitives(file: &LexedFile, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "no-std-sync-primitives";
    let toks = &file.tokens;
    let colon2 = |i: usize| {
        toks.get(i).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
    };
    let flag = |out: &mut Vec<RawDiagnostic>, name: &str, line: usize| {
        diag(
            out,
            RULE,
            line,
            format!("std::sync::{name} — use the poison-ignoring parking_lot stub (crates/compat/parking_lot)"),
        );
    };
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || !t.is_ident("std") {
            continue;
        }
        if !(colon2(i + 1) && toks.get(i + 3).is_some_and(|n| n.is_ident("sync")) && colon2(i + 4))
        {
            continue;
        }
        match toks.get(i + 6).map(|n| &n.kind) {
            Some(TokenKind::Ident(name)) if name == "Mutex" || name == "RwLock" => {
                flag(out, name, toks[i + 6].line);
            }
            Some(TokenKind::Punct('{')) => {
                if let Some(close) = matching_delim(toks, i + 6, '{', '}') {
                    for g in &toks[i + 6..close] {
                        if let Some(name) = g.ident() {
                            if name == "Mutex" || name == "RwLock" {
                                flag(out, name, g.line);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Index of the delimiter closing the one opened at `open_idx` (which
/// must hold `open`), or `None` if `open_idx` is not an opener or the
/// file ends first.
fn matching_delim(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    if !toks.get(open_idx).is_some_and(|t| t.is_punct(open)) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}
