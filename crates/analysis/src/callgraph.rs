//! Intra-workspace call graph with hot-path and park-reachability
//! propagation.
//!
//! Resolution is by **name and self-type only** — there is no type
//! inference, so the graph is a deliberate over-approximation:
//!
//! * `Type::name(..)` resolves to every workspace fn named `name`
//!   inside an `impl Type` / `impl Trait for ..` block whose type or
//!   trait matches (`Self::` uses the caller's impl type) — the
//!   qualifier carries a real type name, so this resolves across
//!   crates.
//! * `name(..)` resolves to every free fn named `name` **in the
//!   caller's crate** (cross-crate free calls are path-qualified in
//!   practice; `a::b::name(..)` with a lowercase qualifier resolves
//!   the same way).
//! * `.name(..)` method calls resolve to every impl/trait fn named
//!   `name` **in the caller's crate** — except the
//!   `COMMON_METHODS` stoplist of ubiquitous std-collection names
//!   (`push`, `insert`, `get`, `new`, …), which never resolve
//!   unqualified. Without the stoplist, every `map.insert(..)` on a
//!   std HashMap would drag same-named build-path workspace fns into
//!   the hot set; without the same-crate bound, a hot `.run(..)` /
//!   `.build(..)` call would wire edges into every crate that uses
//!   the same verb and mark half the workspace hot.
//!
//! Cross-crate hot propagation does not depend on unqualified edges:
//! every crate-boundary hot entry point (ANN `search`, the manifold
//! distance fns) is itself a seed.
//!
//! Over-approximation errs toward marking *more* code hot, which for a
//! deny-by-default lint means false positives that a human waives —
//! never a silently missed hot-path site.
//!
//! **Hot seeding** (see `src/README.md` for the contract): the serving
//! entry points (`Retrieve::retrieve` / `retrieve_batch` impls), the
//! ANN backends (`AnnIndex::search` impls), the pool participation
//! paths (`PersistentPool::run` / `spawn` — named here because `run`
//! resolves through the stoplist-free method table), the
//! mixed-curvature distance evaluations (`MixedPointSet` /
//! `ProductManifold` distance fns, free `distance` in `manifold`), and
//! any fn under an opt-in `// amcad-lint: hot-path` marker. Everything
//! reachable from a seed through the graph is hot.
//!
//! **Park reachability**: a fn parks directly if it method-calls a
//! condvar primitive (`wait` / `wait_timeout` / `wait_while`); a fn
//! can park if it parks directly or calls one that can. The
//! `guard-across-park` rule asks, per call site, whether the site can
//! reach a park.

use std::collections::HashMap;

use crate::parser::{CallSite, Callee, FnItem, Node, ParsedFile};

/// Method names that never resolve without a path qualifier: they are
/// overwhelmingly std-container/iterator calls, and resolving them
/// would wire every `vec.push(..)` to same-named workspace fns.
const COMMON_METHODS: &[&str] = &[
    "new",
    "clone",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "contains",
    "contains_key",
    "extend",
    "clear",
    "drain",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "keys",
    "values",
    "sort",
    "retain",
    "take",
    "replace",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "from",
    "into",
    "to_string",
    "to_vec",
    "to_owned",
    "as_ref",
    "as_mut",
    "as_slice",
    "borrow",
    "write",
    "read",
    "lock",
    // atomic ops: `closed.load(Ordering::..)` must not resolve to a
    // workspace fn that happens to be called `load`
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "compare_exchange",
    "compare_exchange_weak",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "is_some",
    "is_none",
    "min",
    "max",
    "clamp",
    "abs",
    "sqrt",
    "powi",
    "ln",
    "exp",
    "floor",
    "ceil",
];

/// Condvar parking primitives, matched as bare method names.
const PARK_PRIMITIVES: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Hot seeds keyed by the trait an impl implements.
const TRAIT_ROOTS: &[(&str, &str)] = &[
    ("Retrieve", "retrieve"),
    ("Retrieve", "retrieve_batch"),
    ("AnnIndex", "search"),
];

/// Hot seeds keyed by the impl self-type.
const TYPE_ROOTS: &[(&str, &str)] = &[
    ("PersistentPool", "run"),
    ("PersistentPool", "spawn"),
    ("MixedPointSet", "distance_between"),
    ("MixedPointSet", "distance_to"),
    ("ProductManifold", "distance"),
    ("ProductManifold", "weighted_distance"),
    ("ProductManifold", "component_distances"),
];

/// Hot seeds that are free fns, keyed by a path fragment.
const FREE_ROOTS: &[(&str, &str)] = &[("manifold", "distance")];

/// One file's contribution to the graph.
pub struct Unit<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub parsed: &'a ParsedFile,
    /// Whole file is test code (`tests/` / `benches/`).
    pub all_test: bool,
}

struct FnMeta {
    self_type: Option<String>,
    trait_name: Option<String>,
    is_free: bool,
    /// Owning crate, from the file path (`crates/<name>/..` → `name`).
    krate: String,
}

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        (Some(first), _) => first,
        _ => "",
    }
}

/// The resolved workspace call graph with hot/park markings.
pub struct CallGraph {
    metas: Vec<FnMeta>,
    by_name: HashMap<String, Vec<usize>>,
    /// `(file index, fn index within that file's ParsedFile)` → global.
    index: HashMap<(usize, usize), usize>,
    hot: Vec<bool>,
    can_park: Vec<bool>,
}

impl CallGraph {
    /// Build the graph and run both propagations.
    pub fn build(units: &[Unit<'_>]) -> CallGraph {
        let mut metas = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut index = HashMap::new();
        let mut items: Vec<(usize, &FnItem)> = Vec::new();
        for (file_idx, unit) in units.iter().enumerate() {
            for (fn_idx, item) in unit.parsed.fns.iter().enumerate() {
                let global = metas.len();
                index.insert((file_idx, fn_idx), global);
                by_name.entry(item.name.clone()).or_default().push(global);
                metas.push(FnMeta {
                    self_type: item.self_type.clone(),
                    trait_name: item.trait_name.clone(),
                    is_free: item.self_type.is_none() && item.trait_name.is_none(),
                    krate: crate_of(unit.path).to_string(),
                });
                items.push((file_idx, item));
            }
        }
        let mut graph = CallGraph {
            metas,
            by_name,
            index,
            hot: Vec::new(),
            can_park: Vec::new(),
        };

        // per-fn call-site lists (flattened over closures/blocks/lets)
        let mut sites: Vec<Vec<&CallSite>> = Vec::with_capacity(items.len());
        for (_, item) in &items {
            let mut list = Vec::new();
            collect_sites(&item.body, &mut list);
            sites.push(list);
        }
        let edges: Vec<Vec<usize>> = (0..items.len())
            .map(|caller| {
                let mut out: Vec<usize> = sites[caller]
                    .iter()
                    .flat_map(|s| graph.resolve(caller, s))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        // hot propagation: BFS from the seed set
        let n = items.len();
        let mut hot = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for (g, (file_idx, item)) in items.iter().enumerate() {
            if item.in_test || units[*file_idx].all_test {
                continue; // test fns never seed the hot set
            }
            if graph.is_root(units[*file_idx].path, item) {
                hot[g] = true;
                queue.push(g);
            }
        }
        while let Some(g) = queue.pop() {
            for &callee in &edges[g] {
                if !hot[callee] {
                    hot[callee] = true;
                    queue.push(callee);
                }
            }
        }

        // park propagation: direct primitives, then callee closure
        let mut can_park: Vec<bool> = sites
            .iter()
            .map(|list| {
                list.iter().any(|s| {
                    matches!(&s.callee, Callee::Method { name, .. }
                        if PARK_PRIMITIVES.contains(&name.as_str()))
                })
            })
            .collect();
        loop {
            let mut changed = false;
            for g in 0..n {
                if !can_park[g] && edges[g].iter().any(|&c| can_park[c]) {
                    can_park[g] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        graph.hot = hot;
        graph.can_park = can_park;
        graph
    }

    fn is_root(&self, path: &str, item: &FnItem) -> bool {
        if item.hot_marker {
            return true;
        }
        if let Some(trait_name) = &item.trait_name {
            if TRAIT_ROOTS
                .iter()
                .any(|(t, f)| t == trait_name && *f == item.name)
            {
                return true;
            }
        }
        if let Some(self_type) = &item.self_type {
            if TYPE_ROOTS
                .iter()
                .any(|(t, f)| t == self_type && *f == item.name)
            {
                return true;
            }
        }
        item.self_type.is_none()
            && item.trait_name.is_none()
            && FREE_ROOTS
                .iter()
                .any(|(frag, f)| path.contains(frag) && *f == item.name)
    }

    /// Global fn indices a call site may invoke.
    fn resolve(&self, caller: usize, site: &CallSite) -> Vec<usize> {
        let caller_crate = self.metas[caller].krate.as_str();
        match &site.callee {
            Callee::Macro(_) => Vec::new(),
            Callee::Method { name, recv } => {
                if COMMON_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                // `self.name(..)` can only land on the caller's own
                // type (any of its impl blocks, trait impls included)
                let self_recv = recv.as_deref() == Some("self");
                self.by_name
                    .get(name)
                    .map(|cands| {
                        cands
                            .iter()
                            .copied()
                            .filter(|&g| {
                                let m = &self.metas[g];
                                !m.is_free
                                    && m.krate == caller_crate
                                    && (!self_recv || self.same_self(caller, g))
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
            Callee::Path(segs) => match segs.len() {
                0 => Vec::new(),
                1 => self.resolve_free(&segs[0], caller_crate),
                n => {
                    let name = &segs[n - 1];
                    let qual = if segs[n - 2] == "Self" {
                        match &self.metas[caller].self_type {
                            Some(t) => t.clone(),
                            None => return Vec::new(),
                        }
                    } else {
                        segs[n - 2].clone()
                    };
                    if !qual.starts_with(|c: char| c.is_ascii_uppercase()) {
                        // `module::name(..)` — a free fn behind a
                        // lowercase module path
                        return self.resolve_free(name, caller_crate);
                    }
                    self.by_name
                        .get(name)
                        .map(|cands| {
                            cands
                                .iter()
                                .copied()
                                .filter(|&g| {
                                    let m = &self.metas[g];
                                    m.self_type.as_deref() == Some(qual.as_str())
                                        || m.trait_name.as_deref() == Some(qual.as_str())
                                })
                                .collect()
                        })
                        .unwrap_or_default()
                }
            },
        }
    }

    /// Whether `candidate` could be a method on the caller's `Self`
    /// type: same impl self-type, or — for trait-decl default bodies,
    /// which have no self-type — the same trait.
    fn same_self(&self, caller: usize, candidate: usize) -> bool {
        let c = &self.metas[caller];
        let m = &self.metas[candidate];
        match &c.self_type {
            Some(t) => m.self_type.as_deref() == Some(t.as_str()),
            None => c.trait_name.is_some() && m.trait_name == c.trait_name,
        }
    }

    /// Free fns named `name` in `caller_crate`.
    fn resolve_free(&self, name: &str, caller_crate: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|cands| {
                cands
                    .iter()
                    .copied()
                    .filter(|&g| {
                        let m = &self.metas[g];
                        m.is_free && m.krate == caller_crate
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether fn `fn_idx` of file `file_idx` is hot-reachable.
    pub fn is_hot(&self, file_idx: usize, fn_idx: usize) -> bool {
        self.index
            .get(&(file_idx, fn_idx))
            .is_some_and(|&g| self.hot[g])
    }

    /// Whether a call site (inside fn `fn_idx` of file `file_idx`) can
    /// reach a condvar park: it is a parking primitive itself, or some
    /// fn it may resolve to can park.
    pub fn site_reaches_park(&self, file_idx: usize, fn_idx: usize, site: &CallSite) -> bool {
        if let Callee::Method { name, .. } = &site.callee {
            if PARK_PRIMITIVES.contains(&name.as_str()) {
                return true;
            }
        }
        let Some(&caller) = self.index.get(&(file_idx, fn_idx)) else {
            return false;
        };
        self.resolve(caller, site)
            .into_iter()
            .any(|g| self.can_park[g])
    }

    /// A short description of the callee, for diagnostics.
    pub fn describe_callee(site: &CallSite) -> String {
        match &site.callee {
            Callee::Path(segs) => segs.join("::"),
            Callee::Method { name, .. } => format!(".{name}(..)"),
            Callee::Macro(name) => format!("{name}!"),
        }
    }
}

/// Collect every call site in a body, recursively (closures, blocks,
/// loop headers/bodies, let initializers, call arguments).
pub fn collect_sites<'a>(nodes: &'a [Node], out: &mut Vec<&'a CallSite>) {
    for node in nodes {
        match node {
            Node::Call(site) => {
                out.push(site);
                collect_sites(&site.args, out);
            }
            Node::Loop(l) => {
                collect_sites(&l.header, out);
                collect_sites(&l.body, out);
            }
            Node::Closure(c) => collect_sites(&c.body, out),
            Node::Block { body, .. } => collect_sites(body, out),
            Node::Let(l) => collect_sites(&l.init, out),
            Node::DropCall { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn graph_of(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, Vec<String>) {
        let parsed: Vec<ParsedFile> = sources.iter().map(|(_, s)| parse(&lex(s))).collect();
        let paths: Vec<String> = sources.iter().map(|(p, _)| p.to_string()).collect();
        (parsed, paths)
    }

    fn build<'a>(parsed: &'a [ParsedFile], paths: &'a [String]) -> CallGraph {
        let units: Vec<Unit<'a>> = parsed
            .iter()
            .zip(paths)
            .map(|(parsed, path)| Unit {
                path,
                parsed,
                all_test: false,
            })
            .collect();
        CallGraph::build(&units)
    }

    fn hot_fn(graph: &CallGraph, parsed: &[ParsedFile], name: &str) -> bool {
        for (file_idx, p) in parsed.iter().enumerate() {
            for (fn_idx, f) in p.fns.iter().enumerate() {
                if f.name == name {
                    return graph.is_hot(file_idx, fn_idx);
                }
            }
        }
        panic!("no fn `{name}`");
    }

    #[test]
    fn retrieve_impl_seeds_and_propagates_across_files() {
        let (parsed, paths) = graph_of(&[
            (
                "crates/retrieval/src/engine.rs",
                "impl Retrieve for Engine {\n\
                     fn retrieve(&self, q: &Q) -> R { self.expand(q) }\n\
                 }\n\
                 impl Engine {\n\
                     fn expand(&self, q: &Q) -> R { score_all(q) }\n\
                     fn build(&mut self) { heavy_setup(); }\n\
                 }\n",
            ),
            (
                "crates/retrieval/src/scoring.rs",
                "fn score_all(q: &Q) -> R { todo(q) }\n\
                 fn heavy_setup() {}\n\
                 fn todo(_q: &Q) -> R { R }\n",
            ),
        ]);
        let graph = build(&parsed, &paths);
        assert!(hot_fn(&graph, &parsed, "retrieve"));
        assert!(hot_fn(&graph, &parsed, "expand"), "method resolution");
        assert!(hot_fn(&graph, &parsed, "score_all"), "free-fn, cross-file");
        assert!(hot_fn(&graph, &parsed, "todo"), "transitive");
        assert!(!hot_fn(&graph, &parsed, "build"), "build path stays cold");
        assert!(
            !hot_fn(&graph, &parsed, "heavy_setup"),
            "reachable only from the cold build path"
        );
    }

    #[test]
    fn common_method_names_do_not_resolve_unqualified() {
        let (parsed, paths) = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl Retrieve for E { fn retrieve(&self) { self.keys.insert(1); } }\n\
             impl Index { fn insert(&mut self, k: u32) { rebalance(); } }\n\
             fn rebalance() {}\n",
        )]);
        let graph = build(&parsed, &paths);
        assert!(
            !hot_fn(&graph, &parsed, "insert"),
            ".insert(..) is stoplisted — std-map noise must not mark build fns hot"
        );
        assert!(!hot_fn(&graph, &parsed, "rebalance"));
    }

    #[test]
    fn qualified_and_self_paths_resolve_through_the_stoplist() {
        let (parsed, paths) = graph_of(&[(
            "crates/x/src/lib.rs",
            "impl Retrieve for E {\n\
                 fn retrieve(&self) { Index::insert(&mut self.idx, 1); Self::helper(self); }\n\
             }\n\
             impl Index { fn insert(&mut self, k: u32) {} }\n\
             impl E { fn helper(&self) {} }\n",
        )]);
        let graph = build(&parsed, &paths);
        assert!(
            hot_fn(&graph, &parsed, "insert"),
            "a path-qualified call bypasses the stoplist"
        );
        assert!(
            hot_fn(&graph, &parsed, "helper"),
            "Self:: uses the impl type"
        );
    }

    #[test]
    fn hot_marker_seeds_an_otherwise_cold_fn() {
        let (parsed, paths) = graph_of(&[(
            "crates/x/src/lib.rs",
            "// amcad-lint: hot-path — worker dispatch loop\n\
             fn worker_loop() { dispatch(); }\n\
             fn dispatch() {}\n\
             fn unrelated() {}\n",
        )]);
        let graph = build(&parsed, &paths);
        assert!(hot_fn(&graph, &parsed, "worker_loop"));
        assert!(hot_fn(&graph, &parsed, "dispatch"));
        assert!(!hot_fn(&graph, &parsed, "unrelated"));
    }

    #[test]
    fn park_reachability_propagates_through_callers() {
        let (parsed, paths) = graph_of(&[(
            "crates/retrieval/src/runtime/park_pool.rs",
            "impl PersistentPool {\n\
                 fn run(&self, jobs: &J) { self.participate(); }\n\
                 fn participate(&self) { let mut g = lock(&self.state); g = self.cond.wait(g); }\n\
                 fn threads(&self) -> usize { self.n }\n\
             }\n",
        )]);
        let graph = build(&parsed, &paths);
        // find `run` and check its participate() site reaches a park
        let item = parsed[0].fns.iter().find(|f| f.name == "run").unwrap();
        let mut sites = Vec::new();
        collect_sites(&item.body, &mut sites);
        let participate = sites
            .iter()
            .find(|s| matches!(&s.callee, Callee::Method { name, .. } if name == "participate"))
            .unwrap();
        assert!(graph.site_reaches_park(0, 0, participate));
        // a wait primitive is a park site even with no resolution
        let part_item = parsed[0]
            .fns
            .iter()
            .find(|f| f.name == "participate")
            .unwrap();
        let mut psites = Vec::new();
        collect_sites(&part_item.body, &mut psites);
        let wait = psites
            .iter()
            .find(|s| matches!(&s.callee, Callee::Method { name, .. } if name == "wait"))
            .unwrap();
        assert!(graph.site_reaches_park(0, 1, wait));
        // threads() has no sites at all — nothing to reach a park by
        let threads = parsed[0].fns.iter().find(|f| f.name == "threads").unwrap();
        let mut tsites = Vec::new();
        collect_sites(&threads.body, &mut tsites);
        assert!(tsites.is_empty());
    }

    #[test]
    fn test_fns_never_seed_the_hot_set() {
        let (parsed, paths) = graph_of(&[(
            "crates/x/src/lib.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
                 impl Retrieve for Fake { fn retrieve(&self) { helper(); } }\n\
             }\n\
             fn helper() {}\n",
        )]);
        let graph = build(&parsed, &paths);
        assert!(
            !hot_fn(&graph, &parsed, "helper"),
            "a test-only Retrieve impl is not a serving entry point"
        );
    }
}
