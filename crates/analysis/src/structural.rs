//! The four structural rules built on the parser + call graph:
//! `alloc-in-hot-loop`, `guard-across-park`, `unbounded-fanout`,
//! `soa-layout`. See `src/README.md` for each rule's contract and
//! motivating incident; the token-pattern rules live in
//! [`crate::rules`].

use crate::callgraph::CallGraph;
use crate::parser::{CallSite, Callee, FnItem, LoopKind, Node, ParsedFile};
use crate::rules::RawDiagnostic;

/// Container types whose `::new` / `::with_capacity` constructors
/// allocate (or set up to allocate) on the heap.
const CONTAINERS: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Run the structural rules over one parsed file. `file_idx` indexes
/// this file inside the [`CallGraph`]'s unit list.
pub fn run_rules(
    path: &str,
    parsed: &ParsedFile,
    file_idx: usize,
    graph: &CallGraph,
    all_test: bool,
) -> Vec<RawDiagnostic> {
    if all_test || path.contains("crates/compat/") {
        return Vec::new();
    }
    let fanout_scoped = in_fanout_scope(path);
    let mut out = Vec::new();
    for (fn_idx, item) in parsed.fns.iter().enumerate() {
        if item.in_test {
            continue;
        }
        let hot = graph.is_hot(file_idx, fn_idx);
        if hot {
            alloc_in_hot_loop(item, &mut out);
            soa_layout(item, &mut out);
        }
        guard_across_park(item, file_idx, fn_idx, graph, &mut out);
        if fanout_scoped {
            unbounded_fanout(&item.body, &mut out);
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(b.rule)));
    out
}

/// Files the `unbounded-fanout` rule applies to: the serving runtime
/// and the shard fan-out layer.
fn in_fanout_scope(path: &str) -> bool {
    path.contains("/runtime/") || path.starts_with("runtime/") || path.ends_with("shard.rs")
}

// ---------------------------------------------------------------- alloc-in-hot-loop

/// **alloc-in-hot-loop** — inside a loop body of a hot-reachable fn,
/// no `Vec::new` / `with_capacity` / `.push` / `.to_vec` / `.clone()`
/// / `format!` / `vec!`: hoist the allocation to a reused scratch
/// buffer outside the loop, the way `retrieve_batch` does. Pushes
/// into a `&mut` parameter (the caller-owned scratch convention) or
/// into a local pre-sized with `with_capacity` in the same fn are the
/// *hoisted* pattern and pass. Closures handed to iterator adapters
/// (`.map(|x| ..)`) run once per element and count as loop bodies.
fn alloc_in_hot_loop(item: &FnItem, out: &mut Vec<RawDiagnostic>) {
    let mut scratch: Vec<String> = item.mut_ref_params.clone();
    collect_with_capacity_locals(&item.body, &mut scratch);
    let mut ctx = AllocCtx {
        fn_name: &item.name,
        scratch: &scratch,
        out,
    };
    walk_alloc(&item.body, 0, &mut ctx);
}

struct AllocCtx<'a> {
    fn_name: &'a str,
    scratch: &'a [String],
    out: &'a mut Vec<RawDiagnostic>,
}

fn collect_with_capacity_locals(nodes: &[Node], out: &mut Vec<String>) {
    for node in nodes {
        match node {
            Node::Let(l) => {
                if l.is_with_capacity {
                    if let Some(name) = &l.name {
                        out.push(name.clone());
                    }
                }
                collect_with_capacity_locals(&l.init, out);
            }
            Node::Loop(l) => {
                collect_with_capacity_locals(&l.header, out);
                collect_with_capacity_locals(&l.body, out);
            }
            Node::Closure(c) => collect_with_capacity_locals(&c.body, out),
            Node::Block { body, .. } => collect_with_capacity_locals(body, out),
            Node::Call(c) => collect_with_capacity_locals(&c.args, out),
            Node::DropCall { .. } => {}
        }
    }
}

fn walk_alloc(nodes: &[Node], depth: usize, ctx: &mut AllocCtx<'_>) {
    for node in nodes {
        match node {
            Node::Loop(l) => {
                // a `for` header is evaluated once, a `while` header
                // re-evaluates every iteration
                let header_depth = match l.kind {
                    LoopKind::While => depth + 1,
                    _ => depth,
                };
                walk_alloc(&l.header, header_depth, ctx);
                walk_alloc(&l.body, depth + 1, ctx);
            }
            Node::Closure(c) => {
                let body_depth = if c.iter_adapter { depth + 1 } else { depth };
                walk_alloc(&c.body, body_depth, ctx);
            }
            Node::Block { body, .. } => walk_alloc(body, depth, ctx),
            Node::Let(l) => walk_alloc(&l.init, depth, ctx),
            Node::Call(site) => {
                if depth > 0 {
                    check_alloc_site(site, ctx);
                }
                walk_alloc(&site.args, depth, ctx);
            }
            Node::DropCall { .. } => {}
        }
    }
}

fn check_alloc_site(site: &CallSite, ctx: &mut AllocCtx<'_>) {
    const RULE: &str = "alloc-in-hot-loop";
    let flagged: Option<String> = match &site.callee {
        Callee::Path(segs) if segs.len() >= 2 => {
            let (ty, ctor) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
            if CONTAINERS.contains(&ty.as_str()) && (ctor == "new" || ctor == "with_capacity") {
                Some(format!("{ty}::{ctor}"))
            } else {
                None
            }
        }
        Callee::Method { name, recv } if name == "push" => {
            let exempt = recv
                .as_deref()
                .is_some_and(|r| ctx.scratch.iter().any(|s| s == r));
            if exempt {
                None
            } else {
                Some(".push(..) into a non-scratch target".to_string())
            }
        }
        Callee::Method { name, .. } if name == "to_vec" => Some(".to_vec()".to_string()),
        Callee::Method { name, .. } if name == "clone" => Some(".clone()".to_string()),
        Callee::Macro(name) if name == "format" || name == "vec" => Some(format!("{name}!")),
        _ => None,
    };
    if let Some(what) = flagged {
        ctx.out.push(RawDiagnostic {
            rule: RULE,
            line: site.line,
            message: format!(
                "{what} inside a loop of hot-path fn `{}` — hoist to a reused scratch \
                 buffer (&mut param or with_capacity local) outside the loop",
                ctx.fn_name
            ),
        });
    }
}

// ---------------------------------------------------------------- soa-layout

/// Per-point AoS accessors on the mixed-curvature point sets: each call
/// re-derives one point's slice (or weight row) from the packed storage,
/// which defeats the contiguous SoA sweep the distance kernels are built
/// around.
const AOS_ACCESSORS: &[&str] = &["point", "weight"];

/// **soa-layout** — inside a loop body of a hot-reachable fn, no
/// per-point AoS accessor (`.point(i)` / `.weight(i)`): a distance loop
/// that touches candidates one point at a time defeats the contiguous
/// structure-of-arrays layout the kernels vectorise over. Gather the
/// slots and evaluate through the blocked kernels
/// (`scan_range_into` / `scan_indices_into`), the way the exact scan,
/// the IVF probes and the HNSW beam do. Build- and insert-time loops are
/// not hot-reachable and stay free to use the accessors.
fn soa_layout(item: &FnItem, out: &mut Vec<RawDiagnostic>) {
    walk_soa(&item.body, 0, &item.name, out);
}

fn walk_soa(nodes: &[Node], depth: usize, fn_name: &str, out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "soa-layout";
    for node in nodes {
        match node {
            Node::Loop(l) => {
                let header_depth = match l.kind {
                    LoopKind::While => depth + 1,
                    _ => depth,
                };
                walk_soa(&l.header, header_depth, fn_name, out);
                walk_soa(&l.body, depth + 1, fn_name, out);
            }
            Node::Closure(c) => {
                let body_depth = if c.iter_adapter { depth + 1 } else { depth };
                walk_soa(&c.body, body_depth, fn_name, out);
            }
            Node::Block { body, .. } => walk_soa(body, depth, fn_name, out),
            Node::Let(l) => walk_soa(&l.init, depth, fn_name, out),
            Node::Call(site) => {
                if depth > 0 {
                    if let Callee::Method { name, .. } = &site.callee {
                        if AOS_ACCESSORS.contains(&name.as_str()) {
                            out.push(RawDiagnostic {
                                rule: RULE,
                                line: site.line,
                                message: format!(
                                    "per-point accessor .{name}(..) inside a loop of hot-path \
                                     fn `{fn_name}` — gather the slots and evaluate through the \
                                     SoA kernels (scan_range_into / scan_indices_into) instead \
                                     of touching points one at a time"
                                ),
                            });
                        }
                    }
                }
                walk_soa(&site.args, depth, fn_name, out);
            }
            Node::DropCall { .. } => {}
        }
    }
}

// ---------------------------------------------------------------- guard-across-park

/// **guard-across-park** — no lock guard may be live across a call
/// that can reach a condvar park (`Condvar::wait` and the fns that
/// wrap it, `PersistentPool::run` included): a parked thread holding a
/// lock is the runtime's deadlock shape. The condvar handoff itself
/// (`cv.wait(guard)`) is exempt — the wait *consumes* that guard —
/// but only for the guard actually passed in. Guards die at the end
/// of their enclosing block or at an explicit `drop(guard)`.
fn guard_across_park(
    item: &FnItem,
    file_idx: usize,
    fn_idx: usize,
    graph: &CallGraph,
    out: &mut Vec<RawDiagnostic>,
) {
    let mut scopes: Vec<Vec<String>> = vec![Vec::new()];
    walk_guards(
        &item.body,
        &mut scopes,
        &mut GuardCtx {
            file_idx,
            fn_idx,
            graph,
            out,
        },
    );
}

struct GuardCtx<'a> {
    file_idx: usize,
    fn_idx: usize,
    graph: &'a CallGraph,
    out: &'a mut Vec<RawDiagnostic>,
}

fn walk_guards(nodes: &[Node], scopes: &mut Vec<Vec<String>>, ctx: &mut GuardCtx<'_>) {
    for node in nodes {
        match node {
            Node::Let(l) => {
                // the initializer runs before the binding exists
                walk_guards(&l.init, scopes, ctx);
                if l.is_guard {
                    if let Some(name) = &l.name {
                        if let Some(top) = scopes.last_mut() {
                            top.push(name.clone());
                        }
                    }
                }
            }
            Node::DropCall { name, .. } => {
                for scope in scopes.iter_mut() {
                    scope.retain(|g| g != name);
                }
            }
            Node::Block { body, .. } => {
                scopes.push(Vec::new());
                walk_guards(body, scopes, ctx);
                scopes.pop();
            }
            Node::Loop(l) => {
                walk_guards(&l.header, scopes, ctx);
                scopes.push(Vec::new());
                walk_guards(&l.body, scopes, ctx);
                scopes.pop();
            }
            Node::Closure(c) => {
                scopes.push(Vec::new());
                walk_guards(&c.body, scopes, ctx);
                scopes.pop();
            }
            Node::Call(site) => {
                // arguments evaluate before the call itself
                walk_guards(&site.args, scopes, ctx);
                check_park_site(site, scopes, ctx);
            }
        }
    }
}

fn check_park_site(site: &CallSite, scopes: &[Vec<String>], ctx: &mut GuardCtx<'_>) {
    const RULE: &str = "guard-across-park";
    let any_live = scopes.iter().any(|s| !s.is_empty());
    if !any_live {
        return;
    }
    if !ctx.graph.site_reaches_park(ctx.file_idx, ctx.fn_idx, site) {
        return;
    }
    for scope in scopes {
        for guard in scope {
            // the condvar handoff: the wait consumes this guard
            if site.arg_idents.iter().any(|a| a == guard) {
                continue;
            }
            ctx.out.push(RawDiagnostic {
                rule: RULE,
                line: site.line,
                message: format!(
                    "lock guard `{guard}` is live across {} which can reach a condvar \
                     park — scope the guard (or drop(..) it) before parking",
                    CallGraph::describe_callee(site)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- unbounded-fanout

/// **unbounded-fanout** — in the serving runtime (`runtime/`) and the
/// shard fan-out layer (`shard.rs`), every loop must have a bound that
/// traces to a named config knob. `for` over a collection or closed
/// range is bounded by construction (shard/replica/hedge counts are
/// config); bare `loop`, `while` / `while let`, and open-range `for`
/// carry no structural bound — restructure to a bounded `for`, or
/// waive with the argument that bounds the iteration.
fn unbounded_fanout(nodes: &[Node], out: &mut Vec<RawDiagnostic>) {
    const RULE: &str = "unbounded-fanout";
    for node in nodes {
        match node {
            Node::Loop(l) => {
                let what = match l.kind {
                    LoopKind::Loop => Some("bare `loop`"),
                    LoopKind::While => Some("`while` loop"),
                    LoopKind::ForOpenRange => Some("open-range `for`"),
                    LoopKind::For => None,
                };
                if let Some(what) = what {
                    out.push(RawDiagnostic {
                        rule: RULE,
                        line: l.line,
                        message: format!(
                            "{what} in fan-out code has no structural bound — iterate a \
                             config-bounded collection/range, or waive with the bounding \
                             argument"
                        ),
                    });
                }
                unbounded_fanout(&l.header, out);
                unbounded_fanout(&l.body, out);
            }
            Node::Closure(c) => unbounded_fanout(&c.body, out),
            Node::Block { body, .. } => unbounded_fanout(body, out),
            Node::Let(l) => unbounded_fanout(&l.init, out),
            Node::Call(site) => unbounded_fanout(&site.args, out),
            Node::DropCall { .. } => {}
        }
    }
}
