//! A hand-rolled recursive-descent item/expression parser on top of
//! [`crate::lexer`]: exactly the structure the call-graph and the
//! hot-path rules need, and nothing more.
//!
//! This is deliberately **not** rustc. There is no type inference, no
//! trait solving, no macro expansion. What it does recover, reliably:
//!
//! * **Items.** `fn` items with their name, the `impl` self-type and
//!   trait they belong to (`impl Retrieve for ShardedEngine`), their
//!   `&mut`-reference parameters (the hoisted-scratch calling
//!   convention), and whether they sit in test code.
//! * **Body structure.** Loops (with their kind — `loop`, `while`,
//!   `for`, open-range `for` — and label), closures (with an
//!   iterator-adapter flag when passed to `.map(..)`-style methods),
//!   nested blocks, `let` bindings (guard-producing and
//!   `with_capacity` initializers classified), and `drop(x)` calls.
//! * **Call sites.** Path calls (`Vec::new(..)`), method calls
//!   (`.push(..)` with the identifier immediately left of the dot),
//!   and macro invocations (`format!(..)`), each with the bare
//!   identifiers appearing in its argument list.
//!
//! The parser never fails: unexpected token shapes degrade into
//! skipped tokens, because a lint tool must keep walking the rest of
//! the workspace. Anything it cannot classify simply produces no
//! structure — rules only ever act on shapes that were positively
//! recognised.

use crate::lexer::{LexedFile, LineKind, Token, TokenKind};

/// The parsed form of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
}

/// One `fn` item (free, inherent, or trait-impl method).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Last segment of the `impl` self-type (`impl ShardedEngine` /
    /// `impl Retrieve for ShardedEngine` → `ShardedEngine`).
    pub self_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods and trait-decl
    /// default bodies (`Retrieve`).
    pub trait_name: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: usize,
    pub in_test: bool,
    /// Whether a `// amcad-lint: hot-path` marker precedes the item.
    pub hot_marker: bool,
    /// Names of parameters whose type starts `&mut` — the caller-owned
    /// scratch-buffer convention (`keys: &mut Vec<Key>`).
    pub mut_ref_params: Vec<String>,
    pub body: Vec<Node>,
}

/// One structural node inside a fn body, in statement order.
#[derive(Debug)]
pub enum Node {
    Loop(LoopNode),
    Closure(ClosureNode),
    /// A nested `{ .. }` scope (plain block, `unsafe` block, `if` /
    /// `match` body). Guards bound inside die at its end.
    Block {
        line: usize,
        body: Vec<Node>,
    },
    Let(LetNode),
    Call(CallSite),
    /// An explicit `drop(name)` — ends the named guard's liveness.
    DropCall {
        name: String,
        line: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// Bare `loop { .. }` — unbounded by construction.
    Loop,
    /// `while cond { .. }` / `while let pat = e { .. }`.
    While,
    /// `for pat in expr { .. }` over a collection or closed range —
    /// bounded by the iterated collection.
    For,
    /// `for pat in start.. { .. }` — an open range, unbounded.
    ForOpenRange,
}

#[derive(Debug)]
pub struct LoopNode {
    pub kind: LoopKind,
    pub label: Option<String>,
    /// 1-indexed line of the loop keyword.
    pub line: usize,
    /// Nodes found in the loop header (the `while` condition / `for`
    /// iterator expression) — evaluated outside the repeated body for
    /// `for`, per-iteration for `while`.
    pub header: Vec<Node>,
    pub body: Vec<Node>,
}

#[derive(Debug)]
pub struct ClosureNode {
    pub line: usize,
    /// Whether the closure is an argument to an iterator-adapter
    /// method (`.map(|x| ..)`) — its body runs once per element, so
    /// hot-loop rules treat it as a loop body.
    pub iter_adapter: bool,
    pub body: Vec<Node>,
}

#[derive(Debug)]
pub struct LetNode {
    /// First identifier bound by the pattern (`let (g, _) = ..` → `g`).
    pub name: Option<String>,
    /// 1-indexed line of the `let` keyword.
    pub line: usize,
    /// Whether the initializer produces a lock guard: a bare
    /// `.lock()` / zero-arg `.read()` / `.write()` / free `lock(..)`
    /// helper / condvar `.wait*(..)` rebind, with nothing chained
    /// after it (so `m.lock().len()` is a temporary, not a guard).
    pub is_guard: bool,
    /// Whether the initializer calls `with_capacity` — a pre-sized
    /// scratch buffer pushes may target inside hot loops.
    pub is_with_capacity: bool,
    /// Nodes found inside the initializer expression.
    pub init: Vec<Node>,
}

/// What a call site invokes.
#[derive(Debug)]
pub enum Callee {
    /// `name(..)` / `Type::name(..)` / `a::b::name(..)` — the `::`
    /// path segments, generics stripped.
    Path(Vec<String>),
    /// `.name(..)` with the identifier immediately left of the dot,
    /// if there is one (`keys.push(..)` → `Some("keys")`,
    /// `f().push(..)` → `None`).
    Method { name: String, recv: Option<String> },
    /// `name!(..)` / `name![..]` / `name!{..}`.
    Macro(String),
}

#[derive(Debug)]
pub struct CallSite {
    pub callee: Callee,
    /// 1-indexed line of the callee name.
    pub line: usize,
    /// Bare identifiers appearing anywhere in the argument list (used
    /// for the condvar-wait guard-handoff exemption).
    pub arg_idents: Vec<String>,
    /// Nested structure inside the argument list (closures, calls).
    pub args: Vec<Node>,
}

/// Iterator-adapter methods whose closure argument runs once per
/// element of the iterated collection.
const ITER_ADAPTERS: &[&str] = &[
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "try_fold",
    "retain",
    "any",
    "all",
    "position",
    "find",
    "find_map",
    "scan",
    "take_while",
    "skip_while",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
    "sort_by_key",
    "sort_by",
    "sort_unstable_by",
    "inspect",
    "partition",
    "reduce",
    "map_while",
    "flat_map_iter",
];

/// Parse one lexed file into items. Never fails; unrecognised token
/// runs are skipped.
pub fn parse(file: &LexedFile) -> ParsedFile {
    let mut p = Parser {
        toks: &file.tokens,
        pos: 0,
        fns: Vec::new(),
    };
    p.items(file.tokens.len(), None, None);
    let mut parsed = ParsedFile { fns: p.fns };
    for target in hot_marker_targets(file) {
        // the marker shields the first fn item at or below its target
        // line (attributes between marker and `fn` are fine: the fn
        // keyword's line is still the first candidate ≥ the target)
        if let Some(f) = parsed
            .fns
            .iter_mut()
            .filter(|f| f.line >= target)
            .min_by_key(|f| f.line)
        {
            f.hot_marker = true;
        }
    }
    parsed
}

/// Target lines of `// amcad-lint: hot-path` markers (the marker's own
/// line for a trailing comment, else the next code line below it).
fn hot_marker_targets(file: &LexedFile) -> Vec<usize> {
    let mut out = Vec::new();
    for c in &file.comments {
        if c.is_doc() {
            continue; // docs may *mention* the marker without arming it
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("amcad-lint:") {
            rest = &rest[at + "amcad-lint:".len()..];
            if rest.trim_start().starts_with("hot-path") {
                let target = if file.line_kind(c.start_line) == LineKind::Code {
                    c.start_line
                } else {
                    file.next_code_line(c.end_line + 1).unwrap_or(c.end_line)
                };
                out.push(target);
            }
        }
    }
    out
}

/// How far an expression walk runs before handing back to its caller.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StopMode {
    /// Consume everything up to `end` (statement lists, arg lists).
    Run,
    /// Stop (without consuming) at the first `{` at this nesting level
    /// — loop/`if`/`match` headers, where `{` opens the body.
    Brace,
    /// Stop (without consuming) at `,` or `;` at this nesting level —
    /// expression-bodied closures.
    CommaOrSemi,
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(name))
    }

    /// Index just past the delimiter closing the one at `open_idx`
    /// (which must hold `open`), clamped to `limit` when unbalanced.
    fn skip_matched(&self, open_idx: usize, open: char, close: char, limit: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open_idx;
        while i < limit {
            let t = &self.toks[i];
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        limit
    }

    /// Skip a balanced `<..>` generics region starting at `open_idx`.
    /// `>` is not counted when it follows `-` or `=` (`->` / `=>`).
    fn skip_angles(&self, open_idx: usize, limit: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open_idx;
        while i < limit {
            let t = &self.toks[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let after_arrow = i > 0 && (self.is_punct(i - 1, '-') || self.is_punct(i - 1, '='));
                if !after_arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
            }
            i += 1;
        }
        limit
    }

    /// Item-level walk over `[self.pos, end)`: collects `fn` items,
    /// descends into `impl` / `trait` / `mod` bodies, skips the rest.
    fn items(&mut self, end: usize, self_type: Option<&str>, trait_name: Option<&str>) {
        while self.pos < end {
            let i = self.pos;
            let Some(t) = self.tok(i) else { break };
            match &t.kind {
                TokenKind::Ident(name) if name == "fn" => {
                    if self.tok(i + 1).and_then(Token::ident).is_some() {
                        self.fn_item(end, self_type, trait_name);
                    } else {
                        self.pos += 1; // `fn(..)` pointer type
                    }
                }
                TokenKind::Ident(name) if name == "impl" => self.impl_item(end),
                TokenKind::Ident(name) if name == "trait" => {
                    // `trait Name .. { default bodies }`
                    let tn = self.tok(i + 1).and_then(Token::ident).map(str::to_owned);
                    self.pos = i + 1;
                    while self.pos < end
                        && !self.is_punct(self.pos, '{')
                        && !self.is_punct(self.pos, ';')
                    {
                        self.pos += 1;
                    }
                    if self.is_punct(self.pos, '{') {
                        let close = self.skip_matched(self.pos, '{', '}', end);
                        self.pos += 1;
                        self.items(close.saturating_sub(1), None, tn.as_deref());
                        self.pos = close;
                    }
                }
                TokenKind::Ident(name) if name == "mod" => {
                    // descend into inline module bodies
                    self.pos = i + 1;
                    while self.pos < end
                        && !self.is_punct(self.pos, '{')
                        && !self.is_punct(self.pos, ';')
                    {
                        self.pos += 1;
                    }
                    if self.is_punct(self.pos, '{') {
                        let close = self.skip_matched(self.pos, '{', '}', end);
                        self.pos += 1;
                        self.items(close.saturating_sub(1), self_type, trait_name);
                        self.pos = close;
                    }
                }
                TokenKind::Ident(name) if name == "macro_rules" => {
                    // skip the whole definition: its body is patterns
                    self.pos = i + 1;
                    while self.pos < end && !self.is_punct(self.pos, '{') {
                        self.pos += 1;
                    }
                    self.pos = self.skip_matched(self.pos, '{', '}', end);
                }
                TokenKind::Punct('{') => {
                    // struct/enum/extern bodies: recurse — the `fn`
                    // guard above keeps fn-pointer field types out
                    let close = self.skip_matched(i, '{', '}', end);
                    self.pos = i + 1;
                    self.items(close.saturating_sub(1), self_type, trait_name);
                    self.pos = close;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Parse `impl<..> Path (for Path)? (where ..)? { items }` with the
    /// self-type (and trait) threaded into the contained fns.
    fn impl_item(&mut self, end: usize) {
        let mut i = self.pos + 1; // past `impl`
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        let (first, after_first) = self.type_path_last_segment(i, end);
        let (self_ty, trait_ty, mut j) = if self.is_ident(after_first, "for") {
            let (second, after_second) = self.type_path_last_segment(after_first + 1, end);
            (second, first, after_second)
        } else {
            (first, None, after_first)
        };
        while j < end && !self.is_punct(j, '{') && !self.is_punct(j, ';') {
            j += 1;
        }
        if self.is_punct(j, '{') {
            let close = self.skip_matched(j, '{', '}', end);
            self.pos = j + 1;
            self.items(
                close.saturating_sub(1),
                self_ty.as_deref(),
                trait_ty.as_deref(),
            );
            self.pos = close;
        } else {
            self.pos = j.max(self.pos + 1);
        }
    }

    /// Read a type path at `i` (skipping `&`, `mut`, `dyn` and
    /// lifetimes), returning the last path-segment identifier and the
    /// index just past the path (generic args skipped).
    fn type_path_last_segment(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        while i < end {
            match self.tok(i).map(|t| &t.kind) {
                Some(TokenKind::Punct('&')) | Some(TokenKind::Punct('*')) => i += 1,
                Some(TokenKind::Lifetime(_)) => i += 1,
                Some(TokenKind::Ident(n)) if n == "mut" || n == "dyn" || n == "const" => i += 1,
                _ => break,
            }
        }
        let mut last = None;
        while i < end {
            let Some(TokenKind::Ident(n)) = self.tok(i).map(|t| &t.kind) else {
                break;
            };
            if matches!(n.as_str(), "for" | "where") {
                break;
            }
            last = Some(n.clone());
            i += 1;
            if self.is_punct(i, '<') {
                i = self.skip_angles(i, end);
            }
            // the path continues only through a `::` separator
            if self.is_punct(i, ':') && self.is_punct(i + 1, ':') {
                i += 2;
            } else {
                break;
            }
        }
        (last, i)
    }

    /// Parse one `fn` item starting at the `fn` keyword.
    fn fn_item(&mut self, end: usize, self_type: Option<&str>, trait_name: Option<&str>) {
        let fn_tok = &self.toks[self.pos];
        let line = fn_tok.line;
        let in_test = fn_tok.in_test;
        let Some(name) = self.tok(self.pos + 1).and_then(Token::ident) else {
            self.pos += 1;
            return;
        };
        let name = name.to_owned();
        let mut i = self.pos + 2;
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        if !self.is_punct(i, '(') {
            self.pos = i.max(self.pos + 1);
            return;
        }
        let params_close = self.skip_matched(i, '(', ')', end);
        let mut_ref_params = self.mut_ref_params(i + 1, params_close.saturating_sub(1));
        // return type / where clause: scan to the body `{` or a `;`
        // (trait method declaration without a body)
        let mut j = params_close;
        while j < end && !self.is_punct(j, '{') && !self.is_punct(j, ';') {
            // a `fn` keyword here means we ran off a malformed item
            // (`impl` is fine: `-> impl Iterator<..>` return types)
            if self.is_ident(j, "fn") {
                break;
            }
            j += 1;
        }
        let body = if self.is_punct(j, '{') {
            let close = self.skip_matched(j, '{', '}', end);
            self.pos = j + 1;
            let body = self.exprs(close.saturating_sub(1), StopMode::Run);
            self.pos = close;
            body
        } else {
            self.pos = (j + 1).min(end);
            Vec::new()
        };
        self.fns.push(FnItem {
            name,
            self_type: self_type.map(str::to_owned),
            trait_name: trait_name.map(str::to_owned),
            line,
            in_test,
            hot_marker: false,
            mut_ref_params,
            body,
        });
    }

    /// Parameter names whose type begins `&mut` (lifetime allowed:
    /// `&'a mut`), scanned over `[start, end)` inside the fn parens.
    fn mut_ref_params(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut depth = 0usize;
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('>') if !(i > 0 && self.is_punct(i - 1, '-')) => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Ident(name)
                    if depth == 0 && self.is_punct(i + 1, ':') && !self.is_punct(i + 2, ':') =>
                {
                    let mut k = i + 2;
                    if self.is_punct(k, '&') {
                        k += 1;
                        if matches!(self.tok(k).map(|t| &t.kind), Some(TokenKind::Lifetime(_))) {
                            k += 1;
                        }
                        if self.is_ident(k, "mut") {
                            out.push(name.clone());
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Expression/statement walk over `[self.pos, end)`. Returns the
    /// nodes found; `self.pos` ends at `end` (or at the stop token for
    /// the `Brace` / `CommaOrSemi` modes, unconsumed).
    fn exprs(&mut self, end: usize, stop: StopMode) -> Vec<Node> {
        let mut nodes = Vec::new();
        let mut label: Option<String> = None;
        while self.pos < end {
            let i = self.pos;
            let t = &self.toks[i];
            match &t.kind {
                TokenKind::Punct('{') if stop == StopMode::Brace => break,
                TokenKind::Punct(',') | TokenKind::Punct(';') if stop == StopMode::CommaOrSemi => {
                    break
                }
                TokenKind::Punct('{') => {
                    let close = self.skip_matched(i, '{', '}', end);
                    self.pos = i + 1;
                    let body = self.exprs(close.saturating_sub(1), StopMode::Run);
                    nodes.push(Node::Block { line: t.line, body });
                    self.pos = close;
                }
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    let (open, close_c) = if t.is_punct('(') {
                        ('(', ')')
                    } else {
                        ('[', ']')
                    };
                    let close = self.skip_matched(i, open, close_c, end);
                    self.pos = i + 1;
                    // transparent: nodes inside join the current list
                    nodes.extend(self.exprs(close.saturating_sub(1), StopMode::Run));
                    self.pos = close;
                }
                TokenKind::Punct('#') => {
                    // statement-level attribute: skip to its `]`
                    let mut k = i + 1;
                    if self.is_punct(k, '!') {
                        k += 1;
                    }
                    if self.is_punct(k, '[') {
                        self.pos = self.skip_matched(k, '[', ']', end);
                    } else {
                        self.pos = i + 1;
                    }
                }
                TokenKind::Punct('|') if self.closure_starts_at(i) => {
                    nodes.push(self.closure(end, false));
                }
                TokenKind::Lifetime(l)
                    if self.is_punct(i + 1, ':')
                        && (self.is_ident(i + 2, "loop")
                            || self.is_ident(i + 2, "while")
                            || self.is_ident(i + 2, "for")) =>
                {
                    label = Some(l.clone());
                    self.pos = i + 2;
                    continue; // the loop keyword picks the label up
                }
                TokenKind::Ident(name) => {
                    let taken = label.take();
                    match name.as_str() {
                        "let" if stop != StopMode::Brace => nodes.push(self.let_stmt(end)),
                        "let" => self.pos += 1, // if-let / while-let header
                        "loop" => {
                            self.pos = i + 1;
                            let body = self.braced_body(end);
                            nodes.push(Node::Loop(LoopNode {
                                kind: LoopKind::Loop,
                                label: taken,
                                line: t.line,
                                header: Vec::new(),
                                body,
                            }));
                        }
                        "while" => {
                            self.pos = i + 1;
                            if self.is_ident(self.pos, "let") {
                                self.pos += 1;
                            }
                            let header = self.exprs(end, StopMode::Brace);
                            let body = self.braced_body(end);
                            nodes.push(Node::Loop(LoopNode {
                                kind: LoopKind::While,
                                label: taken,
                                line: t.line,
                                header,
                                body,
                            }));
                        }
                        "for" if !self.is_punct(i + 1, '<') => {
                            // `for pat in header { body }` (a `for<'a>`
                            // higher-ranked bound is skipped above)
                            self.pos = i + 1;
                            while self.pos < end
                                && !self.is_ident(self.pos, "in")
                                && !self.is_punct(self.pos, '{')
                            {
                                // patterns may contain parens: jump them
                                if self.is_punct(self.pos, '(') {
                                    self.pos = self.skip_matched(self.pos, '(', ')', end);
                                } else {
                                    self.pos += 1;
                                }
                            }
                            if self.is_ident(self.pos, "in") {
                                self.pos += 1;
                            }
                            let header_start = self.pos;
                            let header = self.exprs(end, StopMode::Brace);
                            let header_end = self.pos;
                            // `start..` open range: the header's last two
                            // tokens before the body brace are `..`
                            let open_range = header_end >= header_start + 2
                                && self.is_punct(header_end - 1, '.')
                                && self.is_punct(header_end - 2, '.');
                            let body = self.braced_body(end);
                            nodes.push(Node::Loop(LoopNode {
                                kind: if open_range {
                                    LoopKind::ForOpenRange
                                } else {
                                    LoopKind::For
                                },
                                label: taken,
                                line: t.line,
                                header,
                                body,
                            }));
                        }
                        "if" => {
                            self.pos = i + 1;
                            if self.is_ident(self.pos, "let") {
                                self.pos += 1;
                            }
                            nodes.extend(self.exprs(end, StopMode::Brace));
                            // the `{` body is handled by the next turn
                        }
                        "match" => {
                            self.pos = i + 1;
                            nodes.extend(self.exprs(end, StopMode::Brace));
                        }
                        "drop" if self.is_punct(i + 1, '(') => {
                            let close = self.skip_matched(i + 1, '(', ')', end);
                            let only_ident =
                                close == i + 4 && self.tok(i + 2).and_then(Token::ident).is_some();
                            if only_ident {
                                let dropped =
                                    self.tok(i + 2).and_then(Token::ident).unwrap().to_owned();
                                nodes.push(Node::DropCall {
                                    name: dropped,
                                    line: t.line,
                                });
                                self.pos = close;
                            } else {
                                nodes.push(self.call(i, end));
                            }
                        }
                        "macro_rules" => {
                            self.pos = i + 1;
                            while self.pos < end && !self.is_punct(self.pos, '{') {
                                self.pos += 1;
                            }
                            self.pos = self.skip_matched(self.pos, '{', '}', end);
                        }
                        _ if self.is_punct(i + 1, '!')
                            && (self.is_punct(i + 2, '(')
                                || self.is_punct(i + 2, '[')
                                || self.is_punct(i + 2, '{')) =>
                        {
                            nodes.push(self.macro_call(i, end));
                        }
                        _ if self.is_punct(i + 1, '(') => nodes.push(self.call(i, end)),
                        _ => self.pos += 1,
                    }
                }
                _ => self.pos += 1,
            }
        }
        nodes
    }

    /// Parse the `{ .. }` body that follows a loop keyword/header.
    fn braced_body(&mut self, end: usize) -> Vec<Node> {
        if !self.is_punct(self.pos, '{') {
            return Vec::new();
        }
        let close = self.skip_matched(self.pos, '{', '}', end);
        self.pos += 1;
        let body = self.exprs(close.saturating_sub(1), StopMode::Run);
        self.pos = close;
        body
    }

    /// Whether the `|` at `i` begins a closure (as opposed to a
    /// bitwise/logical `|` or an or-pattern).
    fn closure_starts_at(&self, i: usize) -> bool {
        match i.checked_sub(1).and_then(|p| self.tok(p)).map(|t| &t.kind) {
            None => true,
            Some(TokenKind::Punct(c)) => matches!(c, '(' | ',' | '=' | '{' | '[' | ';' | ':' | '>'),
            Some(TokenKind::Ident(name)) => {
                matches!(name.as_str(), "move" | "return" | "else" | "in" | "box")
            }
            _ => false,
        }
    }

    /// Parse a closure starting at the opening `|`.
    fn closure(&mut self, end: usize, iter_adapter: bool) -> Node {
        let line = self.toks[self.pos].line;
        self.pos += 1; // opening |
        if !self.is_punct(self.pos, '|') {
            // parameter list: runs to the next `|` (types inside have
            // no pipes; nested parens cannot hide one either)
            while self.pos < end && !self.is_punct(self.pos, '|') {
                self.pos += 1;
            }
        }
        if self.is_punct(self.pos, '|') {
            self.pos += 1;
        }
        // skip a `-> Type` return annotation up to its `{`
        if self.is_punct(self.pos, '-') && self.is_punct(self.pos + 1, '>') {
            while self.pos < end && !self.is_punct(self.pos, '{') {
                self.pos += 1;
            }
        }
        let body = if self.is_punct(self.pos, '{') {
            self.braced_body(end)
        } else {
            self.exprs(end, StopMode::CommaOrSemi)
        };
        Node::Closure(ClosureNode {
            line,
            iter_adapter,
            body,
        })
    }

    /// Parse a path or method call whose callee name sits at `i`
    /// (with `(` at `i + 1`).
    fn call(&mut self, i: usize, end: usize) -> Node {
        let name = self.tok(i).and_then(Token::ident).unwrap_or("").to_owned();
        let line = self.toks[i].line;
        let callee = if i > 0 && self.is_punct(i - 1, '.') {
            let recv = i
                .checked_sub(2)
                .and_then(|p| self.tok(p))
                .and_then(Token::ident)
                .map(str::to_owned);
            Callee::Method { name, recv }
        } else {
            Callee::Path(self.path_segments_ending_at(i, name))
        };
        let close = self.skip_matched(i + 1, '(', ')', end);
        let arg_idents = self.bare_idents(i + 2, close.saturating_sub(1));
        self.pos = i + 2;
        let mut args = self.exprs(close.saturating_sub(1), StopMode::Run);
        self.pos = close;
        if let Callee::Method { name, .. } = &callee {
            if ITER_ADAPTERS.contains(&name.as_str()) {
                mark_iter_adapter(&mut args);
            }
        }
        Node::Call(CallSite {
            callee,
            line,
            arg_idents,
            args,
        })
    }

    /// Walk `::` path segments backwards from the callee name at `i`
    /// (`a::b::name` → `["a", "b", "name"]`, turbofish skipped).
    fn path_segments_ending_at(&self, i: usize, name: String) -> Vec<String> {
        let mut segs = vec![name];
        let mut j = i;
        while let Some(p2) = j.checked_sub(2) {
            if !(self.is_punct(j - 1, ':') && self.is_punct(p2, ':')) {
                break;
            }
            let mut k = p2; // first token before the `::`
            let Some(prev) = k.checked_sub(1) else { break };
            // `Vec::<T>::new` — hop backwards over the turbofish
            if self.is_punct(prev, '>') {
                let mut depth = 0usize;
                let mut b = prev;
                loop {
                    if self.is_punct(b, '>') {
                        depth += 1;
                    } else if self.is_punct(b, '<') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    let Some(nb) = b.checked_sub(1) else { break };
                    b = nb;
                }
                k = b;
                let Some(nk) = k.checked_sub(1) else { break };
                if !(self.is_punct(nk, ':') && nk >= 1 && self.is_punct(nk - 1, ':')) {
                    break;
                }
                k = nk - 1;
                let Some(nk2) = k.checked_sub(1) else { break };
                if let Some(seg) = self.tok(nk2).and_then(Token::ident) {
                    segs.insert(0, seg.to_owned());
                    j = nk2;
                    continue;
                }
                break;
            }
            if let Some(seg) = self.tok(prev).and_then(Token::ident) {
                segs.insert(0, seg.to_owned());
                j = prev;
            } else {
                break;
            }
        }
        segs
    }

    /// Parse `name!(..)` / `name![..]` / `name!{..}` at `i`.
    fn macro_call(&mut self, i: usize, end: usize) -> Node {
        let name = self.tok(i).and_then(Token::ident).unwrap_or("").to_owned();
        let line = self.toks[i].line;
        let open_idx = i + 2;
        let (open, close_c) = match self.tok(open_idx).map(|t| &t.kind) {
            Some(TokenKind::Punct('[')) => ('[', ']'),
            Some(TokenKind::Punct('{')) => ('{', '}'),
            _ => ('(', ')'),
        };
        let close = self.skip_matched(open_idx, open, close_c, end);
        let arg_idents = self.bare_idents(open_idx + 1, close.saturating_sub(1));
        self.pos = open_idx + 1;
        let args = self.exprs(close.saturating_sub(1), StopMode::Run);
        self.pos = close;
        Node::Call(CallSite {
            callee: Callee::Macro(name),
            line,
            arg_idents,
            args,
        })
    }

    /// Bare identifiers (minus binding keywords) over `[start, end)`.
    fn bare_idents(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        for k in start..end.min(self.toks.len()) {
            if let Some(name) = self.toks[k].ident() {
                if !matches!(name, "mut" | "move" | "ref" | "as" | "in" | "let") {
                    out.push(name.to_owned());
                }
            }
        }
        out
    }

    /// Parse a `let` statement starting at the `let` keyword.
    fn let_stmt(&mut self, end: usize) -> Node {
        let line = self.toks[self.pos].line;
        let mut i = self.pos + 1;
        // pattern (+ optional type annotation) up to `=` at depth 0
        let mut name = None;
        let mut depth = 0usize;
        while i < end {
            let t = &self.toks[i];
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('>') if !(i > 0 && self.is_punct(i - 1, '-')) => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct('=') if depth == 0 && !self.is_punct(i + 1, '=') => break,
                TokenKind::Punct(';') if depth == 0 => break, // `let x;`
                TokenKind::Ident(n)
                    if name.is_none() && !matches!(n.as_str(), "mut" | "ref" | "box") =>
                {
                    name = Some(n.clone());
                }
                _ => {}
            }
            i += 1;
        }
        if !self.is_punct(i, '=') {
            self.pos = (i + 1).min(end);
            return Node::Let(LetNode {
                name,
                line,
                is_guard: false,
                is_with_capacity: false,
                init: Vec::new(),
            });
        }
        let init_start = i + 1;
        self.pos = init_start;
        let init = self.exprs(end, StopMode::CommaOrSemi);
        let init_end = self.pos;
        if self.is_punct(self.pos, ';') {
            self.pos += 1;
        }
        let is_guard = self.init_is_guard(init_start, init_end);
        let is_with_capacity =
            (init_start..init_end.min(self.toks.len())).any(|k| self.is_ident(k, "with_capacity"));
        Node::Let(LetNode {
            name,
            line,
            is_guard,
            is_with_capacity,
            init,
        })
    }

    /// Whether the initializer token range produces a lock guard: its
    /// outermost value comes from `.lock()` / zero-arg `.read()` /
    /// `.write()` / a free `lock(..)` helper / a condvar `.wait*(..)`,
    /// with at most an `.unwrap()` / `.expect(..)` chained after.
    fn init_is_guard(&self, start: usize, end: usize) -> bool {
        let end = end.min(self.toks.len());
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            let method = i > start && self.is_punct(i - 1, '.');
            let produced_guard = match t.ident() {
                Some("lock") if method && self.is_punct(i + 1, '(') => {
                    self.is_punct(i + 2, ')') // zero-arg `.lock()`
                }
                Some("read") | Some("write") if method && self.is_punct(i + 1, '(') => {
                    self.is_punct(i + 2, ')')
                }
                Some("lock") if !method && self.is_punct(i + 1, '(') => true, // `lock(&m)` helper
                Some("wait") | Some("wait_timeout") | Some("wait_while")
                    if method && self.is_punct(i + 1, '(') =>
                {
                    true
                }
                _ => false,
            };
            if produced_guard {
                // nothing may be chained after the call (besides
                // `.unwrap()` / `.expect(..)`) — otherwise the guard
                // is a dropped temporary, not this binding's value
                let mut k = self.skip_matched(i + 1, '(', ')', end);
                loop {
                    if k >= end {
                        return true;
                    }
                    if self.is_punct(k, '.')
                        && (self.is_ident(k + 1, "unwrap") || self.is_ident(k + 1, "expect"))
                        && self.is_punct(k + 2, '(')
                    {
                        k = self.skip_matched(k + 2, '(', ')', end);
                        continue;
                    }
                    break;
                }
                return false;
            }
            i += 1;
        }
        false
    }
}

/// Flag top-level closures in an iterator-adapter argument list.
fn mark_iter_adapter(args: &mut [Node]) {
    for node in args {
        if let Node::Closure(c) = node {
            c.iter_adapter = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}` parsed"))
    }

    /// All call sites in a body, recursively.
    fn calls(nodes: &[Node], out: &mut Vec<String>) {
        for n in nodes {
            match n {
                Node::Call(c) => {
                    out.push(match &c.callee {
                        Callee::Path(segs) => segs.join("::"),
                        Callee::Method { name, .. } => format!(".{name}"),
                        Callee::Macro(name) => format!("{name}!"),
                    });
                    calls(&c.args, out);
                }
                Node::Loop(l) => {
                    calls(&l.header, out);
                    calls(&l.body, out);
                }
                Node::Closure(c) => calls(&c.body, out),
                Node::Block { body, .. } => calls(body, out),
                Node::Let(l) => calls(&l.init, out),
                Node::DropCall { .. } => {}
            }
        }
    }

    fn call_names(f: &FnItem) -> Vec<String> {
        let mut out = Vec::new();
        calls(&f.body, &mut out);
        out
    }

    #[test]
    fn impl_blocks_resolve_self_type_and_trait() {
        let p = parse_src(
            "impl Engine { fn inherent(&self) {} }\n\
             impl Retrieve for Engine { fn retrieve(&self, q: &Q) {} }\n\
             impl<'a> View<'a> { fn get_ref(&self) {} }\n\
             fn free() {}\n",
        );
        let inherent = fn_named(&p, "inherent");
        assert_eq!(inherent.self_type.as_deref(), Some("Engine"));
        assert_eq!(inherent.trait_name, None);
        let retrieve = fn_named(&p, "retrieve");
        assert_eq!(retrieve.self_type.as_deref(), Some("Engine"));
        assert_eq!(retrieve.trait_name.as_deref(), Some("Retrieve"));
        let get_ref = fn_named(&p, "get_ref");
        assert_eq!(get_ref.self_type.as_deref(), Some("View"));
        let free = fn_named(&p, "free");
        assert_eq!(free.self_type, None);
    }

    #[test]
    fn trait_decls_give_default_bodies_the_trait_name() {
        let p = parse_src(
            "trait Retrieve { fn retrieve(&self, q: &Q) -> R; fn both(&self) { helper(); } }\n",
        );
        let decl = fn_named(&p, "retrieve");
        assert_eq!(decl.trait_name.as_deref(), Some("Retrieve"));
        assert!(decl.body.is_empty(), "declaration without a body");
        let default = fn_named(&p, "both");
        assert_eq!(default.trait_name.as_deref(), Some("Retrieve"));
        assert_eq!(call_names(default), vec!["helper"]);
    }

    #[test]
    fn labeled_and_nested_loops_parse_with_kinds() {
        let src = "fn f(xs: &[u32]) {\n\
                   'outer: loop {\n\
                       for x in xs {\n\
                           while *x > 0 { work(x); }\n\
                       }\n\
                       for i in 0.. { probe(i); }\n\
                   }\n\
                   }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        let Node::Loop(outer) = &f.body[0] else {
            panic!("expected loop, got {:?}", f.body[0]);
        };
        assert_eq!(outer.kind, LoopKind::Loop);
        assert_eq!(outer.label.as_deref(), Some("'outer"));
        let kinds: Vec<LoopKind> = outer
            .body
            .iter()
            .filter_map(|n| match n {
                Node::Loop(l) => Some(l.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![LoopKind::For, LoopKind::ForOpenRange]);
        let Node::Loop(for_loop) = &outer.body[0] else {
            panic!()
        };
        let Node::Loop(while_loop) = &for_loop.body[0] else {
            panic!("expected while inside for, got {:?}", for_loop.body[0]);
        };
        assert_eq!(while_loop.kind, LoopKind::While);
        assert_eq!(call_names(f), vec!["work", "probe"]);
    }

    #[test]
    fn nested_closures_and_iter_adapters() {
        let src = "fn f(v: &[u32]) -> Vec<u32> {\n\
                   v.iter().map(|x| other.iter().filter(|y| keep(x, y)).count()).collect()\n\
                   }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        // find the map call and its closure
        let mut found = false;
        fn walk(nodes: &[Node], found: &mut bool) {
            for n in nodes {
                match n {
                    Node::Call(c) => {
                        if matches!(&c.callee, Callee::Method { name, .. } if name == "map") {
                            let Some(Node::Closure(outer)) =
                                c.args.iter().find(|a| matches!(a, Node::Closure(_)))
                            else {
                                panic!("map takes a closure");
                            };
                            assert!(outer.iter_adapter, "map closure is an adapter body");
                            // the inner filter closure nests inside it
                            let mut inner_calls = Vec::new();
                            calls(&outer.body, &mut inner_calls);
                            assert!(inner_calls.contains(&".filter".to_owned()));
                            assert!(inner_calls.contains(&"keep".to_owned()));
                            *found = true;
                        }
                        walk(&c.args, found);
                    }
                    Node::Closure(c) => walk(&c.body, found),
                    Node::Block { body, .. } => walk(body, found),
                    Node::Let(l) => walk(&l.init, found),
                    Node::Loop(l) => {
                        walk(&l.header, found);
                        walk(&l.body, found);
                    }
                    Node::DropCall { .. } => {}
                }
            }
        }
        walk(&f.body, &mut found);
        assert!(found, "map call with closure argument parsed");
    }

    #[test]
    fn method_call_chains_record_receivers_and_paths() {
        let src = "fn f(keys: &mut Vec<u32>, m: &M) {\n\
                   keys.push(derive(m));\n\
                   let v = Vec::<u32>::with_capacity(8);\n\
                   engine.retriever().key_candidates(k, n).to_vec();\n\
                   }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        assert_eq!(f.mut_ref_params, vec!["keys"]);
        let names = call_names(f);
        assert!(names.contains(&".push".to_owned()));
        assert!(names.contains(&"derive".to_owned()));
        assert!(
            names.contains(&"Vec::with_capacity".to_owned()),
            "{names:?}"
        );
        assert!(names.contains(&".key_candidates".to_owned()));
        assert!(names.contains(&".to_vec".to_owned()));
        // receiver of the push is `keys`
        let Node::Call(push) = &f.body[0] else {
            panic!()
        };
        let Callee::Method { name, recv } = &push.callee else {
            panic!()
        };
        assert_eq!(name, "push");
        assert_eq!(recv.as_deref(), Some("keys"));
    }

    #[test]
    fn impl_trait_fns_and_where_clauses_parse() {
        let src = "fn make(n: usize) -> impl Iterator<Item = u32> + '_ where u32: Copy {\n\
                   (0..n as u32).map(|i| i * 2)\n\
                   }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "make");
        assert_eq!(f.name, "make");
        let names = call_names(f);
        assert!(names.contains(&".map".to_owned()));
    }

    #[test]
    fn let_classifies_guards_and_with_capacity() {
        let src = "fn f(m: &Mutex<u32>, q: &RwLock<u32>) {\n\
                   let g = m.lock();\n\
                   let h = lock(&q);\n\
                   let r = q.read();\n\
                   let n = m.lock().saturating_add(1);\n\
                   let (g2, timed) = cv.wait_timeout(g, dur);\n\
                   let mut buf = Vec::with_capacity(16);\n\
                   drop(h);\n\
                   }\n";
        let p = parse_src(src);
        let f = fn_named(&p, "f");
        let lets: Vec<(&str, bool, bool)> = f
            .body
            .iter()
            .filter_map(|n| match n {
                Node::Let(l) => Some((
                    l.name.as_deref().unwrap_or(""),
                    l.is_guard,
                    l.is_with_capacity,
                )),
                _ => None,
            })
            .collect();
        assert_eq!(
            lets,
            vec![
                ("g", true, false),
                ("h", true, false),
                ("r", true, false),
                ("n", false, false), // chained call: a dropped temporary
                ("g2", true, false), // condvar rebind, tuple pattern
                ("buf", false, true),
            ]
        );
        assert!(f
            .body
            .iter()
            .any(|n| matches!(n, Node::DropCall { name, .. } if name == "h")));
    }

    #[test]
    fn hot_path_marker_attaches_to_the_next_fn() {
        let src = "fn cold() {}\n\
                   // amcad-lint: hot-path — parked worker dispatch\n\
                   #[inline]\n\
                   fn dispatch() {}\n\
                   fn also_cold() {}\n";
        let p = parse_src(src);
        assert!(!fn_named(&p, "cold").hot_marker);
        assert!(fn_named(&p, "dispatch").hot_marker);
        assert!(!fn_named(&p, "also_cold").hot_marker);
    }

    #[test]
    fn fn_pointer_types_in_struct_fields_are_not_items() {
        let src = "struct Hooks { cb: fn(u32) -> u32 }\n\
                   fn real() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn test_fns_carry_the_in_test_flag() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn probe() { live(); }\n\
                   }\n";
        let p = parse_src(src);
        assert!(!fn_named(&p, "live").in_test);
        assert!(fn_named(&p, "probe").in_test);
    }

    #[test]
    fn match_arms_and_struct_literals_do_not_derail_the_walk() {
        let src = "fn f(x: Option<u32>) -> State {\n\
                   match probe(x) {\n\
                       Some(1 | 2) => State { count: make(x), flag: true },\n\
                       _ => State::default(),\n\
                   }\n\
                   }\n";
        let p = parse_src(src);
        let names = call_names(fn_named(&p, "f"));
        assert!(names.contains(&"probe".to_owned()));
        assert!(names.contains(&"make".to_owned()));
        assert!(names.contains(&"State::default".to_owned()));
    }
}
