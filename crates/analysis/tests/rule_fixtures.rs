//! Fixture tests: every rule gets at least one firing and one
//! non-firing source fragment, plus the waiver-directive semantics
//! (allow with a reason waives; without one it is itself a diagnostic)
//! and the `#[cfg(test)]` / test-path exemptions.
//!
//! The fragments live in raw strings, so nothing here is linted as
//! real workspace code (`tests/` paths are all-test and skipped by the
//! workspace walk anyway).

use amcad_lint::{lint_source, Diagnostic, META_MISSING_REASON, META_UNKNOWN_RULE};

/// Lint a fragment as a normal (non-test-path) source file.
fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_source(path, src, false)
}

/// `(rule, line)` pairs of the unwaived diagnostics.
fn unwaived(path: &str, src: &str) -> Vec<(&'static str, usize)> {
    lint(path, src)
        .into_iter()
        .filter(|d| !d.waived)
        .map(|d| (d.rule, d.line))
        .collect()
}

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = unwaived(path, src).into_iter().map(|(r, _)| r).collect();
    rules.dedup();
    rules
}

const STORE_PATH: &str = "crates/retrieval/src/store/format.rs";
const PLAIN_PATH: &str = "crates/retrieval/src/engine.rs";

// ---------------------------------------------------------------- panic-free-decode

#[test]
fn panic_free_decode_fires_on_unwrap_expect_panic_and_indexing() {
    let src = r#"
fn decode(bytes: &[u8]) -> u64 {
    let n = parse(bytes).unwrap();
    let m = parse(bytes).expect("valid");
    if n == 0 { panic!("empty"); }
    if m == 0 { unreachable!(); }
    let first = bytes[0];
    u64::from(first)
}
"#;
    let hits = unwaived(STORE_PATH, src);
    let lines: Vec<usize> = hits
        .iter()
        .filter(|(r, _)| *r == "panic-free-decode")
        .map(|&(_, l)| l)
        .collect();
    assert_eq!(lines, vec![3, 4, 5, 6, 7], "one diagnostic per hazard");
}

#[test]
fn panic_free_decode_is_scoped_to_store_paths() {
    let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
    assert!(unwaived(STORE_PATH, src)
        .iter()
        .any(|(r, _)| *r == "panic-free-decode"));
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "only store/ is decode-critical"
    );
}

#[test]
fn panic_free_decode_exempts_cfg_test_and_slice_patterns() {
    let src = r#"
fn decode(bytes: &[u8]) -> Option<u8> {
    let [a] = bytes.get(..1)?.try_into().ok()?;
    Some(a)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        let v = vec![1u8];
        assert_eq!(v[0], super::decode(&v).unwrap());
    }
}
"#;
    assert!(
        unwaived(STORE_PATH, src).is_empty(),
        "let [a] = .. is a pattern, not an index, and tests may unwrap"
    );
}

// ---------------------------------------------------------------- nan-ordering

#[test]
fn nan_ordering_fires_on_partial_cmp_unwrap_and_comparators() {
    let src = r#"
fn rank(v: &mut Vec<(u32, f64)>, a: f64, b: f64) {
    let _ = a.partial_cmp(&b).unwrap();
    v.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("no NaN"));
}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(hits.iter().any(|&(r, l)| r == "nan-ordering" && l == 3));
    assert!(
        hits.iter().any(|&(r, l)| r == "nan-ordering" && l == 4),
        "a comparator built on partial_cmp is flagged even through sort_by"
    );
}

#[test]
fn nan_ordering_accepts_total_cmp_and_bare_partial_cmp() {
    let src = r#"
fn rank(v: &mut Vec<(u32, f64)>, a: f64, b: f64) -> Option<std::cmp::Ordering> {
    v.sort_by(|x, y| y.1.total_cmp(&x.1));
    v.sort_unstable_by(|x, y| x.1.total_cmp(&y.1));
    a.partial_cmp(&b)
}
"#;
    assert!(unwaived(PLAIN_PATH, src).is_empty());
}

// ---------------------------------------------------------------- safety-comments

#[test]
fn safety_comments_fires_on_bare_unsafe_block_and_impl() {
    let src = r#"
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe impl Send for Wrapper {}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(hits.iter().any(|&(r, l)| r == "safety-comments" && l == 3));
    assert!(hits.iter().any(|&(r, l)| r == "safety-comments" && l == 6));
}

#[test]
fn safety_comments_accepts_preceding_trailing_and_shared_comments() {
    let src = r#"
fn read(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees p is valid for reads
    unsafe { *p }
}

fn read2(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: ditto, trailing form
}

// SAFETY: Wrapper owns its pointer exclusively
unsafe impl Send for Wrapper {}
unsafe impl Sync for Wrapper {}

unsafe fn declared_contract(p: *const u8) -> u8 {
    // SAFETY: unsafe_op_in_unsafe_fn forces this inner block
    unsafe { *p }
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "above / trailing / stacked-impl-shared SAFETY comments all count, and unsafe fn decls are exempt"
    );
}

// ---------------------------------------------------------------- relaxed-justified

#[test]
fn relaxed_justified_fires_on_bare_relaxed() {
    let src = r#"
fn bump(c: &std::sync::atomic::AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}
"#;
    assert_eq!(unwaived(PLAIN_PATH, src), vec![("relaxed-justified", 3)]);
}

#[test]
fn relaxed_justified_accepts_trailing_above_and_shared_comments() {
    let src = r#"
fn bump(c: &Counters) {
    c.a.fetch_add(1, Ordering::Relaxed); // monotonic telemetry only
    // these counters are read after the join, which orders the writes
    c.b.fetch_add(1, Ordering::Relaxed);
    c.c.fetch_add(1, Ordering::Relaxed);
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "trailing, above, and block-shared justification comments all count"
    );
}

// ---------------------------------------------------------------- thread-discipline

#[test]
fn thread_discipline_fires_on_spawn_scope_and_crossbeam() {
    let src = r#"
fn fan_out() {
    std::thread::spawn(|| {});
    std::thread::scope(|_s| {});
    crossbeam::scope(|_s| {}).unwrap();
}
"#;
    let hits: Vec<usize> = unwaived(PLAIN_PATH, src)
        .into_iter()
        .filter(|(r, _)| *r == "thread-discipline")
        .map(|(_, l)| l)
        .collect();
    assert_eq!(hits, vec![3, 4, 5]);
}

#[test]
fn thread_discipline_exempts_runtime_pool_and_tests() {
    let src = r#"
fn fan_out() {
    std::thread::spawn(|| {});
}
"#;
    let in_runtime = "crates/retrieval/src/runtime/worker.rs";
    let in_pool = "crates/retrieval/src/pool.rs";
    assert!(
        rules_hit(in_runtime, src).is_empty(),
        "runtime/ owns its threads"
    );
    assert!(
        rules_hit(in_pool, src).is_empty(),
        "the build pool owns its threads"
    );

    let in_test = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn spawns() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
"#;
    assert!(
        rules_hit(PLAIN_PATH, in_test).is_empty(),
        "tests may spawn probes"
    );
}

// ---------------------------------------------------------------- no-std-sync-primitives

#[test]
fn no_std_sync_primitives_fires_on_direct_and_grouped_uses() {
    let src = r#"
use std::sync::Mutex;
use std::sync::{Arc, RwLock};

fn guard(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
"#;
    let hits: Vec<usize> = unwaived(PLAIN_PATH, src)
        .into_iter()
        .filter(|(r, _)| *r == "no-std-sync-primitives")
        .map(|(_, l)| l)
        .collect();
    assert_eq!(
        hits,
        vec![2, 3, 5],
        "direct path, use-group, and type position all flagged"
    );
}

#[test]
fn no_std_sync_primitives_accepts_arc_atomics_and_parking_lot() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, MutexGuard, PoisonError};
use parking_lot::{Mutex, RwLock};
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "Arc, guards, atomics, and the parking_lot stub are all fine"
    );
}

// ---------------------------------------------------------------- allow directives

#[test]
fn allow_with_reason_waives_exactly_the_target_line() {
    let above = r#"
fn fan_out() {
    // amcad-lint: allow(thread-discipline) — fixture: probe thread vetted by hand
    std::thread::spawn(|| {});
    std::thread::spawn(|| {});
}
"#;
    let diags = lint(PLAIN_PATH, above);
    assert!(
        diags.iter().any(|d| d.line == 4 && d.waived),
        "the line under the directive is waived (the diagnostic is still recorded)"
    );
    assert_eq!(
        unwaived(PLAIN_PATH, above),
        vec![("thread-discipline", 5)],
        "the waiver shields only its target line"
    );

    let trailing = r#"
fn fan_out() {
    std::thread::spawn(|| {}); // amcad-lint: allow(thread-discipline) — fixture probe thread
}
"#;
    assert!(unwaived(PLAIN_PATH, trailing).is_empty());
}

#[test]
fn allow_without_reason_is_itself_a_diagnostic() {
    let src = r#"
fn fan_out() {
    // amcad-lint: allow(thread-discipline)
    std::thread::spawn(|| {});
}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(
        hits.iter()
            .any(|&(r, l)| r == META_MISSING_REASON && l == 3),
        "a reasonless allow is reported"
    );
    assert!(
        hits.iter()
            .any(|&(r, l)| r == "thread-discipline" && l == 4),
        "and it waives nothing"
    );
}

#[test]
fn allow_naming_an_unknown_rule_is_itself_a_diagnostic() {
    let src = r#"
// amcad-lint: allow(made-up-rule) — no such rule exists
fn f() {}
"#;
    assert_eq!(unwaived(PLAIN_PATH, src), vec![(META_UNKNOWN_RULE, 2)]);
}

#[test]
fn allow_for_a_different_rule_does_not_waive() {
    let src = r#"
fn fan_out() {
    // amcad-lint: allow(relaxed-justified) — fixture: names the wrong rule
    std::thread::spawn(|| {});
}
"#;
    assert_eq!(unwaived(PLAIN_PATH, src), vec![("thread-discipline", 4)]);
}

// ---------------------------------------------------------------- file-level exemptions

#[test]
fn test_path_files_produce_no_diagnostics() {
    let src = r#"
fn helper() {
    std::thread::spawn(|| {});
    let _ = 1.0f64.partial_cmp(&2.0).unwrap();
}
"#;
    assert!(
        lint_source("crates/retrieval/tests/hot_swap.rs", src, true).is_empty(),
        "integration tests and benches are wholly test code"
    );
}

#[test]
fn compat_stub_files_produce_no_diagnostics() {
    let src = r#"
pub use std::sync::Mutex;
fn f() { std::thread::spawn(|| {}); }
"#;
    assert!(
        lint("crates/compat/parking_lot/src/lib.rs", src).is_empty(),
        "the compat stubs mirror external APIs and are exempt"
    );
}

// ---------------------------------------------------------------- alloc-in-hot-loop

#[test]
fn alloc_in_hot_loop_fires_only_in_hot_reachable_fns() {
    let src = r#"
// amcad-lint: hot-path — fixture serving loop
fn serve(keys: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for _key in keys {
        let mut list = Vec::new();
        list.push(1);
        out.push(list);
    }
    out
}

fn cold(keys: &[u32]) {
    for _key in keys {
        let _v: Vec<u32> = Vec::new();
    }
}
"#;
    let hits: Vec<usize> = unwaived(PLAIN_PATH, src)
        .into_iter()
        .filter(|(r, _)| *r == "alloc-in-hot-loop")
        .map(|(_, l)| l)
        .collect();
    assert_eq!(
        hits,
        vec![6, 7, 8],
        "ctor, push into a non-scratch local, and push into an unsized \
         local all fire inside the marked fn; the cold fn is untouched"
    );
}

#[test]
fn alloc_in_hot_loop_propagates_through_the_call_graph() {
    let src = r#"
struct Engine;

impl Retrieve for Engine {
    fn retrieve(&self, keys: &[u32]) -> usize {
        helper(keys)
    }
}

fn helper(keys: &[u32]) -> usize {
    let mut n = 0;
    for key in keys {
        let label = format!("{key}");
        n += label.len();
    }
    n
}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(
        hits.iter()
            .any(|&(r, l)| r == "alloc-in-hot-loop" && l == 13),
        "helper is hot because the Retrieve impl calls it: {hits:?}"
    );
}

#[test]
fn alloc_in_hot_loop_accepts_hoisted_scratch_buffers() {
    let src = r#"
// amcad-lint: hot-path — fixture serving loop
fn serve(keys: &[u32], out: &mut Vec<u32>) {
    let mut scratch = Vec::with_capacity(keys.len());
    for key in keys {
        scratch.push(*key);
        out.push(*key);
    }
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "&mut-param and with_capacity-local pushes are the hoisted pattern"
    );
}

#[test]
fn alloc_in_hot_loop_exempts_test_fns_and_never_seeds_from_them() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    // amcad-lint: hot-path — markers on test code never seed
    fn probe() {
        let keys = [1u32];
        for _k in &keys {
            let _v: Vec<u32> = Vec::new();
        }
    }
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "test fns are skipped and never seed hotness"
    );
}

#[test]
fn alloc_in_hot_loop_waives_with_reason() {
    let src = r#"
// amcad-lint: hot-path — fixture serving loop
fn serve(keys: &[u32]) -> usize {
    let mut n = 0;
    for key in keys {
        // amcad-lint: allow(alloc-in-hot-loop) — fixture: output strings are owned per key
        let label = format!("{key}");
        n += label.len();
    }
    n
}
"#;
    let diags = lint(PLAIN_PATH, src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "alloc-in-hot-loop" && d.waived),
        "the diagnostic is still recorded, waived"
    );
    assert!(unwaived(PLAIN_PATH, src).is_empty());
}

// ---------------------------------------------------------------- soa-layout

#[test]
fn soa_layout_fires_on_per_point_accessors_in_hot_loops() {
    let src = r#"
// amcad-lint: hot-path — fixture distance loop
fn scan(set: &MixedPointSet, query: &[f64]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..set.len() {
        let p = set.point(i);
        let w = set.weight(i);
        best = best.min(dist(query, p, w));
    }
    best
}

fn build(set: &MixedPointSet) {
    for i in 0..set.len() {
        index(set.point(i));
    }
}
"#;
    let hits: Vec<usize> = unwaived(PLAIN_PATH, src)
        .into_iter()
        .filter(|(r, _)| *r == "soa-layout")
        .map(|(_, l)| l)
        .collect();
    assert_eq!(
        hits,
        vec![6, 7],
        ".point(i) and .weight(i) fire inside the hot loop; the cold \
         build fn stays free to use the accessors"
    );
}

#[test]
fn soa_layout_accepts_the_gathered_kernel_pattern_and_out_of_loop_accessors() {
    let src = r#"
// amcad-lint: hot-path — fixture distance loop
fn scan(set: &MixedPointSet, query: &[f64], qw: &[f64], out: &mut Vec<f64>) {
    let blocks = set.blocks();
    let grams = blocks.query_grams(query);
    let anchor = set.point(0);
    let mut start = 0;
    while start < set.len() {
        blocks.scan_range_into(&grams, query, qw, start, out);
        start += out.len();
    }
    consume(anchor);
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "blocked SoA sweeps and loop-external accessors pass"
    );
}

#[test]
fn soa_layout_propagates_through_the_call_graph_and_waives_with_reason() {
    let src = r#"
struct Engine;

impl AnnIndex for Engine {
    fn search(&self, set: &MixedPointSet) -> f64 {
        helper(set)
    }
}

fn helper(set: &MixedPointSet) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..set.len() {
        // amcad-lint: allow(soa-layout) — fixture: one-off probe vetted by hand
        best = best.min(peek(set.point(i)));
        best = best.min(peek(set.weight(i)));
    }
    best
}
"#;
    let diags = lint(PLAIN_PATH, src);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "soa-layout" && d.line == 14 && d.waived),
        "helper is hot through the AnnIndex impl, and the directive waives its line"
    );
    assert_eq!(
        unwaived(PLAIN_PATH, src),
        vec![("soa-layout", 15)],
        "the waiver shields only its target line"
    );
}

// ---------------------------------------------------------------- guard-across-park

#[test]
fn guard_across_park_fires_when_a_second_guard_outlives_the_handoff() {
    let src = r#"
fn drain(q: &Queue) {
    let stats = lock(&q.stats);
    let mut items = lock(&q.items);
    while items.is_empty() {
        items = q.ready.wait(items).unwrap();
    }
    consume(&stats);
}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(
        hits.iter()
            .any(|&(r, l)| r == "guard-across-park" && l == 6),
        "`stats` is live across the wait; only the handed-off guard is exempt: {hits:?}"
    );
}

#[test]
fn guard_across_park_accepts_the_condvar_handoff_and_dropped_guards() {
    let src = r#"
fn drain(q: &Queue) {
    let stats = lock(&q.stats);
    record(&stats);
    drop(stats);
    let mut items = lock(&q.items);
    while items.is_empty() {
        items = q.ready.wait(items).unwrap();
    }
}
"#;
    assert!(
        unwaived(PLAIN_PATH, src).is_empty(),
        "wait(guard) consumes its guard, and drop(..) ends the other's liveness"
    );
}

#[test]
fn guard_across_park_sees_parks_through_the_call_graph() {
    let src = r#"
fn parky(q: &Queue) {
    let mut g = lock(&q.items);
    g = q.ready.wait(g).unwrap();
    drop(g);
}

fn caller(q: &Queue) {
    let held = lock(&q.stats);
    parky(q);
    consume(&held);
}
"#;
    let hits = unwaived(PLAIN_PATH, src);
    assert!(
        hits.iter()
            .any(|&(r, l)| r == "guard-across-park" && l == 10),
        "parky() can park, so holding `held` across the call fires: {hits:?}"
    );
}

// ---------------------------------------------------------------- unbounded-fanout

const RUNTIME_PATH: &str = "crates/retrieval/src/runtime/worker.rs";

#[test]
fn unbounded_fanout_fires_on_structurally_unbounded_loops() {
    let src = r#"
fn dispatch() {
    loop {
        step();
    }
}

fn drain(q: &Q) {
    while q.busy() {
        step();
    }
    for i in 0.. {
        probe(i);
    }
}
"#;
    let hits: Vec<usize> = unwaived(RUNTIME_PATH, src)
        .into_iter()
        .filter(|(r, _)| *r == "unbounded-fanout")
        .map(|(_, l)| l)
        .collect();
    assert_eq!(
        hits,
        vec![3, 9, 12],
        "bare loop, while, and open-range for all lack a structural bound"
    );
}

#[test]
fn unbounded_fanout_accepts_bounded_for_and_is_scoped_to_fanout_files() {
    let bounded = r#"
fn fan_out(shards: &[Shard]) {
    for shard in shards {
        probe(shard);
    }
    for r in 0..shards.len() {
        probe_idx(r);
    }
}
"#;
    assert!(
        unwaived(RUNTIME_PATH, bounded).is_empty(),
        "for over a collection or closed range is bounded by construction"
    );

    let spin = "fn spin() { loop { step(); } }\n";
    assert!(
        unwaived(PLAIN_PATH, spin).is_empty(),
        "the rule is scoped to runtime/ and shard.rs"
    );
    assert!(
        unwaived("crates/retrieval/src/shard.rs", spin)
            .iter()
            .any(|(r, _)| *r == "unbounded-fanout"),
        "shard.rs is fan-out code"
    );
}

#[test]
fn unbounded_fanout_waives_with_reason() {
    let src = r#"
fn dispatch() {
    // amcad-lint: allow(unbounded-fanout) — fixture: exits via the shutdown flag
    loop {
        step();
    }
}
"#;
    assert!(unwaived(RUNTIME_PATH, src).is_empty());
}

// ---------------------------------------------------------------- allow enumeration

#[test]
fn allows_are_enumerated_with_reasons_and_targets() {
    use amcad_lint::{allows_in_sources, SourceUnit};
    let src = r#"
fn fan_out() {
    // amcad-lint: allow(thread-discipline) — fixture: vetted probe thread
    std::thread::spawn(|| {});
}
"#;
    let units = vec![SourceUnit {
        path: PLAIN_PATH.to_string(),
        source: src.to_string(),
        all_test: false,
    }];
    let allows = allows_in_sources(&units);
    assert_eq!(allows.len(), 1);
    let a = &allows[0];
    assert_eq!(a.rule, "thread-discipline");
    assert_eq!(a.line, 3);
    assert_eq!(a.target_line, 4);
    assert_eq!(a.reason, "fixture: vetted probe thread");
    assert_eq!(
        a.to_string(),
        format!("{PLAIN_PATH}:3: allow(thread-discipline) — fixture: vetted probe thread")
    );
}
