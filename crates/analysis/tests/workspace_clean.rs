//! The enforcement test: the workspace itself must be clean under
//! every rule. This is the same walk `cargo run -p amcad-lint -- --deny`
//! performs in CI, wired into `cargo test --workspace` so the contract
//! cannot drift even where CI is not run.

use std::path::Path;

#[test]
fn workspace_has_zero_unwaived_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let diagnostics = amcad_lint::lint_workspace(&root, &[]);
    let unwaived: Vec<String> = diagnostics
        .iter()
        .filter(|d| !d.waived)
        .map(|d| d.to_string())
        .collect();
    assert!(
        unwaived.is_empty(),
        "the workspace violates its own invariants:\n{}\nfix the site or add an \
         `amcad-lint: allow(<rule>)` waiver with a reason",
        unwaived.join("\n")
    );
}
