//! Model configuration and the preset family.
//!
//! One configuration type covers the full AMCAD model *and* every restricted
//! variant the paper evaluates: the Euclidean / hyperbolic / spherical /
//! unified single-space models (Table VI "C" block and the `- mixed` /
//! `- curv` ablations), fixed-curvature product spaces (Table VIII), the
//! M2GNN-like global-weight variant, and the `- fusion` / `- proj` / `- comb`
//! ablations of Table VII.  Experiments therefore differ only in the preset
//! they instantiate, never in separate model code paths.

use amcad_autodiff::OptimizerConfig;
use amcad_manifold::SpaceKind;

/// Specification of one subspace of the mixed-curvature product space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubspaceCfg {
    /// Dimension of the subspace.
    pub dim: usize,
    /// Space-kind restriction.
    pub kind: SpaceKind,
    /// Initial curvature; `None` uses the kind's default.
    pub init_kappa: Option<f64>,
}

impl SubspaceCfg {
    /// A unified (adaptive-curvature) subspace.
    pub fn unified(dim: usize) -> Self {
        SubspaceCfg {
            dim,
            kind: SpaceKind::Unified,
            init_kappa: None,
        }
    }

    /// A fixed-kind subspace with its default curvature.
    pub fn fixed(dim: usize, kind: SpaceKind) -> Self {
        SubspaceCfg {
            dim,
            kind,
            init_kappa: None,
        }
    }

    /// A subspace with an explicit fixed curvature.
    pub fn with_kappa(dim: usize, kappa: f64) -> Self {
        SubspaceCfg {
            dim,
            kind: SpaceKind::classify(kappa),
            init_kappa: Some(kappa),
        }
    }

    /// Initial curvature value.
    pub fn initial_kappa(&self) -> f64 {
        self.init_kappa
            .unwrap_or_else(|| self.kind.default_curvature())
    }

    /// Whether the curvature of this subspace is trained.
    pub fn trainable_kappa(&self) -> bool {
        self.kind.trainable() && self.init_kappa.is_none()
    }
}

/// Loss hyper-parameters (Eq. 15–16 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Triplet margin (paper: 0.5).
    pub margin: f64,
    /// Fermi–Dirac radius `r` (paper: 1).
    pub fermi_radius: f64,
    /// Fermi–Dirac temperature `t` (paper: 5).
    pub fermi_temperature: f64,
    /// Weight of the curved-space regulariser pulling points toward the
    /// origin (paper: 1e-3).
    pub origin_reg_weight: f64,
}

impl Default for LossConfig {
    fn default() -> Self {
        LossConfig {
            margin: 0.5,
            fermi_radius: 1.0,
            fermi_temperature: 5.0,
            origin_reg_weight: 1e-3,
        }
    }
}

/// Full configuration of the AMCAD model family.
#[derive(Debug, Clone, PartialEq)]
pub struct AmcadConfig {
    /// Human-readable name used in experiment reports.
    pub name: String,
    /// The subspaces of the product space (node-level encoder).
    pub subspaces: Vec<SubspaceCfg>,
    /// Dimension of the ID-feature embedding per subspace.
    pub id_dim: usize,
    /// Dimension of the category-feature embedding per subspace.
    pub category_dim: usize,
    /// Dimension of the term-feature embedding per subspace.
    pub term_dim: usize,
    /// Number of GCN context-encoding layers (0 disables context encoding).
    pub gcn_layers: usize,
    /// Neighbours sampled per neighbour type per layer.
    pub gcn_fanout: usize,
    /// Enable the space-fusion stage (Eq. 7–8).  Disabled in the `- fusion`
    /// ablation.
    pub space_fusion: bool,
    /// Enable per-relation edge-space projection (Eq. 9–10).  Disabled in
    /// the `- proj` ablation (all relations share one edge space).
    pub edge_projection: bool,
    /// Enable attention-based subspace-distance combination (Eq. 11–14).
    /// Disabled in the `- comb` ablation (uniform weights).
    pub attention_combination: bool,
    /// Loss hyper-parameters.
    pub loss: LossConfig,
    /// Optimiser hyper-parameters.
    pub optimizer: OptimizerConfig,
    /// Number of negatives per positive pair (paper: 6).
    pub negatives_per_positive: usize,
    /// Fraction of hard negatives (paper uses easy:hard = 2:1 → 1/3).
    pub hard_negative_fraction: f64,
    /// RNG seed for parameter initialisation and sampling.
    pub seed: u64,
}

impl AmcadConfig {
    /// Per-subspace total embedding dimension (ID + category + terms).
    pub fn subspace_dim(&self) -> usize {
        self.id_dim + self.category_dim + self.term_dim
    }

    /// Number of subspaces M.
    pub fn num_subspaces(&self) -> usize {
        self.subspaces.len()
    }

    /// Total embedding dimension across subspaces.
    pub fn total_dim(&self) -> usize {
        self.subspace_dim() * self.num_subspaces()
    }

    /// Baseline configuration shared by all presets; `dims` controls the
    /// per-feature embedding dimensions so tests can stay tiny.
    fn base(name: &str, subspaces: Vec<SubspaceCfg>, feature_dim: usize, seed: u64) -> Self {
        AmcadConfig {
            name: name.to_string(),
            subspaces,
            id_dim: feature_dim,
            category_dim: feature_dim / 2,
            term_dim: feature_dim / 2,
            gcn_layers: 1,
            gcn_fanout: 2,
            space_fusion: true,
            edge_projection: true,
            attention_combination: true,
            loss: LossConfig::default(),
            optimizer: OptimizerConfig::default(),
            negatives_per_positive: 6,
            hard_negative_fraction: 1.0 / 3.0,
            seed,
        }
    }

    /// Full AMCAD: two adaptive unified subspaces (the paper's best
    /// configuration, M = 2).
    pub fn amcad(feature_dim: usize, seed: u64) -> Self {
        Self::base(
            "AMCAD",
            vec![
                SubspaceCfg::unified(2 * feature_dim),
                SubspaceCfg::unified(2 * feature_dim),
            ],
            feature_dim,
            seed,
        )
    }

    /// AMCAD_E: identical architecture restricted to Euclidean space
    /// (Table VI / the `- curv` ablation).
    pub fn euclidean(feature_dim: usize, seed: u64) -> Self {
        Self::base(
            "AMCAD_E",
            vec![SubspaceCfg::fixed(2 * feature_dim, SpaceKind::Euclidean)],
            feature_dim,
            seed,
        )
    }

    /// AMCAD_H: single hyperbolic space (κ = −1).
    pub fn hyperbolic(feature_dim: usize, seed: u64) -> Self {
        Self::base(
            "AMCAD_H",
            vec![SubspaceCfg::fixed(2 * feature_dim, SpaceKind::Hyperbolic)],
            feature_dim,
            seed,
        )
    }

    /// AMCAD_S: single spherical space (κ = +1).
    pub fn spherical(feature_dim: usize, seed: u64) -> Self {
        Self::base(
            "AMCAD_S",
            vec![SubspaceCfg::fixed(2 * feature_dim, SpaceKind::Spherical)],
            feature_dim,
            seed,
        )
    }

    /// AMCAD_U: single unified (adaptive-curvature) space — also the
    /// `- mixed` ablation.
    pub fn unified_single(feature_dim: usize, seed: u64) -> Self {
        Self::base(
            "AMCAD_U",
            vec![SubspaceCfg::unified(2 * feature_dim)],
            feature_dim,
            seed,
        )
    }

    /// A fixed-curvature product space (Table VIII rows, e.g. H×S).  The
    /// subspace distance combination is the unweighted sum and curvatures
    /// are frozen, matching Gu et al.'s product-space model.
    pub fn product_space(kinds: &[SpaceKind], feature_dim: usize, seed: u64) -> Self {
        let name = format!(
            "Product({})",
            kinds
                .iter()
                .map(|k| match k {
                    SpaceKind::Hyperbolic => "H",
                    SpaceKind::Euclidean => "E",
                    SpaceKind::Spherical => "S",
                    SpaceKind::Unified => "U",
                })
                .collect::<Vec<_>>()
                .join("x")
        );
        let mut cfg = Self::base(
            &name,
            kinds
                .iter()
                .map(|k| SubspaceCfg::fixed(feature_dim, *k))
                .collect(),
            feature_dim,
            seed,
        );
        cfg.attention_combination = false;
        cfg.edge_projection = false;
        cfg
    }

    /// The `- fusion` ablation: no space-fusion stage.
    pub fn without_fusion(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::amcad(feature_dim, seed);
        cfg.name = "AMCAD -fusion".into();
        cfg.space_fusion = false;
        cfg
    }

    /// The `- proj` ablation: heterogeneous relations share one edge space.
    pub fn without_projection(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::amcad(feature_dim, seed);
        cfg.name = "AMCAD -proj".into();
        cfg.edge_projection = false;
        cfg
    }

    /// The `- comb` ablation: subspace distances combined with uniform
    /// weights instead of attention.
    pub fn without_combination(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::amcad(feature_dim, seed);
        cfg.name = "AMCAD -comb".into();
        cfg.attention_combination = false;
        cfg
    }

    /// A GIL-like baseline: hyperbolic × Euclidean interaction (documented
    /// substitution — see DESIGN.md §1).
    pub fn gil_like(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::base(
            "GIL (H x E interaction)",
            vec![
                SubspaceCfg::fixed(feature_dim, SpaceKind::Hyperbolic),
                SubspaceCfg::fixed(feature_dim, SpaceKind::Euclidean),
            ],
            feature_dim,
            seed,
        );
        cfg.edge_projection = false;
        cfg
    }

    /// An M2GNN-like baseline: fixed mixed-curvature manifold with global
    /// (non-attentive) subspace weights (documented substitution).
    pub fn m2gnn_like(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::base(
            "M2GNN (fixed mixed, global weights)",
            vec![
                SubspaceCfg::fixed(feature_dim, SpaceKind::Hyperbolic),
                SubspaceCfg::fixed(feature_dim, SpaceKind::Spherical),
            ],
            feature_dim,
            seed,
        );
        cfg.attention_combination = false;
        cfg
    }

    /// HGCN-like baseline: single hyperbolic GCN (documented substitution).
    pub fn hgcn_like(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::hyperbolic(feature_dim, seed);
        cfg.name = "HGCN (hyperbolic GCN)".into();
        cfg
    }

    /// HyperML-like baseline: hyperbolic metric learning without context
    /// encoding (documented substitution).
    pub fn hyperml_like(feature_dim: usize, seed: u64) -> Self {
        let mut cfg = Self::hyperbolic(feature_dim, seed);
        cfg.name = "HyperML (hyperbolic, no GCN)".into();
        cfg.gcn_layers = 0;
        cfg
    }

    /// A tiny configuration for fast unit tests: small dimensions, a single
    /// neighbour per type, an aggressive learning rate and a short warm-up
    /// so a handful of steps already shows learning progress.
    pub fn test_tiny(seed: u64) -> Self {
        let mut cfg = Self::amcad(4, seed);
        cfg.name = "AMCAD (test)".into();
        cfg.gcn_fanout = 1;
        cfg.negatives_per_positive = 3;
        cfg.optimizer.learning_rate = 0.1;
        cfg.optimizer.warmup_steps = 5;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_add_up() {
        let cfg = AmcadConfig::amcad(8, 1);
        assert_eq!(cfg.subspace_dim(), 8 + 4 + 4);
        assert_eq!(cfg.num_subspaces(), 2);
        assert_eq!(cfg.total_dim(), 2 * 16);
        // each subspace's dim must match the concatenated feature dims
        for s in &cfg.subspaces {
            assert_eq!(s.dim, cfg.subspace_dim());
        }
    }

    #[test]
    fn presets_toggle_the_right_components() {
        assert!(!AmcadConfig::without_fusion(4, 1).space_fusion);
        assert!(!AmcadConfig::without_projection(4, 1).edge_projection);
        assert!(!AmcadConfig::without_combination(4, 1).attention_combination);
        assert_eq!(AmcadConfig::euclidean(4, 1).num_subspaces(), 1);
        assert_eq!(AmcadConfig::hyperml_like(4, 1).gcn_layers, 0);
    }

    #[test]
    fn product_space_freezes_curvature_and_weights() {
        let cfg = AmcadConfig::product_space(&[SpaceKind::Hyperbolic, SpaceKind::Spherical], 4, 1);
        assert!(!cfg.attention_combination);
        assert!(!cfg.edge_projection);
        assert_eq!(cfg.name, "Product(HxS)");
        assert!(cfg.subspaces.iter().all(|s| !s.trainable_kappa()));
    }

    #[test]
    fn subspace_cfg_kappa_defaults() {
        assert_eq!(
            SubspaceCfg::fixed(4, SpaceKind::Hyperbolic).initial_kappa(),
            -1.0
        );
        assert_eq!(SubspaceCfg::with_kappa(4, 0.7).initial_kappa(), 0.7);
        assert!(SubspaceCfg::unified(4).trainable_kappa());
        assert!(!SubspaceCfg::with_kappa(4, 0.7).trainable_kappa());
    }

    #[test]
    fn loss_defaults_match_the_paper() {
        let l = LossConfig::default();
        assert_eq!(l.margin, 0.5);
        assert_eq!(l.fermi_radius, 1.0);
        assert_eq!(l.fermi_temperature, 5.0);
        assert_eq!(l.origin_reg_weight, 1e-3);
    }
}
