//! The adaptive mixed-curvature representation model (Section IV-B).
//!
//! [`AmcadModel`] owns every trainable parameter and implements the forward
//! pass on an autodiff tape:
//!
//! * **Node-level adaptive mixed-curvature encoder** — inductive feature
//!   embeddings mapped into each subspace by the exponential map (Eq. 4),
//!   tangent-space GCN context encoding (Eq. 5–6), and space fusion
//!   (Eq. 7–8).
//! * **Edge-level adaptive mixed-curvature scorer** — per-relation edge-space
//!   projection (Eq. 9–10) and attention-based subspace-distance combination
//!   (Eq. 11–14).
//! * **Loss** — triplet loss over Fermi–Dirac similarities (Eq. 15) plus the
//!   curved-space origin regulariser (Eq. 16).
//!
//! Every restricted variant of the paper (single spaces, fixed product
//! spaces, the ablations of Table VII) is obtained purely through
//! [`AmcadConfig`] toggles — the forward pass below is the only model code.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use amcad_autodiff::{manifold_ops as mops, Batch, DenseId, ParamStore, TableId, Tape, Var};
use amcad_graph::{HeteroGraph, NodeId, NodeType, TrainSample};

use crate::config::AmcadConfig;
use crate::relation::RelationKind;

/// Key of a node-level curvature parameter: (subspace, node type).
type NodeKappaKey = (usize, usize);
/// Key of an edge-level curvature parameter: (subspace, relation index).
type EdgeKappaKey = (usize, usize);

/// The AMCAD model: configuration, parameter store and parameter handles.
pub struct AmcadModel {
    config: AmcadConfig,
    store: ParamStore,
    /// node id → index within its node type (ID-feature row).
    type_index: Vec<u32>,
    /// node id → node type (copied from the graph for cheap lookup).
    node_types: Vec<NodeType>,
    num_categories: usize,
    vocab_size: usize,

    // parameter handles
    id_tables: HashMap<(usize, usize), TableId>, // (type, subspace)
    cat_tables: Vec<TableId>,                    // per subspace
    term_tables: Vec<TableId>,                   // per subspace
    node_kappas: HashMap<NodeKappaKey, DenseId>,
    edge_kappas: HashMap<EdgeKappaKey, DenseId>,
    shared_edge_kappas: Vec<DenseId>, // per subspace, used when edge_projection = false
    gcn_weights: HashMap<(usize, usize, usize), DenseId>, // (subspace, type, layer)
    fusion_weights: HashMap<(usize, usize), DenseId>, // (subspace, type)
    proj_weights: HashMap<(usize, usize), DenseId>, // (subspace, type)
    attn_weights: HashMap<usize, DenseId>, // per type
}

/// A node embedded in the product space: one tape variable per subspace,
/// each a point of the subspace with the node-type curvature.
pub struct EncodedNode {
    /// Per-subspace points (row vectors of the subspace dimension).
    pub subspaces: Vec<Var>,
    /// Node type of the encoded node.
    pub node_type: NodeType,
}

/// Per-batch tape context: caches parameter leaves so a parameter bound
/// several times in one batch contributes one leaf (gradients still
/// accumulate correctly either way; caching just keeps the tape small).
pub struct Ctx {
    /// The autodiff tape of this batch.
    pub tape: Tape,
    /// The parameter-binding record of this batch.
    pub batch: Batch,
    dense_cache: HashMap<DenseId, Var>,
    rng: StdRng,
}

impl Ctx {
    fn new(seed: u64) -> Self {
        Ctx {
            tape: Tape::new(),
            batch: Batch::new(),
            dense_cache: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

/// The outcome of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepStats {
    /// Mean triplet + regularisation loss of the batch.
    pub loss: f64,
    /// Pre-clip global gradient norm.
    pub grad_norm: f64,
    /// Number of samples in the batch.
    pub samples: usize,
}

impl AmcadModel {
    /// Build a model for a graph: registers every parameter (embedding
    /// tables sized to the graph's vocabularies, GCN / fusion / projection /
    /// attention weights and all curvatures).
    pub fn new(config: AmcadConfig, graph: &HeteroGraph) -> Self {
        let mut store = ParamStore::new(config.optimizer, config.seed);

        // --- per-type ID indexing ------------------------------------------
        let mut type_counts = [0u32; 3];
        let mut type_index = vec![0u32; graph.num_nodes()];
        let mut node_types = Vec::with_capacity(graph.num_nodes());
        for node in graph.all_nodes() {
            let t = graph.node_type(node);
            node_types.push(t);
            type_index[node.index()] = type_counts[t.index()];
            type_counts[t.index()] += 1;
        }
        let num_categories = graph
            .all_nodes()
            .map(|n| graph.category(n) as usize)
            .max()
            .unwrap_or(0)
            + 1;
        let vocab_size = graph
            .all_nodes()
            .flat_map(|n| graph.features(n).terms.iter().copied())
            .max()
            .unwrap_or(0) as usize
            + 1;

        let m_count = config.num_subspaces();
        let d = config.subspace_dim();
        let init = 0.05;

        // --- embedding tables ------------------------------------------------
        let mut id_tables = HashMap::new();
        let mut cat_tables = Vec::new();
        let mut term_tables = Vec::new();
        for m in 0..m_count {
            cat_tables.push(store.embedding(
                &format!("cat_m{m}"),
                num_categories.max(1),
                config.category_dim,
                init,
            ));
            term_tables.push(store.embedding(
                &format!("term_m{m}"),
                vocab_size.max(1),
                config.term_dim,
                init,
            ));
            for t in NodeType::ALL {
                let rows = type_counts[t.index()].max(1) as usize;
                id_tables.insert(
                    (t.index(), m),
                    store.embedding(&format!("id_{}_m{m}", t.name()), rows, config.id_dim, init),
                );
            }
        }

        // --- curvatures -------------------------------------------------------
        let mut node_kappas = HashMap::new();
        let mut edge_kappas = HashMap::new();
        let mut shared_edge_kappas = Vec::new();
        for (m, sub) in config.subspaces.iter().enumerate() {
            for t in NodeType::ALL {
                node_kappas.insert(
                    (m, t.index()),
                    store.scalar_param(
                        &format!("kappa_node_m{m}_{}", t.name()),
                        sub.initial_kappa(),
                        sub.trainable_kappa(),
                    ),
                );
            }
            for r in RelationKind::ALL {
                edge_kappas.insert(
                    (m, r.index()),
                    store.scalar_param(
                        &format!("kappa_edge_m{m}_{}", r.name()),
                        sub.initial_kappa(),
                        sub.trainable_kappa(),
                    ),
                );
            }
            shared_edge_kappas.push(store.scalar_param(
                &format!("kappa_edge_m{m}_shared"),
                sub.initial_kappa(),
                sub.trainable_kappa(),
            ));
        }

        // --- weights ----------------------------------------------------------
        let mut gcn_weights = HashMap::new();
        let mut fusion_weights = HashMap::new();
        let mut proj_weights = HashMap::new();
        let mut attn_weights = HashMap::new();
        let wscale = (1.0 / d as f64).sqrt();
        for m in 0..m_count {
            for t in NodeType::ALL {
                for l in 0..config.gcn_layers {
                    gcn_weights.insert(
                        (m, t.index(), l),
                        store.dense(&format!("gcn_m{m}_{}_l{l}", t.name()), 2 * d, d, wscale),
                    );
                }
                fusion_weights.insert(
                    (m, t.index()),
                    store.dense(&format!("fusion_m{m}_{}", t.name()), 2 * d, d, wscale),
                );
                proj_weights.insert(
                    (m, t.index()),
                    store.dense(&format!("proj_m{m}_{}", t.name()), d, d, wscale),
                );
            }
        }
        for t in NodeType::ALL {
            attn_weights.insert(
                t.index(),
                store.dense(&format!("attn_{}", t.name()), m_count * d, m_count, wscale),
            );
        }

        AmcadModel {
            config,
            store,
            type_index,
            node_types,
            num_categories,
            vocab_size,
            id_tables,
            cat_tables,
            term_tables,
            node_kappas,
            edge_kappas,
            shared_edge_kappas,
            gcn_weights,
            fusion_weights,
            proj_weights,
            attn_weights,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &AmcadConfig {
        &self.config
    }

    /// The parameter store (read access, e.g. for reporting curvatures).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_parameters()
    }

    /// Current node-level curvature of subspace `m` for nodes of type `t`.
    pub fn node_kappa(&self, m: usize, t: NodeType) -> f64 {
        self.store.scalar_value(self.node_kappas[&(m, t.index())])
    }

    /// Current edge-level curvature of subspace `m` for relation `kind`.
    pub fn edge_kappa(&self, m: usize, kind: RelationKind) -> f64 {
        if self.config.edge_projection {
            self.store
                .scalar_value(self.edge_kappas[&(m, kind.index())])
        } else {
            self.store.scalar_value(self.shared_edge_kappas[m])
        }
    }

    /// Start a fresh batch context.
    pub fn begin_batch(&self, seed: u64) -> Ctx {
        Ctx::new(seed ^ self.config.seed)
    }

    fn use_dense_cached(&self, ctx: &mut Ctx, id: DenseId) -> Var {
        if let Some(v) = ctx.dense_cache.get(&id) {
            return *v;
        }
        let v = self.store.use_dense(&mut ctx.tape, &mut ctx.batch, id);
        ctx.dense_cache.insert(id, v);
        v
    }

    fn node_kappa_var(&self, ctx: &mut Ctx, m: usize, t: NodeType) -> Var {
        self.use_dense_cached(ctx, self.node_kappas[&(m, t.index())])
    }

    fn edge_kappa_var(&self, ctx: &mut Ctx, m: usize, kind: RelationKind) -> Var {
        let id = if self.config.edge_projection {
            self.edge_kappas[&(m, kind.index())]
        } else {
            self.shared_edge_kappas[m]
        };
        self.use_dense_cached(ctx, id)
    }

    // ------------------------------------------------------------------
    // Node-level adaptive mixed-curvature encoder
    // ------------------------------------------------------------------

    /// Inductive feature embedding of a node in subspace `m` (Eq. 4): the
    /// concatenated ID / category / term feature embeddings, exponentially
    /// mapped into the subspace.
    fn inductive_embedding(
        &mut self,
        ctx: &mut Ctx,
        graph: &HeteroGraph,
        node: NodeId,
        m: usize,
    ) -> Var {
        let t = self.node_types[node.index()];
        let id_table = self.id_tables[&(t.index(), m)];
        let cat_table = self.cat_tables[m];
        let term_table = self.term_tables[m];

        let id_row = self.type_index[node.index()] as usize;
        let id_emb = self
            .store
            .use_row(&mut ctx.tape, &mut ctx.batch, id_table, id_row);

        let category = graph.category(node) as usize;
        let cat_row = category.min(self.num_categories.saturating_sub(1));
        let cat_emb = self
            .store
            .use_row(&mut ctx.tape, &mut ctx.batch, cat_table, cat_row);

        // average of term embeddings (queries/items/ads have ≥ 1 term in the
        // generated worlds; an all-zero vector is used if none).
        let terms = graph.features(node).terms.clone();
        let term_emb = if terms.is_empty() {
            ctx.tape.row(vec![0.0; self.config.term_dim])
        } else {
            let mut acc = None;
            for &term in &terms {
                let row = (term as usize).min(self.vocab_size.saturating_sub(1));
                let e = self
                    .store
                    .use_row(&mut ctx.tape, &mut ctx.batch, term_table, row);
                acc = Some(match acc {
                    None => e,
                    Some(prev) => ctx.tape.add(prev, e),
                });
            }
            let summed = acc.expect("at least one term");
            ctx.tape.scale(summed, 1.0 / terms.len() as f64)
        };

        let concat = ctx.tape.concat_cols(&[id_emb, cat_emb, term_emb]);
        let kappa = self.node_kappa_var(ctx, m, t);
        mops::exp0(&mut ctx.tape, concat, kappa)
    }

    /// Encode a node through `layer` rounds of GCN context encoding
    /// (recursive neighbour expansion), returning the per-subspace points.
    fn encode_with_layers(
        &mut self,
        ctx: &mut Ctx,
        graph: &HeteroGraph,
        node: NodeId,
        layer: usize,
    ) -> Vec<Var> {
        let t = self.node_types[node.index()];
        if layer == 0 {
            return (0..self.config.num_subspaces())
                .map(|m| self.inductive_embedding(ctx, graph, node, m))
                .collect();
        }

        // Sample the neighbour set once; reuse it across subspaces so each
        // subspace sees the same local structure.
        let fanout = self.config.gcn_fanout;
        let mut neighbor_sets: Vec<(NodeType, Vec<NodeId>)> = Vec::new();
        for nt in NodeType::ALL {
            let sampled = graph.sample_neighbors_of_type(node, nt, fanout, &mut ctx.rng);
            if !sampled.is_empty() {
                neighbor_sets.push((nt, sampled));
            }
        }
        // Recursively encode self and neighbours at the previous layer.
        let self_prev = self.encode_with_layers(ctx, graph, node, layer - 1);
        let neighbor_prev: Vec<(NodeType, Vec<Vec<Var>>)> = neighbor_sets
            .iter()
            .map(|(nt, nodes)| {
                (
                    *nt,
                    nodes
                        .iter()
                        .map(|n| self.encode_with_layers(ctx, graph, *n, layer - 1))
                        .collect(),
                )
            })
            .collect();

        let d = self.config.subspace_dim();
        let mut out = Vec::with_capacity(self.config.num_subspaces());
        for m in 0..self.config.num_subspaces() {
            let kappa_self = self.node_kappa_var(ctx, m, t);
            // Aggregate neighbour information in the shared tangent space at
            // the origin (Eq. 5): per neighbour type, mean of log-mapped
            // embeddings; types are then summed.
            let mut agg: Option<Var> = None;
            for (nt, encoded) in &neighbor_prev {
                let kappa_nt = self.node_kappa_var(ctx, m, *nt);
                let mut type_sum: Option<Var> = None;
                for enc in encoded {
                    let logged = mops::log0(&mut ctx.tape, enc[m], kappa_nt);
                    type_sum = Some(match type_sum {
                        None => logged,
                        Some(prev) => ctx.tape.add(prev, logged),
                    });
                }
                if let Some(sum) = type_sum {
                    let mean = ctx.tape.scale(sum, 1.0 / encoded.len() as f64);
                    agg = Some(match agg {
                        None => mean,
                        Some(prev) => ctx.tape.add(prev, mean),
                    });
                }
            }
            let agg = agg.unwrap_or_else(|| ctx.tape.row(vec![0.0; d]));
            let self_log = mops::log0(&mut ctx.tape, self_prev[m], kappa_self);
            let hhat = ctx.tape.concat_cols(&[agg, self_log]);
            // Eq. 6: h = σ_{κ→κ}(W ⊗_κ exp_0(ĥ)) = exp_0(tanh(ĥ · W)).
            let w = self.use_dense_cached(ctx, self.gcn_weights[&(m, t.index(), layer - 1)]);
            let lin = ctx.tape.matmul(hhat, w);
            let act = ctx.tape.tanh(lin);
            out.push(mops::exp0(&mut ctx.tape, act, kappa_self));
        }
        out
    }

    /// Space fusion (Eq. 7–8): interact each subspace with the average of
    /// all subspaces in the global tangent space.
    fn fuse(&mut self, ctx: &mut Ctx, node_type: NodeType, points: Vec<Var>) -> Vec<Var> {
        if !self.config.space_fusion || points.len() < 2 {
            return points;
        }
        let m_count = points.len();
        let logs: Vec<Var> = (0..m_count)
            .map(|m| {
                let kappa = self.node_kappa_var(ctx, m, node_type);
                mops::log0(&mut ctx.tape, points[m], kappa)
            })
            .collect();
        let mut sum = logs[0];
        for l in &logs[1..] {
            sum = ctx.tape.add(sum, *l);
        }
        let global = ctx.tape.scale(sum, 1.0 / m_count as f64);
        (0..m_count)
            .map(|m| {
                let concat = ctx.tape.concat_cols(&[global, logs[m]]);
                let w = self.use_dense_cached(ctx, self.fusion_weights[&(m, node_type.index())]);
                let lin = ctx.tape.matmul(concat, w);
                let kappa = self.node_kappa_var(ctx, m, node_type);
                mops::exp0(&mut ctx.tape, lin, kappa)
            })
            .collect()
    }

    /// Full node-level encoder: inductive embedding → GCN context encoding →
    /// space fusion.
    pub fn encode_node(&mut self, ctx: &mut Ctx, graph: &HeteroGraph, node: NodeId) -> EncodedNode {
        let t = self.node_types[node.index()];
        let points = self.encode_with_layers(ctx, graph, node, self.config.gcn_layers);
        let fused = self.fuse(ctx, t, points);
        EncodedNode {
            subspaces: fused,
            node_type: t,
        }
    }

    // ------------------------------------------------------------------
    // Edge-level adaptive mixed-curvature scorer
    // ------------------------------------------------------------------

    /// Project a node's subspace points into the edge space of `kind`
    /// (Eq. 9): `proj_r(x^{m,t}) = σ_{κ_{m,t}→κ_{m,r}}(W₂^{m,t} ⊗ x^{m,t})`.
    pub fn project_to_edge_space(
        &mut self,
        ctx: &mut Ctx,
        encoded: &EncodedNode,
        kind: RelationKind,
    ) -> Vec<Var> {
        let t = encoded.node_type;
        (0..self.config.num_subspaces())
            .map(|m| {
                let kappa_node = self.node_kappa_var(ctx, m, t);
                let kappa_edge = self.edge_kappa_var(ctx, m, kind);
                let w = self.use_dense_cached(ctx, self.proj_weights[&(m, t.index())]);
                let logged = mops::log0(&mut ctx.tape, encoded.subspaces[m], kappa_node);
                let lin = ctx.tape.matmul(logged, w);
                let act = ctx.tape.tanh(lin);
                mops::exp0(&mut ctx.tape, act, kappa_edge)
            })
            .collect()
    }

    /// Node-level attention weights over subspaces (Eq. 12–13), computed
    /// from the projected points.  Returns a softmax row vector of length M.
    pub fn attention_weights(
        &mut self,
        ctx: &mut Ctx,
        node_type: NodeType,
        projected: &[Var],
    ) -> Var {
        let m_count = projected.len();
        if !self.config.attention_combination {
            // uniform weights summing to 1 (a constant — no gradient path).
            return ctx.tape.row(vec![1.0 / m_count as f64; m_count]);
        }
        let concat = ctx.tape.concat_cols(projected);
        let w = self.use_dense_cached(ctx, self.attn_weights[&node_type.index()]);
        let alpha = ctx.tape.matmul(concat, w);
        ctx.tape.softmax(alpha)
    }

    /// Mixed-curvature distance between two encoded nodes under relation
    /// `kind` (Eq. 10 + Eq. 14).
    pub fn score_distance(
        &mut self,
        ctx: &mut Ctx,
        src: &EncodedNode,
        dst: &EncodedNode,
        kind: RelationKind,
    ) -> Var {
        let proj_src = self.project_to_edge_space(ctx, src, kind);
        let proj_dst = self.project_to_edge_space(ctx, dst, kind);
        let w_src = self.attention_weights(ctx, src.node_type, &proj_src);
        let w_dst = self.attention_weights(ctx, dst.node_type, &proj_dst);
        let weights = ctx.tape.add(w_src, w_dst); // Eq. 11

        let mut dist_terms = Vec::with_capacity(proj_src.len());
        for m in 0..proj_src.len() {
            let kappa_edge = self.edge_kappa_var(ctx, m, kind);
            let d_m = mops::distance(&mut ctx.tape, proj_src[m], proj_dst[m], kappa_edge);
            dist_terms.push(d_m);
        }
        let dists = ctx.tape.concat_cols(&dist_terms);
        let weighted = ctx.tape.mul(weights, dists);
        ctx.tape.sum(weighted)
    }

    /// Curved-space regularisation term (Eq. 16): distance of each subspace
    /// point from the origin.
    fn origin_regulariser(&mut self, ctx: &mut Ctx, encoded: &EncodedNode) -> Var {
        let mut total: Option<Var> = None;
        for m in 0..encoded.subspaces.len() {
            let kappa = self.node_kappa_var(ctx, m, encoded.node_type);
            let n = ctx.tape.norm(encoded.subspaces[m], 1e-12);
            let an = ctx.tape.atan_kappa(n, kappa);
            let d = ctx.tape.scale(an, 2.0);
            total = Some(match total {
                None => d,
                Some(prev) => ctx.tape.add(prev, d),
            });
        }
        total.expect("at least one subspace")
    }

    /// Triplet loss of one training sample (Eq. 15) plus regularisation
    /// (Eq. 16).  Returns the scalar loss variable.
    pub fn sample_loss(&mut self, ctx: &mut Ctx, graph: &HeteroGraph, sample: &TrainSample) -> Var {
        let src = self.encode_node(ctx, graph, sample.src);
        let pos = self.encode_node(ctx, graph, sample.pos);
        let kind =
            RelationKind::between(src.node_type, pos.node_type).unwrap_or(RelationKind::QueryItem);

        let lc = self.config.loss;
        let d_pos = self.score_distance(ctx, &src, &pos, kind);
        let sim_pos =
            mops::fermi_dirac(&mut ctx.tape, d_pos, lc.fermi_radius, lc.fermi_temperature);

        let mut triplet_terms = Vec::with_capacity(sample.negs.len());
        let mut reg_terms = vec![
            self.origin_regulariser(ctx, &src),
            self.origin_regulariser(ctx, &pos),
        ];
        for &neg in &sample.negs {
            let neg_enc = self.encode_node(ctx, graph, neg);
            let neg_kind = RelationKind::between(src.node_type, neg_enc.node_type).unwrap_or(kind);
            let d_neg = self.score_distance(ctx, &src, &neg_enc, neg_kind);
            let sim_neg =
                mops::fermi_dirac(&mut ctx.tape, d_neg, lc.fermi_radius, lc.fermi_temperature);
            reg_terms.push(self.origin_regulariser(ctx, &neg_enc));
            // hinge: [margin + sim(neg) − sim(pos)]₊  (we want sim(pos) to
            // exceed sim(neg) by the margin).
            let diff = ctx.tape.sub(sim_neg, sim_pos);
            let shifted = ctx.tape.add_const(diff, lc.margin);
            triplet_terms.push(ctx.tape.relu(shifted));
        }
        let triplets = ctx.tape.concat_cols(&triplet_terms);
        let triplet_loss = ctx.tape.mean(triplets);

        let regs = ctx.tape.concat_cols(&reg_terms);
        let reg_sum = ctx.tape.sum(regs);
        let reg_scaled = ctx.tape.scale(reg_sum, lc.origin_reg_weight);

        ctx.tape.add(triplet_loss, reg_scaled)
    }

    /// Run one optimisation step over a batch of training samples.
    pub fn train_step(
        &mut self,
        graph: &HeteroGraph,
        samples: &[TrainSample],
        step_seed: u64,
    ) -> StepStats {
        assert!(!samples.is_empty(), "empty training batch");
        let mut ctx = self.begin_batch(step_seed);
        let mut losses = Vec::with_capacity(samples.len());
        for sample in samples {
            losses.push(self.sample_loss(&mut ctx, graph, sample));
        }
        let all = ctx.tape.concat_cols(&losses);
        let loss = ctx.tape.mean(all);
        let loss_value = ctx.tape.value(loss).scalar_value();
        let grads = ctx.tape.backward(loss);
        let grad_norm = self.store.apply_gradients(&grads, &ctx.batch);
        self.clamp_curvatures();
        StepStats {
            loss: loss_value,
            grad_norm,
            samples: samples.len(),
        }
    }

    /// Keep curvatures inside the admissible range of their configured
    /// space kind (relevant only when a restricted kind is made trainable).
    fn clamp_curvatures(&mut self) {
        for (m, sub) in self.config.subspaces.clone().iter().enumerate() {
            if !sub.trainable_kappa() {
                continue;
            }
            for t in NodeType::ALL {
                let id = self.node_kappas[&(m, t.index())];
                let v = self.store.scalar_value(id);
                self.store
                    .set_scalar_value(id, sub.kind.clamp(v.clamp(-5.0, 5.0)));
            }
            for r in RelationKind::ALL {
                let id = self.edge_kappas[&(m, r.index())];
                let v = self.store.scalar_value(id);
                self.store
                    .set_scalar_value(id, sub.kind.clamp(v.clamp(-5.0, 5.0)));
            }
            let id = self.shared_edge_kappas[m];
            let v = self.store.scalar_value(id);
            self.store
                .set_scalar_value(id, sub.kind.clamp(v.clamp(-5.0, 5.0)));
        }
    }

    /// Forward-only mixed-curvature distance between two nodes (used by
    /// tests and small-scale evaluation; large-scale evaluation goes through
    /// the export path).
    pub fn pair_distance(&mut self, graph: &HeteroGraph, a: NodeId, b: NodeId, seed: u64) -> f64 {
        let mut ctx = self.begin_batch(seed);
        let ea = self.encode_node(&mut ctx, graph, a);
        let eb = self.encode_node(&mut ctx, graph, b);
        let kind =
            RelationKind::between(ea.node_type, eb.node_type).unwrap_or(RelationKind::QueryItem);
        let d = self.score_distance(&mut ctx, &ea, &eb, kind);
        ctx.tape.value(d).scalar_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_graph::{MetaPathSampler, SamplerConfig};
    use amcad_manifold::SpaceKind;

    fn tiny_dataset() -> amcad_datagen::Dataset {
        amcad_datagen::Dataset::generate(&amcad_datagen::WorldConfig::tiny(11))
    }

    #[test]
    fn model_registers_parameters_for_every_component() {
        let d = tiny_dataset();
        let model = AmcadModel::new(AmcadConfig::test_tiny(1), &d.graph);
        assert!(model.num_parameters() > 0);
        // two subspaces × three node types of curvature parameters
        assert_eq!(model.config().num_subspaces(), 2);
        for m in 0..2 {
            for t in NodeType::ALL {
                let k = model.node_kappa(m, t);
                assert!(k.is_finite());
            }
            for r in RelationKind::ALL {
                assert!(model.edge_kappa(m, r).is_finite());
            }
        }
    }

    #[test]
    fn encoding_produces_finite_points_of_the_right_shape() {
        let d = tiny_dataset();
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(2), &d.graph);
        let mut ctx = model.begin_batch(0);
        let node = d.query_nodes[0];
        let enc = model.encode_node(&mut ctx, &d.graph, node);
        assert_eq!(enc.subspaces.len(), 2);
        assert_eq!(enc.node_type, NodeType::Query);
        for &p in &enc.subspaces {
            let v = ctx.tape.value(p);
            assert_eq!(v.cols, model.config().subspace_dim());
            assert!(v.data.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn distances_are_positive_and_symmetric_without_neighbour_sampling() {
        // With gcn_layers = 0 the encoder is deterministic (no neighbour
        // sampling), so the scorer's symmetry can be checked exactly.
        let d = tiny_dataset();
        let mut cfg = AmcadConfig::test_tiny(3);
        cfg.gcn_layers = 0;
        let mut model = AmcadModel::new(cfg, &d.graph);
        let q = d.query_nodes[0];
        let i = d.item_nodes[0];
        let d_qi = model.pair_distance(&d.graph, q, i, 7);
        let d_iq = model.pair_distance(&d.graph, i, q, 7);
        assert!(d_qi > 0.0);
        assert!((d_qi - d_iq).abs() < 1e-9, "{d_qi} vs {d_iq}");
        // self-distance is bounded by the norm guard epsilon (≈ 1e-6 per
        // subspace), not exactly zero.
        assert!((model.pair_distance(&d.graph, q, q, 7)).abs() < 1e-4);
    }

    #[test]
    fn training_reduces_loss_on_a_small_batch() {
        let d = tiny_dataset();
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(4), &d.graph);
        let sampler = MetaPathSampler::new(
            &d.graph,
            SamplerConfig {
                negatives_per_positive: 3,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sampler.sample_batch(8, &mut rng);
        assert!(!samples.is_empty());
        let first = model.train_step(&d.graph, &samples, 0);
        let mut last = first;
        // enough steps that AdaGrad settles regardless of which batch the
        // seed draws (early steps can overshoot on hard batches)
        for step in 1..60 {
            last = model.train_step(&d.graph, &samples, step);
        }
        assert!(
            last.loss < first.loss,
            "loss should decrease when overfitting one batch: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.grad_norm.is_finite());
    }

    #[test]
    fn adaptive_curvatures_move_during_training_and_fixed_ones_do_not() {
        let d = tiny_dataset();
        // adaptive model
        let mut adaptive = AmcadModel::new(AmcadConfig::test_tiny(6), &d.graph);
        let before: Vec<f64> = (0..2)
            .flat_map(|m| NodeType::ALL.map(|t| adaptive.node_kappa(m, t)))
            .collect();
        let sampler = MetaPathSampler::new(&d.graph, SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let samples = sampler.sample_batch(8, &mut rng);
        for step in 0..10 {
            adaptive.train_step(&d.graph, &samples, step);
        }
        let after: Vec<f64> = (0..2)
            .flat_map(|m| NodeType::ALL.map(|t| adaptive.node_kappa(m, t)))
            .collect();
        assert!(
            before.iter().zip(&after).any(|(b, a)| (b - a).abs() > 1e-9),
            "at least one adaptive curvature should have moved"
        );

        // fixed Euclidean model: curvature pinned at exactly zero
        let mut fixed = AmcadModel::new(AmcadConfig::euclidean(4, 6), &d.graph);
        for step in 0..5 {
            fixed.train_step(&d.graph, &samples, step);
        }
        assert_eq!(fixed.node_kappa(0, NodeType::Query), 0.0);
    }

    #[test]
    fn ablation_configs_run_end_to_end() {
        let d = tiny_dataset();
        let sampler = MetaPathSampler::new(&d.graph, SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(8);
        let samples = sampler.sample_batch(4, &mut rng);
        for cfg in [
            AmcadConfig::without_fusion(4, 1),
            AmcadConfig::without_projection(4, 1),
            AmcadConfig::without_combination(4, 1),
            AmcadConfig::product_space(&[SpaceKind::Hyperbolic, SpaceKind::Spherical], 4, 1),
            AmcadConfig::hyperml_like(4, 1),
        ] {
            let mut model = AmcadModel::new(cfg.clone(), &d.graph);
            let stats = model.train_step(&d.graph, &samples, 0);
            assert!(
                stats.loss.is_finite(),
                "loss must be finite for {}",
                cfg.name
            );
        }
    }
}
