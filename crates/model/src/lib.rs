//! # amcad-model
//!
//! The adaptive mixed-curvature representation model of AMCAD (ICDE 2022)
//! and the baselines it is compared against.
//!
//! * [`AmcadConfig`] — one configuration family covering the full model,
//!   every restricted variant (Euclidean / hyperbolic / spherical / unified
//!   single spaces, fixed-curvature product spaces) and every ablation of
//!   the paper (`- mixed`, `- curv`, `- fusion`, `- proj`, `- comb`).
//! * [`AmcadModel`] — node-level adaptive mixed-curvature encoder
//!   (inductive features → GCN context encoding → space fusion), edge-level
//!   scorer (edge-space projection + attentive subspace-distance
//!   combination), triplet loss with Fermi–Dirac similarity and curved-space
//!   regularisation.
//! * [`Trainer`] — minibatch AdaGrad training, incremental day-over-day
//!   training.
//! * [`ModelExport`] — projected embeddings plus precomputed attention
//!   weights per edge space, the artefact consumed by the MNN index builder
//!   and the online retrieval layer.
//! * [`baselines`] — DeepWalk / LINE / Node2Vec / Metapath2Vec via a shared
//!   skip-gram-with-negative-sampling trainer.

pub mod baselines;
pub mod config;
pub mod export;
pub mod model;
pub mod relation;
pub mod trainer;

pub use baselines::{SgnsConfig, SgnsModel, WalkStrategy};
pub use config::{AmcadConfig, LossConfig, SubspaceCfg};
pub use export::{ModelExport, NodeLevelSpace, PairScorer, RelationSpace};
pub use model::{AmcadModel, Ctx, EncodedNode, StepStats};
pub use relation::RelationKind;
pub use trainer::{TrainReport, Trainer, TrainerConfig};
