//! Edge-space kinds for the heterogeneous edge-level scorer.
//!
//! The edge-level scorer projects node embeddings into an *edge-wise*
//! mixed-curvature space chosen by the relation between the two node types
//! (Eq. 9).  Online serving builds six inverted indices (Q2Q, Q2I, I2Q, I2I,
//! Q2A, I2A — Section IV-C.1); index pairs that swap source and target share
//! the same edge space, so five spaces suffice.

use amcad_graph::NodeType;

/// The five heterogeneous edge spaces used by the scorer and the serving
/// indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelationKind {
    /// Query–query relations (Q2Q index).
    QueryQuery,
    /// Query–item relations (Q2I and I2Q indices).
    QueryItem,
    /// Query–ad relations (Q2A index).
    QueryAd,
    /// Item–item relations (I2I index).
    ItemItem,
    /// Item–ad relations (I2A index).
    ItemAd,
}

impl RelationKind {
    /// All edge spaces, in a stable order.
    pub const ALL: [RelationKind; 5] = [
        RelationKind::QueryQuery,
        RelationKind::QueryItem,
        RelationKind::QueryAd,
        RelationKind::ItemItem,
        RelationKind::ItemAd,
    ];

    /// Stable small index for array-indexed per-relation parameters.
    pub fn index(self) -> usize {
        match self {
            RelationKind::QueryQuery => 0,
            RelationKind::QueryItem => 1,
            RelationKind::QueryAd => 2,
            RelationKind::ItemItem => 3,
            RelationKind::ItemAd => 4,
        }
    }

    /// The edge space connecting two node types, if the pair is served by
    /// the system (ad–ad and ad–query-source pairs are not used online).
    pub fn between(a: NodeType, b: NodeType) -> Option<RelationKind> {
        use NodeType::*;
        match (a, b) {
            (Query, Query) => Some(RelationKind::QueryQuery),
            (Query, Item) | (Item, Query) => Some(RelationKind::QueryItem),
            (Query, Ad) | (Ad, Query) => Some(RelationKind::QueryAd),
            (Item, Item) => Some(RelationKind::ItemItem),
            (Item, Ad) | (Ad, Item) => Some(RelationKind::ItemAd),
            (Ad, Ad) => None,
        }
    }

    /// Short name used in reports ("Q2Q", "Q2I", ...).
    pub fn name(self) -> &'static str {
        match self {
            RelationKind::QueryQuery => "Q2Q",
            RelationKind::QueryItem => "Q2I",
            RelationKind::QueryAd => "Q2A",
            RelationKind::ItemItem => "I2I",
            RelationKind::ItemAd => "I2A",
        }
    }

    /// The node types participating in this edge space.
    pub fn node_types(self) -> (NodeType, NodeType) {
        use NodeType::*;
        match self {
            RelationKind::QueryQuery => (Query, Query),
            RelationKind::QueryItem => (Query, Item),
            RelationKind::QueryAd => (Query, Ad),
            RelationKind::ItemItem => (Item, Item),
            RelationKind::ItemAd => (Item, Ad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_is_symmetric_and_total_except_ad_ad() {
        use NodeType::*;
        for a in NodeType::ALL {
            for b in NodeType::ALL {
                let ab = RelationKind::between(a, b);
                let ba = RelationKind::between(b, a);
                assert_eq!(ab, ba);
                if a == Ad && b == Ad {
                    assert!(ab.is_none());
                } else {
                    assert!(ab.is_some());
                }
            }
        }
    }

    #[test]
    fn indices_are_distinct_and_dense() {
        let mut seen = [false; 5];
        for r in RelationKind::ALL {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn names_match_the_papers_index_names() {
        assert_eq!(RelationKind::QueryQuery.name(), "Q2Q");
        assert_eq!(RelationKind::ItemAd.name(), "I2A");
        assert_eq!(
            RelationKind::between(NodeType::Item, NodeType::Query)
                .unwrap()
                .name(),
            "Q2I"
        );
    }
}
