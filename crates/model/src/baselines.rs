//! Walk-based Euclidean baselines (Table VI "E" block).
//!
//! DeepWalk, LINE (1st/2nd order), Node2Vec and Metapath2Vec all reduce to
//! skip-gram with negative sampling (SGNS) over node pairs; they differ only
//! in how the positive pairs are generated.  One shared SGNS trainer with
//! closed-form gradients therefore covers the whole family, with a
//! [`WalkStrategy`] per method.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use amcad_graph::{AliasTable, HeteroGraph, MetaPathSampler, NodeId, Relation, SamplerConfig};

use crate::export::PairScorer;

/// How positive training pairs are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum WalkStrategy {
    /// Uniform random walks over all relations (Perozzi et al. 2014).
    DeepWalk {
        /// Length of each walk.
        walk_length: usize,
        /// Walks started per node.
        walks_per_node: usize,
        /// Skip-gram window size.
        window: usize,
    },
    /// First-order LINE: direct edges as positive pairs (Tang et al. 2015).
    LineFirst,
    /// Second-order LINE: edges as (node, context) pairs trained against a
    /// separate context embedding.
    LineSecond,
    /// Biased second-order random walks (Grover & Leskovec 2016).
    Node2Vec {
        /// Return parameter `p`.
        p: f64,
        /// In-out parameter `q`.
        q: f64,
        /// Length of each walk.
        walk_length: usize,
        /// Walks started per node.
        walks_per_node: usize,
        /// Skip-gram window size.
        window: usize,
    },
    /// Meta-path guided walks (Dong et al. 2017) using the paper's six
    /// meta-paths.
    Metapath2Vec {
        /// Number of walks to draw.
        walks: usize,
    },
}

impl WalkStrategy {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WalkStrategy::DeepWalk { .. } => "DeepWalk",
            WalkStrategy::LineFirst => "LINE(1st)",
            WalkStrategy::LineSecond => "LINE(2nd)",
            WalkStrategy::Node2Vec { .. } => "Node2Vec",
            WalkStrategy::Metapath2Vec { .. } => "Metapath2Vec",
        }
    }

    /// Default settings used by the Table VI experiment at laptop scale.
    pub fn default_deepwalk() -> Self {
        WalkStrategy::DeepWalk {
            walk_length: 8,
            walks_per_node: 4,
            window: 2,
        }
    }

    /// Default Node2Vec settings.
    pub fn default_node2vec() -> Self {
        WalkStrategy::Node2Vec {
            p: 0.5,
            q: 2.0,
            walk_length: 8,
            walks_per_node: 4,
            window: 2,
        }
    }

    /// Default Metapath2Vec settings.
    pub fn default_metapath2vec() -> Self {
        WalkStrategy::Metapath2Vec { walks: 4_000 }
    }
}

/// Hyper-parameters of the SGNS trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgnsConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs over the generated pair set.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            negatives: 5,
            learning_rate: 0.05,
            epochs: 2,
            seed: 13,
        }
    }
}

/// A trained skip-gram baseline: one Euclidean embedding per node (plus a
/// context embedding for second-order objectives).
#[derive(Debug, Clone)]
pub struct SgnsModel {
    name: String,
    dim: usize,
    emb: Vec<f64>,
    ctx: Vec<f64>,
    num_nodes: usize,
}

impl SgnsModel {
    /// Train a baseline of the given strategy on a graph.
    pub fn train(graph: &HeteroGraph, strategy: &WalkStrategy, config: &SgnsConfig) -> SgnsModel {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pairs = generate_pairs(graph, strategy, &mut rng);
        let use_context = matches!(strategy, WalkStrategy::LineSecond);

        let n = graph.num_nodes();
        let dim = config.dim;
        let mut emb: Vec<f64> = (0..n * dim)
            .map(|_| (rng.gen::<f64>() - 0.5) / dim as f64)
            .collect();
        let mut ctx: Vec<f64> = vec![0.0; n * dim];

        // Negative sampling distribution ∝ degree^0.75 (word2vec convention).
        let weights: Vec<f64> = (0..n as u32)
            .map(|i| (graph.total_degree(NodeId(i)) as f64).powf(0.75).max(1e-3))
            .collect();
        let neg_table = AliasTable::new(&weights);

        let lr = config.learning_rate;
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &pi in &order {
                let (u, v) = pairs[pi];
                sgns_update(
                    &mut emb,
                    &mut ctx,
                    dim,
                    u.index(),
                    v.index(),
                    true,
                    lr,
                    use_context,
                );
                for _ in 0..config.negatives {
                    let neg = neg_table.sample(&mut rng);
                    if neg == v.index() {
                        continue;
                    }
                    sgns_update(
                        &mut emb,
                        &mut ctx,
                        dim,
                        u.index(),
                        neg,
                        false,
                        lr,
                        use_context,
                    );
                }
            }
        }

        SgnsModel {
            name: strategy.name().to_string(),
            dim,
            emb,
            ctx,
            num_nodes: n,
        }
    }

    /// Embedding of a node.
    pub fn embedding(&self, node: NodeId) -> &[f64] {
        &self.emb[node.index() * self.dim..(node.index() + 1) * self.dim]
    }

    /// Context embedding of a node (second-order objectives).
    pub fn context_embedding(&self, node: NodeId) -> &[f64] {
        &self.ctx[node.index() * self.dim..(node.index() + 1) * self.dim]
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

impl PairScorer for SgnsModel {
    fn score_pair(&self, src: NodeId, dst: NodeId) -> f64 {
        let a = self.embedding(src);
        let b = self.embedding(dst);
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn scorer_name(&self) -> &str {
        &self.name
    }
}

/// One SGNS gradient step on a (source, target) pair.
///
/// The source vector always lives in `emb`; the target vector lives in `ctx`
/// for second-order objectives (LINE 2nd) and in `emb` otherwise.  Small
/// local copies sidestep any aliasing when `u == v`.
#[allow(clippy::too_many_arguments)]
fn sgns_update(
    emb: &mut [f64],
    ctx: &mut [f64],
    dim: usize,
    u: usize,
    v: usize,
    positive: bool,
    lr: f64,
    use_context: bool,
) {
    let (u_off, v_off) = (u * dim, v * dim);
    let src: Vec<f64> = emb[u_off..u_off + dim].to_vec();
    let dst: Vec<f64> = if use_context {
        ctx[v_off..v_off + dim].to_vec()
    } else {
        emb[v_off..v_off + dim].to_vec()
    };
    let score: f64 = src.iter().zip(&dst).map(|(a, b)| a * b).sum();
    let label = if positive { 1.0 } else { 0.0 };
    let sigma = 1.0 / (1.0 + (-score).exp());
    let g = (sigma - label) * lr;
    for k in 0..dim {
        emb[u_off + k] -= g * dst[k];
        if use_context {
            ctx[v_off + k] -= g * src[k];
        } else {
            emb[v_off + k] -= g * src[k];
        }
    }
}

/// Generate positive pairs for a strategy.
fn generate_pairs(
    graph: &HeteroGraph,
    strategy: &WalkStrategy,
    rng: &mut StdRng,
) -> Vec<(NodeId, NodeId)> {
    match strategy {
        WalkStrategy::DeepWalk {
            walk_length,
            walks_per_node,
            window,
        } => walk_pairs(graph, *walk_length, *walks_per_node, *window, None, rng),
        WalkStrategy::Node2Vec {
            p,
            q,
            walk_length,
            walks_per_node,
            window,
        } => walk_pairs(
            graph,
            *walk_length,
            *walks_per_node,
            *window,
            Some((*p, *q)),
            rng,
        ),
        WalkStrategy::LineFirst | WalkStrategy::LineSecond => {
            let mut pairs = Vec::new();
            for node in graph.all_nodes() {
                for r in Relation::ALL {
                    for &n in graph.neighbors(node, r) {
                        pairs.push((node, n));
                    }
                }
            }
            pairs
        }
        WalkStrategy::Metapath2Vec { walks } => {
            let sampler = MetaPathSampler::new(
                graph,
                SamplerConfig {
                    same_category_positives: false,
                    ..Default::default()
                },
            );
            let mut pairs = Vec::new();
            for _ in 0..*walks {
                if let Some((_, seq)) = sampler.walk(rng) {
                    for (src, pos) in sampler.positive_pairs(&seq) {
                        pairs.push((src, pos));
                    }
                }
            }
            pairs
        }
    }
}

/// Uniform (DeepWalk) or biased (Node2Vec) random walks turned into
/// window-limited skip-gram pairs.
fn walk_pairs(
    graph: &HeteroGraph,
    walk_length: usize,
    walks_per_node: usize,
    window: usize,
    node2vec_pq: Option<(f64, f64)>,
    rng: &mut StdRng,
) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for start in graph.all_nodes() {
        if graph.total_degree(start) == 0 {
            continue;
        }
        for _ in 0..walks_per_node {
            let mut walk = vec![start];
            let mut prev: Option<NodeId> = None;
            let mut current = start;
            for _ in 1..walk_length {
                let neighbors = graph.neighbors_all(current);
                if neighbors.is_empty() {
                    break;
                }
                let next = match node2vec_pq {
                    None => neighbors[rng.gen_range(0..neighbors.len())],
                    Some((p, q)) => {
                        // Rejection-sample the node2vec transition bias.
                        let mut chosen = neighbors[rng.gen_range(0..neighbors.len())];
                        for _ in 0..8 {
                            let cand = neighbors[rng.gen_range(0..neighbors.len())];
                            let weight = match prev {
                                None => 1.0,
                                Some(pv) if cand == pv => 1.0 / p,
                                Some(pv) => {
                                    if graph.neighbors_all(pv).contains(&cand) {
                                        1.0
                                    } else {
                                        1.0 / q
                                    }
                                }
                            };
                            let max_w = (1.0 / p).max(1.0).max(1.0 / q);
                            if rng.gen::<f64>() < weight / max_w {
                                chosen = cand;
                                break;
                            }
                        }
                        chosen
                    }
                };
                prev = Some(current);
                walk.push(next);
                current = next;
            }
            for i in 0..walk.len() {
                let lo = i.saturating_sub(window);
                let hi = (i + window + 1).min(walk.len());
                for j in lo..hi {
                    if i != j && walk[i] != walk[j] {
                        pairs.push((walk[i], walk[j]));
                    }
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_datagen::{Dataset, WorldConfig};

    fn tiny() -> Dataset {
        Dataset::generate(&WorldConfig::tiny(41))
    }

    fn tiny_sgns() -> SgnsConfig {
        SgnsConfig {
            dim: 8,
            negatives: 3,
            learning_rate: 0.05,
            epochs: 1,
            seed: 41,
        }
    }

    #[test]
    fn all_strategies_train_and_produce_finite_embeddings() {
        let d = tiny();
        for strategy in [
            WalkStrategy::default_deepwalk(),
            WalkStrategy::LineFirst,
            WalkStrategy::LineSecond,
            WalkStrategy::default_node2vec(),
            WalkStrategy::Metapath2Vec { walks: 300 },
        ] {
            let model = SgnsModel::train(&d.graph, &strategy, &tiny_sgns());
            assert_eq!(model.num_nodes(), d.graph.num_nodes());
            assert_eq!(model.dim(), 8);
            let e = model.embedding(d.query_nodes[0]);
            assert!(e.iter().all(|x| x.is_finite()), "{}", strategy.name());
            assert!(model
                .score_pair(d.query_nodes[0], d.item_nodes[0])
                .is_finite());
        }
    }

    #[test]
    fn deepwalk_places_connected_nodes_closer_than_random_ones() {
        let d = tiny();
        let cfg = SgnsConfig {
            dim: 16,
            negatives: 5,
            learning_rate: 0.08,
            epochs: 3,
            seed: 2,
        };
        let model = SgnsModel::train(&d.graph, &WalkStrategy::default_deepwalk(), &cfg);
        // average score of actually-clicked (query, item) pairs versus
        // random cross-category pairs
        let mut rng = StdRng::seed_from_u64(3);
        let mut clicked = Vec::new();
        for s in d.train_sessions.iter().take(200) {
            for &c in &s.clicks {
                clicked.push(model.score_pair(s.query, c));
            }
        }
        let mut random = Vec::new();
        for _ in 0..clicked.len() {
            let q = d.query_nodes[rng.gen_range(0..d.query_nodes.len())];
            let i = d.item_nodes[rng.gen_range(0..d.item_nodes.len())];
            random.push(model.score_pair(q, i));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&clicked) > mean(&random),
            "clicked pairs should score higher: {} vs {}",
            mean(&clicked),
            mean(&random)
        );
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(WalkStrategy::default_deepwalk().name(), "DeepWalk");
        assert_eq!(WalkStrategy::LineFirst.name(), "LINE(1st)");
        assert_eq!(WalkStrategy::LineSecond.name(), "LINE(2nd)");
        assert_eq!(WalkStrategy::default_node2vec().name(), "Node2Vec");
        assert_eq!(WalkStrategy::default_metapath2vec().name(), "Metapath2Vec");
    }

    #[test]
    fn line_second_uses_context_embeddings() {
        let d = tiny();
        let model = SgnsModel::train(&d.graph, &WalkStrategy::LineSecond, &tiny_sgns());
        // context embeddings should have been touched (not all zero)
        let any_nonzero = d
            .graph
            .all_nodes()
            .any(|n| model.context_embedding(n).iter().any(|x| *x != 0.0));
        assert!(any_nonzero);
    }
}
