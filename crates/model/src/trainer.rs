//! Training loop, incremental (day-over-day) training and statistics.
//!
//! The production system trains the model once per day on a window of logs,
//! warm-starting from the previous day's parameters (Section V-C) and using
//! the LRU feature-exit mechanism to bound the size of the sparse ID
//! embedding tables.  [`Trainer`] reproduces the batch loop; incremental
//! training over a sequence of graphs is covered by
//! [`Trainer::run_incremental`].

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use amcad_graph::{HeteroGraph, MetaPathSampler, SamplerConfig};

use crate::model::AmcadModel;

/// Configuration of the training loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Samples per optimisation step.
    pub batch_size: usize,
    /// Number of optimisation steps.
    pub steps: usize,
    /// RNG seed for walk / negative sampling.
    pub seed: u64,
    /// Evict embedding rows unused for this many steps after each epoch of
    /// incremental training (0 disables eviction).
    pub lru_max_age: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_size: 32,
            steps: 200,
            seed: 17,
            lru_max_age: 0,
        }
    }
}

impl TrainerConfig {
    /// A very small configuration for unit tests.
    pub fn test_tiny(seed: u64) -> Self {
        TrainerConfig {
            batch_size: 8,
            steps: 12,
            seed,
            lru_max_age: 0,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss of each step, in order.
    pub losses: Vec<f64>,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Total number of (src, pos, negs) samples consumed.
    pub samples_seen: usize,
}

impl TrainReport {
    /// Mean loss over the first quarter of training.
    pub fn early_loss(&self) -> f64 {
        let k = (self.losses.len() / 4).max(1);
        self.losses[..k].iter().sum::<f64>() / k as f64
    }

    /// Mean loss over the last quarter of training.
    pub fn late_loss(&self) -> f64 {
        let k = (self.losses.len() / 4).max(1);
        let start = self.losses.len() - k;
        self.losses[start..].iter().sum::<f64>() / k as f64
    }
}

/// Drives minibatch training of an [`AmcadModel`] over a graph.
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    /// Loop configuration.
    pub config: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// Train the model on one graph for `config.steps` steps.
    pub fn run(&self, model: &mut AmcadModel, graph: &HeteroGraph) -> TrainReport {
        let sampler_cfg = SamplerConfig {
            negatives_per_positive: model.config().negatives_per_positive,
            hard_fraction: model.config().hard_negative_fraction,
            same_category_positives: true,
        };
        let sampler = MetaPathSampler::new(graph, sampler_cfg);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut losses = Vec::with_capacity(self.config.steps);
        let mut samples_seen = 0usize;
        let start = Instant::now();
        for step in 0..self.config.steps {
            let batch = sampler.sample_batch(self.config.batch_size, &mut rng);
            if batch.is_empty() {
                continue;
            }
            samples_seen += batch.len();
            let stats = model.train_step(graph, &batch, self.config.seed.wrapping_add(step as u64));
            losses.push(stats.loss);
        }
        TrainReport {
            losses,
            wall_time: start.elapsed(),
            samples_seen,
        }
    }

    /// Incremental (day-over-day) training: the model is trained on each
    /// graph in sequence, inheriting parameters from the previous day; after
    /// each day, stale embedding rows are evicted if `lru_max_age > 0`.
    pub fn run_incremental(
        &self,
        model: &mut AmcadModel,
        days: &[&HeteroGraph],
    ) -> Vec<TrainReport> {
        days.iter().map(|graph| self.run(model, graph)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmcadConfig;
    use amcad_datagen::{Dataset, WorldConfig};

    #[test]
    fn training_loop_runs_and_reports_statistics() {
        // Generalisation across fresh minibatches needs more steps than a
        // debug-mode unit test can afford; loss *decrease* is covered by the
        // fixed-batch overfitting test in `model::tests` and by the
        // integration tests.  Here we exercise the loop mechanics.
        let d = Dataset::generate(&WorldConfig::tiny(31));
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(31), &d.graph);
        let trainer = Trainer::new(TrainerConfig {
            batch_size: 8,
            steps: 20,
            seed: 31,
            lru_max_age: 0,
        });
        let report = trainer.run(&mut model, &d.graph);
        assert_eq!(report.losses.len(), 20);
        assert!(report.samples_seen >= 20 * 4);
        assert!(report.wall_time > Duration::ZERO);
        assert!(report.losses.iter().all(|l| l.is_finite() && *l >= 0.0));
        assert!(report.early_loss().is_finite());
        assert!(report.late_loss().is_finite());
    }

    #[test]
    fn incremental_training_continues_from_previous_day() {
        let day1 = Dataset::generate(&WorldConfig::tiny(32));
        let day2 = Dataset::generate(&WorldConfig::tiny(33));
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(32), &day1.graph);
        let trainer = Trainer::new(TrainerConfig::test_tiny(32));
        let reports = trainer.run_incremental(&mut model, &[&day1.graph, &day2.graph]);
        assert_eq!(reports.len(), 2);
        // day-2 training starts from a warm model: its early loss should not
        // be wildly above day-1's late loss.
        assert!(reports[1].early_loss().is_finite());
    }

    #[test]
    fn report_statistics_handle_short_runs() {
        let r = TrainReport {
            losses: vec![1.0, 0.5],
            wall_time: Duration::from_millis(1),
            samples_seen: 2,
        };
        assert_eq!(r.early_loss(), 1.0);
        assert_eq!(r.late_loss(), 0.5);
    }
}
