//! Exporting trained embeddings for index construction and evaluation.
//!
//! Online serving never runs the model: the paper precomputes, for every
//! node, its projection into each edge-level mixed-curvature space together
//! with its node-level attention weights, and ships them to the MNN index
//! builder (Section IV-C.1; the weights "can be pre-calculated before
//! performing MNN retrieval").  [`ModelExport`] is exactly that artefact:
//! per relation kind a [`RelationSpace`] holding projected points, attention
//! weights and the edge-space product manifold, plus the raw node-level
//! embeddings used for the Fig. 7 visualisation.

use std::collections::HashMap;

use amcad_graph::{HeteroGraph, NodeId, NodeType};
use amcad_manifold::{ProductManifold, SubspaceSpec};

use crate::model::AmcadModel;
use crate::relation::RelationKind;

/// Anything that can score a (source, target) node pair — implemented by the
/// AMCAD export and by the walk-based baselines so the evaluation harness
/// can treat them uniformly.  Higher scores mean "more related".
pub trait PairScorer {
    /// Relatedness score of the pair (higher = more related).
    fn score_pair(&self, src: NodeId, dst: NodeId) -> f64;

    /// Name used in experiment reports.
    fn scorer_name(&self) -> &str;
}

/// Projected embeddings and precomputed attention weights of one edge-level
/// mixed-curvature space.
#[derive(Debug, Clone)]
pub struct RelationSpace {
    /// Which relation this space serves.
    pub kind: RelationKind,
    /// The edge-space product manifold (curvatures κ_{m,r}).
    pub manifold: ProductManifold,
    /// Projected point per node (concatenated subspace coordinates).
    pub points: HashMap<NodeId, Vec<f64>>,
    /// Node-level attention weights `w'(x)` per node (length M).
    pub weights: HashMap<NodeId, Vec<f64>>,
}

impl RelationSpace {
    /// Attention-weighted mixed-curvature distance between two nodes of this
    /// space (Eq. 14 with `w = w'(x) + w'(y)`); `None` if either node is not
    /// present.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let pa = self.points.get(&a)?;
        let pb = self.points.get(&b)?;
        let wa = self.weights.get(&a)?;
        let wb = self.weights.get(&b)?;
        let w: Vec<f64> = wa.iter().zip(wb).map(|(x, y)| x + y).collect();
        Some(self.manifold.weighted_distance(pa, pb, &w))
    }

    /// Number of nodes exported into this space.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Node-level embeddings of one node type (used for visualisation and
/// reporting what space each subspace converged to).
#[derive(Debug, Clone)]
pub struct NodeLevelSpace {
    /// The node-level product manifold for this node type (curvatures
    /// κ_{m,t}).
    pub manifold: ProductManifold,
    /// Concatenated subspace coordinates per node.
    pub points: HashMap<NodeId, Vec<f64>>,
}

/// The full export of a trained model.
#[derive(Debug, Clone)]
pub struct ModelExport {
    /// Model name (copied from the configuration).
    pub name: String,
    /// One projected space per relation kind.
    pub spaces: HashMap<RelationKind, RelationSpace>,
    /// Node-level embeddings per node type.
    pub node_level: HashMap<NodeType, NodeLevelSpace>,
    /// Node type per node id (for dispatching pairs to relation spaces).
    pub node_types: Vec<NodeType>,
}

impl ModelExport {
    /// The relation space serving a (src, dst) node-type pair.
    pub fn space_for(&self, src: NodeId, dst: NodeId) -> Option<&RelationSpace> {
        let ts = *self.node_types.get(src.index())?;
        let td = *self.node_types.get(dst.index())?;
        let kind = RelationKind::between(ts, td)?;
        self.spaces.get(&kind)
    }

    /// Mixed-curvature distance between two nodes (dispatched by node type).
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        self.space_for(src, dst)?.distance(src, dst)
    }
}

impl PairScorer for ModelExport {
    fn score_pair(&self, src: NodeId, dst: NodeId) -> f64 {
        match self.distance(src, dst) {
            Some(d) => -d,
            None => f64::NEG_INFINITY,
        }
    }

    fn scorer_name(&self) -> &str {
        &self.name
    }
}

impl AmcadModel {
    /// Export projected embeddings and attention weights for every node and
    /// every relation space, plus node-level embeddings per type.
    ///
    /// `seed` controls the GCN neighbour sampling used during the forward
    /// pass (export is deterministic given the seed).
    pub fn export(&mut self, graph: &HeteroGraph, seed: u64) -> ModelExport {
        let m_count = self.config().num_subspaces();
        let d = self.config().subspace_dim();
        let name = self.config().name.clone();

        // Edge-space manifolds from the trained curvatures.
        let mut spaces: HashMap<RelationKind, RelationSpace> = RelationKind::ALL
            .iter()
            .map(|&kind| {
                let specs: Vec<SubspaceSpec> = (0..m_count)
                    .map(|m| SubspaceSpec::new(d, self.edge_kappa(m, kind)))
                    .collect();
                (
                    kind,
                    RelationSpace {
                        kind,
                        manifold: ProductManifold::new(specs),
                        points: HashMap::new(),
                        weights: HashMap::new(),
                    },
                )
            })
            .collect();

        // Node-level manifolds per type.
        let mut node_level: HashMap<NodeType, NodeLevelSpace> = NodeType::ALL
            .iter()
            .map(|&t| {
                let specs: Vec<SubspaceSpec> = (0..m_count)
                    .map(|m| SubspaceSpec::new(d, self.node_kappa(m, t)))
                    .collect();
                (
                    t,
                    NodeLevelSpace {
                        manifold: ProductManifold::new(specs),
                        points: HashMap::new(),
                    },
                )
            })
            .collect();

        let node_types: Vec<NodeType> = graph.all_nodes().map(|n| graph.node_type(n)).collect();

        // Which relation spaces each node type participates in.
        let kinds_for = |t: NodeType| -> Vec<RelationKind> {
            RelationKind::ALL
                .iter()
                .copied()
                .filter(|k| {
                    let (a, b) = k.node_types();
                    a == t || b == t
                })
                .collect()
        };

        for node in graph.all_nodes() {
            let t = graph.node_type(node);
            let mut ctx = self.begin_batch(seed ^ (node.0 as u64).wrapping_mul(0x517c_c1b7));
            let encoded = self.encode_node(&mut ctx, graph, node);

            // node-level concatenated coordinates
            let mut node_coords = Vec::with_capacity(m_count * d);
            for &p in &encoded.subspaces {
                node_coords.extend_from_slice(&ctx.tape.value(p).data);
            }
            node_level
                .get_mut(&t)
                .expect("all node types present")
                .points
                .insert(node, node_coords);

            // per relevant relation space: projection + attention weights
            for kind in kinds_for(t) {
                let projected = self.project_to_edge_space(&mut ctx, &encoded, kind);
                let weights_var = self.attention_weights(&mut ctx, t, &projected);
                let mut coords = Vec::with_capacity(m_count * d);
                for &p in &projected {
                    coords.extend_from_slice(&ctx.tape.value(p).data);
                }
                let weights = ctx.tape.value(weights_var).data.clone();
                let space = spaces.get_mut(&kind).expect("all kinds present");
                space.points.insert(node, coords);
                space.weights.insert(node, weights);
            }
        }

        ModelExport {
            name,
            spaces,
            node_level,
            node_types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmcadConfig;
    use amcad_datagen::{Dataset, WorldConfig};

    fn exported() -> (Dataset, ModelExport) {
        let d = Dataset::generate(&WorldConfig::tiny(21));
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(5), &d.graph);
        let export = model.export(&d.graph, 3);
        (d, export)
    }

    #[test]
    fn export_covers_every_node_in_its_relation_spaces() {
        let (d, export) = exported();
        let qq = &export.spaces[&RelationKind::QueryQuery];
        assert_eq!(qq.len(), d.query_nodes.len());
        let qi = &export.spaces[&RelationKind::QueryItem];
        assert_eq!(qi.len(), d.query_nodes.len() + d.item_nodes.len());
        let ia = &export.spaces[&RelationKind::ItemAd];
        assert_eq!(ia.len(), d.item_nodes.len() + d.ad_nodes.len());
        assert!(!qq.is_empty());
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let (_d, export) = exported();
        for space in export.spaces.values() {
            for w in space.weights.values() {
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "weights must sum to 1: {w:?}");
                assert!(w.iter().all(|x| *x >= 0.0));
            }
        }
    }

    #[test]
    fn distances_are_finite_symmetric_and_zero_on_self() {
        let (d, export) = exported();
        let q = d.query_nodes[0];
        let i = d.item_nodes[0];
        let dist = export.distance(q, i).unwrap();
        let dist_rev = export.distance(i, q).unwrap();
        assert!(dist.is_finite() && dist >= 0.0);
        assert!((dist - dist_rev).abs() < 1e-9);
        assert!(export.distance(q, q).unwrap().abs() < 1e-9);
    }

    #[test]
    fn pair_scorer_orders_by_negative_distance() {
        let (d, export) = exported();
        let q = d.query_nodes[0];
        let i0 = d.item_nodes[0];
        let i1 = d.item_nodes[1];
        let s0 = export.score_pair(q, i0);
        let s1 = export.score_pair(q, i1);
        let d0 = export.distance(q, i0).unwrap();
        let d1 = export.distance(q, i1).unwrap();
        assert_eq!(s0 > s1, d0 < d1);
        assert_eq!(export.scorer_name(), "AMCAD (test)");
    }

    #[test]
    fn ad_ad_pairs_have_no_space() {
        let (d, export) = exported();
        assert!(export.distance(d.ad_nodes[0], d.ad_nodes[1]).is_none());
        assert_eq!(
            export.score_pair(d.ad_nodes[0], d.ad_nodes[1]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn node_level_export_has_per_type_manifolds() {
        let (d, export) = exported();
        for t in NodeType::ALL {
            let space = &export.node_level[&t];
            assert_eq!(space.manifold.num_subspaces(), 2);
            assert!(!space.points.is_empty());
        }
        let q_space = &export.node_level[&NodeType::Query];
        assert_eq!(q_space.points.len(), d.query_nodes.len());
        for p in q_space.points.values() {
            assert_eq!(p.len(), q_space.manifold.total_dim());
            assert!(p.iter().all(|x| x.is_finite()));
        }
    }
}
