//! # amcad-autodiff
//!
//! A compact reverse-mode automatic-differentiation engine plus the
//! parameter store / AdaGrad optimiser used to train the AMCAD model.
//!
//! The original system trains on Alibaba's XDL parameter-server framework;
//! all trainable quantities (feature embeddings, GCN weights, attention
//! projections and the per-layer curvatures) live in tangent space and are
//! optimised with vanilla AdaGrad, gradient clipping and learning-rate
//! warm-up.  This crate reproduces that training substrate:
//!
//! * [`Tensor`] — dense row-major `f64` matrices,
//! * [`Tape`] / [`Var`] — the computation graph with reverse-mode
//!   [`Tape::backward`],
//! * [`manifold_ops`] — differentiable κ-stereographic operations (Möbius
//!   addition, exp/log maps, geodesic distance, κ-linear layers and the
//!   Fermi–Dirac similarity), property-tested against `amcad-manifold`,
//! * [`ParamStore`] — dense parameters + sparse embedding tables with
//!   AdaGrad, clipping, warm-up and the LRU feature-exit mechanism.

pub mod manifold_ops;
pub mod params;
pub mod tape;
pub mod tensor;

pub use params::{Batch, DenseId, OptimizerConfig, ParamStore, TableId};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
