//! Reverse-mode automatic differentiation tape.
//!
//! The AMCAD model (node encoder, GCN context encoding, space fusion,
//! edge-level scorer and losses) is expressed as a computation graph over
//! [`Tensor`] values.  Every operation appends a node to the [`Tape`]; a
//! single call to [`Tape::backward`] then accumulates gradients for every
//! node reachable from the scalar loss, including the trainable curvature
//! scalars that flow through the `TanKappa` / `AtanKappa` primitives.
//!
//! All parameters of the paper's model live in tangent (Euclidean) space —
//! the authors train them with vanilla AdaGrad — so no Riemannian optimiser
//! is required: plain reverse-mode gradients are exactly what the original
//! system computes.

use amcad_manifold::scalar as ms;

use crate::tensor::Tensor;

/// Handle to a node of the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Raw index of the node (stable for the lifetime of the tape).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Operations recorded on the tape.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (input, constant or parameter copy).
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    Neg(Var),
    /// Multiply by a compile-time constant.
    Scale(Var, f64),
    /// Add a compile-time constant (the constant is kept for Debug output).
    AddConst(Var, #[allow(dead_code)] f64),
    /// Matrix product `(r×k)·(k×c)`.
    Matmul(Var, Var),
    Sum(Var),
    Mean(Var),
    Dot(Var, Var),
    /// Concatenate row vectors along columns.
    ConcatCols(Vec<Var>),
    /// Columns `[start, end)` of a row vector.
    SliceCols(Var, usize, usize),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    Sqrt(Var),
    Square(Var),
    /// Row-wise softmax of a row vector.
    Softmax(Var),
    /// Broadcast: tensor op scalar-variable.
    MulScalar(Var, Var),
    DivScalar(Var, Var),
    AddScalar(Var, Var),
    /// Elementwise `tan_κ(x)` with a scalar curvature variable.
    TanKappa(Var, Var),
    /// Elementwise `tan⁻¹_κ(x)` with a scalar curvature variable.
    AtanKappa(Var, Var),
    /// Squared Euclidean norm of all elements (scalar output).
    NormSq(Var),
    /// Clamp each element to `max(x, c)`; gradient passes where unclamped.
    ClampMin(Var, f64),
    /// Clamp each element to `min(x, c)`; gradient passes where unclamped.
    ClampMax(Var, f64),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// Reverse-mode autodiff tape.
///
/// Typical usage:
/// ```
/// use amcad_autodiff::{Tape, Tensor};
/// let mut t = Tape::new();
/// let x = t.leaf(Tensor::row(vec![1.0, 2.0]));
/// let w = t.leaf(Tensor::new(2, 1, vec![0.5, -0.25]));
/// let y = t.matmul(x, w);
/// let loss = t.sum(y);
/// let grads = t.backward(loss);
/// assert_eq!(grads.wrt(x).unwrap().data, vec![0.5, -0.25]);
/// ```
pub struct Tape {
    nodes: Vec<Node>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it received any.
    pub fn wrt(&self, var: Var) -> Option<&Tensor> {
        self.grads[var.0].as_ref()
    }

    /// Gradient of the loss with respect to `var`, or a zero tensor of the
    /// given shape when the variable did not influence the loss.
    pub fn wrt_or_zero(&self, var: Var, rows: usize, cols: usize) -> Tensor {
        self.grads[var.0]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(rows, cols))
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Tape {
            nodes: Vec::with_capacity(256),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a variable.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Tensor) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Record a leaf (input / parameter) value.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Record a scalar leaf.
    pub fn scalar(&mut self, v: f64) -> Var {
        self.leaf(Tensor::scalar(v))
    }

    /// Record a row-vector leaf.
    pub fn row(&mut self, data: Vec<f64>) -> Var {
        self.leaf(Tensor::row(data))
    }

    // ----- elementwise binary -----

    /// Elementwise addition of same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise subtraction of same-shaped tensors.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise multiplication of same-shaped tensors.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Elementwise division of same-shaped tensors.
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).zip(self.value(b), |x, y| x / y);
        self.push(Op::Div(a, b), v)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| -x);
        self.push(Op::Neg(a), v)
    }

    /// Multiply every element by a constant.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// Add a constant to every element.
    pub fn add_const(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddConst(a, c), v)
    }

    // ----- broadcast with a scalar variable -----

    /// Multiply a tensor by a scalar variable (broadcast).
    pub fn mul_scalar(&mut self, a: Var, s: Var) -> Var {
        let sv = self.value(s).scalar_value();
        let v = self.value(a).map(|x| x * sv);
        self.push(Op::MulScalar(a, s), v)
    }

    /// Divide a tensor by a scalar variable (broadcast).
    pub fn div_scalar(&mut self, a: Var, s: Var) -> Var {
        let sv = self.value(s).scalar_value();
        let v = self.value(a).map(|x| x / sv);
        self.push(Op::DivScalar(a, s), v)
    }

    /// Add a scalar variable to every element (broadcast).
    pub fn add_scalar(&mut self, a: Var, s: Var) -> Var {
        let sv = self.value(s).scalar_value();
        let v = self.value(a).map(|x| x + sv);
        self.push(Op::AddScalar(a, s), v)
    }

    // ----- linear algebra -----

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::Matmul(a, b), v)
    }

    /// Dot product of two same-shaped tensors (scalar output).
    pub fn dot(&mut self, a: Var, b: Var) -> Var {
        let v = self
            .value(a)
            .data
            .iter()
            .zip(&self.value(b).data)
            .map(|(x, y)| x * y)
            .sum();
        self.push(Op::Dot(a, b), Tensor::scalar(v))
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let v = self.value(a).sum();
        self.push(Op::Sum(a), Tensor::scalar(v))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let v = t.sum() / t.len() as f64;
        self.push(Op::Mean(a), Tensor::scalar(v))
    }

    /// Squared Euclidean norm of all elements (scalar output).
    pub fn norm_sq(&mut self, a: Var) -> Var {
        let v = self.value(a).data.iter().map(|x| x * x).sum();
        self.push(Op::NormSq(a), Tensor::scalar(v))
    }

    /// Euclidean norm, numerically guarded: `sqrt(‖a‖² + eps)`.
    pub fn norm(&mut self, a: Var, eps: f64) -> Var {
        let ns = self.norm_sq(a);
        let guarded = self.add_const(ns, eps);
        self.sqrt(guarded)
    }

    /// Concatenate row vectors along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let mut data = Vec::new();
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rows, 1, "concat_cols expects row vectors");
            data.extend_from_slice(&t.data);
        }
        self.push(Op::ConcatCols(parts.to_vec()), Tensor::row(data))
    }

    /// Columns `[start, end)` of a row vector.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows, 1, "slice_cols expects a row vector");
        assert!(start <= end && end <= t.cols);
        let data = t.data[start..end].to_vec();
        self.push(Op::SliceCols(a, start, end), Tensor::row(data))
    }

    // ----- nonlinearities -----

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.push(Op::Exp(a), v)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(1e-300).ln());
        self.push(Op::Ln(a), v)
    }

    /// Elementwise square root (inputs are clamped at 0).
    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0).sqrt());
        self.push(Op::Sqrt(a), v)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x * x);
        self.push(Op::Square(a), v)
    }

    /// Row-vector softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let t = self.value(a);
        assert_eq!(t.rows, 1, "softmax expects a row vector");
        let max = t.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = t.data.iter().map(|x| (x - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        let v = Tensor::row(exps.into_iter().map(|e| e / total).collect());
        self.push(Op::Softmax(a), v)
    }

    /// Elementwise `max(x, c)`.
    pub fn clamp_min(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).map(|x| x.max(c));
        self.push(Op::ClampMin(a, c), v)
    }

    /// Elementwise `min(x, c)`.
    pub fn clamp_max(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).map(|x| x.min(c));
        self.push(Op::ClampMax(a, c), v)
    }

    // ----- curvature trigonometry primitives -----

    /// Elementwise `tan_κ(x)` where `kappa` is a scalar variable; gradients
    /// flow to both `x` and `κ` (the "adaptive" part of AMCAD).
    pub fn tan_kappa(&mut self, x: Var, kappa: Var) -> Var {
        let k = self.value(kappa).scalar_value();
        let v = self.value(x).map(|xi| ms::tan_kappa(xi, k));
        self.push(Op::TanKappa(x, kappa), v)
    }

    /// Elementwise `tan⁻¹_κ(x)` where `kappa` is a scalar variable.
    pub fn atan_kappa(&mut self, x: Var, kappa: Var) -> Var {
        let k = self.value(kappa).scalar_value();
        let v = self.value(x).map(|xi| ms::atan_kappa(xi, k));
        self.push(Op::AtanKappa(x, kappa), v)
    }

    // ----- backward -----

    /// Run reverse-mode accumulation from the scalar `loss` node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert!(
            self.value(loss).is_scalar(),
            "backward requires a scalar loss node"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for idx in (0..=loss.0).rev() {
            let Some(grad) = grads[idx].clone() else {
                continue;
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    self.accumulate(&mut grads, *a, grad.clone());
                    self.accumulate(&mut grads, *b, grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(&mut grads, *a, grad.clone());
                    self.accumulate(&mut grads, *b, grad.map(|g| -g));
                }
                Op::Mul(a, b) => {
                    let ga = grad.zip(self.value(*b), |g, bv| g * bv);
                    let gb = grad.zip(self.value(*a), |g, av| g * av);
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *b, gb);
                }
                Op::Div(a, b) => {
                    let bv = self.value(*b);
                    let av = self.value(*a);
                    let ga = grad.zip(bv, |g, b| g / b);
                    let gb_data: Vec<f64> = grad
                        .data
                        .iter()
                        .zip(&av.data)
                        .zip(&bv.data)
                        .map(|((g, a), b)| -g * a / (b * b))
                        .collect();
                    let gb = Tensor::new(grad.rows, grad.cols, gb_data);
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *b, gb);
                }
                Op::Neg(a) => self.accumulate(&mut grads, *a, grad.map(|g| -g)),
                Op::Scale(a, c) => {
                    let c = *c;
                    self.accumulate(&mut grads, *a, grad.map(|g| g * c));
                }
                Op::AddConst(a, _) => self.accumulate(&mut grads, *a, grad),
                Op::Matmul(a, b) => {
                    let av = self.value(*a);
                    let bv = self.value(*b);
                    let ga = grad.matmul(&bv.transpose());
                    let gb = av.transpose().matmul(&grad);
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *b, gb);
                }
                Op::Sum(a) => {
                    let g = grad.scalar_value();
                    let av = self.value(*a);
                    self.accumulate(
                        &mut grads,
                        *a,
                        Tensor::new(av.rows, av.cols, vec![g; av.len()]),
                    );
                }
                Op::Mean(a) => {
                    let av = self.value(*a);
                    let g = grad.scalar_value() / av.len() as f64;
                    self.accumulate(
                        &mut grads,
                        *a,
                        Tensor::new(av.rows, av.cols, vec![g; av.len()]),
                    );
                }
                Op::Dot(a, b) => {
                    let g = grad.scalar_value();
                    let ga = self.value(*b).map(|bv| g * bv);
                    let gb = self.value(*a).map(|av| g * av);
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *b, gb);
                }
                Op::NormSq(a) => {
                    let g = grad.scalar_value();
                    let ga = self.value(*a).map(|av| 2.0 * g * av);
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let len = self.value(p).cols;
                        let slice = grad.data[offset..offset + len].to_vec();
                        self.accumulate(&mut grads, p, Tensor::row(slice));
                        offset += len;
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    let av = self.value(*a);
                    let mut full = Tensor::zeros(av.rows, av.cols);
                    for (i, g) in grad.data.iter().enumerate() {
                        full.data[start + i] = *g;
                    }
                    self.accumulate(&mut grads, *a, full);
                }
                Op::Tanh(a) => {
                    let ga = grad.zip(&node.value, |g, y| g * (1.0 - y * y));
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let ga = grad.zip(&node.value, |g, y| g * y * (1.0 - y));
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Relu(a) => {
                    let ga = grad.zip(self.value(*a), |g, x| if x > 0.0 { g } else { 0.0 });
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Exp(a) => {
                    let ga = grad.zip(&node.value, |g, y| g * y);
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Ln(a) => {
                    let ga = grad.zip(self.value(*a), |g, x| g / x.max(1e-300));
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Sqrt(a) => {
                    let ga = grad.zip(&node.value, |g, y| g / (2.0 * y.max(1e-12)));
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Square(a) => {
                    let ga = grad.zip(self.value(*a), |g, x| 2.0 * g * x);
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::Softmax(a) => {
                    // dx = y ⊙ (g - ⟨g, y⟩)
                    let y = &node.value;
                    let inner: f64 = grad.data.iter().zip(&y.data).map(|(g, yi)| g * yi).sum();
                    let ga = Tensor::row(
                        grad.data
                            .iter()
                            .zip(&y.data)
                            .map(|(g, yi)| yi * (g - inner))
                            .collect(),
                    );
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::ClampMin(a, c) => {
                    let c = *c;
                    let ga = grad.zip(self.value(*a), |g, x| if x > c { g } else { 0.0 });
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::ClampMax(a, c) => {
                    let c = *c;
                    let ga = grad.zip(self.value(*a), |g, x| if x < c { g } else { 0.0 });
                    self.accumulate(&mut grads, *a, ga);
                }
                Op::MulScalar(a, s) => {
                    let sv = self.value(*s).scalar_value();
                    let ga = grad.map(|g| g * sv);
                    let gs: f64 = grad
                        .data
                        .iter()
                        .zip(&self.value(*a).data)
                        .map(|(g, a)| g * a)
                        .sum();
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *s, Tensor::scalar(gs));
                }
                Op::DivScalar(a, s) => {
                    let sv = self.value(*s).scalar_value();
                    let ga = grad.map(|g| g / sv);
                    let gs: f64 = grad
                        .data
                        .iter()
                        .zip(&self.value(*a).data)
                        .map(|(g, a)| -g * a / (sv * sv))
                        .sum();
                    self.accumulate(&mut grads, *a, ga);
                    self.accumulate(&mut grads, *s, Tensor::scalar(gs));
                }
                Op::AddScalar(a, s) => {
                    let gs: f64 = grad.data.iter().sum();
                    self.accumulate(&mut grads, *a, grad.clone());
                    self.accumulate(&mut grads, *s, Tensor::scalar(gs));
                }
                Op::TanKappa(x, kappa) => {
                    let k = self.value(*kappa).scalar_value();
                    let xv = self.value(*x);
                    let gx = grad.zip(xv, |g, xi| g * ms::tan_kappa_dx(xi, k));
                    let gk: f64 = grad
                        .data
                        .iter()
                        .zip(&xv.data)
                        .map(|(g, xi)| g * ms::tan_kappa_dkappa(*xi, k))
                        .sum();
                    self.accumulate(&mut grads, *x, gx);
                    self.accumulate(&mut grads, *kappa, Tensor::scalar(gk));
                }
                Op::AtanKappa(x, kappa) => {
                    let k = self.value(*kappa).scalar_value();
                    let xv = self.value(*x);
                    let gx = grad.zip(xv, |g, xi| g * ms::atan_kappa_dy(xi, k));
                    let gk: f64 = grad
                        .data
                        .iter()
                        .zip(&xv.data)
                        .map(|(g, xi)| g * ms::atan_kappa_dkappa(*xi, k))
                        .sum();
                    self.accumulate(&mut grads, *x, gx);
                    self.accumulate(&mut grads, *kappa, Tensor::scalar(gk));
                }
            }
        }

        Gradients { grads }
    }

    fn accumulate(&self, grads: &mut [Option<Tensor>], var: Var, incoming: Tensor) {
        match &mut grads[var.0] {
            Some(existing) => {
                debug_assert!(existing.same_shape(&incoming));
                for (e, i) in existing.data.iter_mut().zip(&incoming.data) {
                    *e += i;
                }
            }
            slot @ None => *slot = Some(incoming),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check helper: rebuilds the graph through
    /// `f` with one perturbed input element and compares against the
    /// analytic gradient.
    fn grad_check<F>(inputs: &[Vec<f64>], f: F)
    where
        F: Fn(&mut Tape, &[Var]) -> Var,
    {
        let build = |vals: &[Vec<f64>]| -> (Tape, Vec<Var>, Var) {
            let mut t = Tape::new();
            let vars: Vec<Var> = vals.iter().map(|v| t.row(v.clone())).collect();
            let out = f(&mut t, &vars);
            (t, vars, out)
        };
        let (tape, vars, out) = build(inputs);
        let grads = tape.backward(out);
        let h = 1e-6;
        for (i, input) in inputs.iter().enumerate() {
            let analytic = grads.wrt_or_zero(vars[i], 1, input.len());
            for j in 0..input.len() {
                let mut plus = inputs.to_vec();
                plus[i][j] += h;
                let mut minus = inputs.to_vec();
                minus[i][j] -= h;
                let (tp, _, op) = build(&plus);
                let (tm, _, om) = build(&minus);
                let fd = (tp.value(op).scalar_value() - tm.value(om).scalar_value()) / (2.0 * h);
                let a = analytic.data[j];
                assert!(
                    (a - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                    "input {i} elem {j}: analytic {a} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn add_mul_sum_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0], vec![1.5, 0.3, -0.7]], |t, v| {
            let s = t.add(v[0], v[1]);
            let p = t.mul(s, v[0]);
            t.sum(p)
        });
    }

    #[test]
    fn matmul_gradients() {
        // treat the second input as a 3x2 matrix
        let inputs = vec![vec![0.5, -1.2, 2.0], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]];
        let build = |vals: &[Vec<f64>]| -> (Tape, Vec<Var>, Var) {
            let mut t = Tape::new();
            let x = t.row(vals[0].clone());
            let w = t.leaf(Tensor::new(3, 2, vals[1].clone()));
            let y = t.matmul(x, w);
            let out = t.sum(y);
            (t, vec![x, w], out)
        };
        let (tape, vars, out) = build(&inputs);
        let grads = tape.backward(out);
        let h = 1e-6;
        for (i, input) in inputs.iter().enumerate() {
            for j in 0..input.len() {
                let mut plus = inputs.clone();
                plus[i][j] += h;
                let mut minus = inputs.clone();
                minus[i][j] -= h;
                let (tp, _, op) = build(&plus);
                let (tm, _, om) = build(&minus);
                let fd = (tp.value(op).scalar_value() - tm.value(om).scalar_value()) / (2.0 * h);
                let a = grads.wrt(vars[i]).unwrap().data[j];
                assert!((a - fd).abs() < 1e-5, "{i}/{j}: {a} vs {fd}");
            }
        }
    }

    #[test]
    fn nonlinearity_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0]], |t, v| {
            let a = t.tanh(v[0]);
            let b = t.sigmoid(a);
            let c = t.relu(b);
            let d = t.exp(c);
            t.sum(d)
        });
    }

    #[test]
    fn softmax_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0, 0.1]], |t, v| {
            let s = t.softmax(v[0]);
            let w = t.row(vec![1.0, -2.0, 0.5, 3.0]);
            let p = t.mul(s, w);
            t.sum(p)
        });
    }

    #[test]
    fn norm_and_sqrt_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0]], |t, v| t.norm(v[0], 1e-12));
    }

    #[test]
    fn dot_and_div_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0], vec![1.5, 0.3, -0.7]], |t, v| {
            let d = t.dot(v[0], v[1]);
            let q = t.div(v[0], v[1]);
            let s = t.sum(q);
            t.add(d, s)
        });
    }

    #[test]
    fn concat_slice_gradients() {
        grad_check(&[vec![0.5, -1.2], vec![1.5, 0.3, -0.7]], |t, v| {
            let c = t.concat_cols(&[v[0], v[1]]);
            let s = t.slice_cols(c, 1, 4);
            let sq = t.square(s);
            t.sum(sq)
        });
    }

    #[test]
    fn scalar_broadcast_gradients() {
        grad_check(&[vec![0.5, -1.2, 2.0], vec![0.7]], |t, v| {
            let m = t.mul_scalar(v[0], v[1]);
            let d = t.div_scalar(m, v[1]);
            let a = t.add_scalar(d, v[1]);
            t.sum(a)
        });
    }

    #[test]
    fn tan_kappa_gradients_flow_to_both_arguments() {
        for kappa in [-0.8, -0.1, 0.3, 1.1] {
            grad_check(&[vec![0.2, -0.3, 0.4], vec![kappa]], |t, v| {
                let y = t.tan_kappa(v[0], v[1]);
                let z = t.atan_kappa(y, v[1]);
                let w = t.square(z);
                t.sum(w)
            });
        }
    }

    #[test]
    fn clamp_gradients_mask_out_of_range() {
        grad_check(&[vec![0.5, -1.2, 2.0]], |t, v| {
            let lo = t.clamp_min(v[0], -1.0);
            let hi = t.clamp_max(lo, 1.0);
            let sq = t.square(hi);
            t.sum(sq)
        });
    }

    #[test]
    fn unused_variable_has_no_gradient() {
        let mut t = Tape::new();
        let x = t.row(vec![1.0, 2.0]);
        let y = t.row(vec![3.0, 4.0]);
        let loss = t.sum(x);
        let grads = t.backward(loss);
        assert!(grads.wrt(y).is_none());
        assert_eq!(grads.wrt_or_zero(y, 1, 2).data, vec![0.0, 0.0]);
    }

    #[test]
    fn gradient_accumulates_over_shared_subexpressions() {
        let mut t = Tape::new();
        let x = t.row(vec![2.0]);
        let y = t.mul(x, x); // x², dy/dx = 2x = 4
        let loss = t.sum(y);
        let grads = t.backward(loss);
        assert!((grads.wrt(x).unwrap().data[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn backward_requires_scalar_loss() {
        let mut t = Tape::new();
        let x = t.row(vec![1.0, 2.0]);
        let y = t.scale(x, 2.0);
        t.backward(y);
    }
}
