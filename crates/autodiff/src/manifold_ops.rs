//! Differentiable κ-stereographic operations, composed from tape primitives.
//!
//! These mirror `amcad_manifold::ops` (the plain-`f64` reference
//! implementations) but operate on tape [`Var`]s so gradients flow through
//! the curved geometry — including into the trainable curvature scalars.
//! Property tests verify the forward values against the reference crate and
//! gradient checks verify the backward pass.

use crate::tape::{Tape, Var};

/// Numerical guard added under square roots of norms.
const NORM_EPS: f64 = 1e-12;

/// Möbius addition `x ⊕_κ y` on row-vector variables.
pub fn mobius_add(t: &mut Tape, x: Var, y: Var, kappa: Var) -> Var {
    let xy = t.dot(x, y);
    let x2 = t.norm_sq(x);
    let y2 = t.norm_sq(y);

    // num_x = 1 - 2κ⟨x,y⟩ - κ‖y‖²
    let two_k_xy = {
        let k_xy = t.mul(kappa, xy);
        t.scale(k_xy, 2.0)
    };
    let k_y2 = t.mul(kappa, y2);
    let num_x_coeff = {
        let a = t.neg(two_k_xy);
        let b = t.sub(a, k_y2);
        t.add_const(b, 1.0)
    };
    // num_y = 1 + κ‖x‖²
    let k_x2 = t.mul(kappa, x2);
    let num_y_coeff = t.add_const(k_x2, 1.0);
    // denom = 1 - 2κ⟨x,y⟩ + κ²‖x‖²‖y‖²
    let k2 = t.mul(kappa, kappa);
    let x2y2 = t.mul(x2, y2);
    let k2x2y2 = t.mul(k2, x2y2);
    let denom = {
        let k_xy = t.mul(kappa, xy);
        let two_k_xy = t.scale(k_xy, 2.0);
        let a = t.neg(two_k_xy);
        let b = t.add(a, k2x2y2);
        t.add_const(b, 1.0)
    };

    let term_x = t.mul_scalar(x, num_x_coeff);
    let term_y = t.mul_scalar(y, num_y_coeff);
    let num = t.add(term_x, term_y);
    t.div_scalar(num, denom)
}

/// Exponential map at the origin: `exp^κ_0(v) = tan_κ(‖v‖)·v/‖v‖`.
pub fn exp0(t: &mut Tape, v: Var, kappa: Var) -> Var {
    let n = t.norm(v, NORM_EPS);
    let tn = t.tan_kappa(n, kappa);
    let scale = t.div(tn, n);
    mul_by_scalar_tensor(t, v, scale)
}

/// Logarithmic map at the origin: `log^κ_0(y) = tan⁻¹_κ(‖y‖)·y/‖y‖`.
pub fn log0(t: &mut Tape, y: Var, kappa: Var) -> Var {
    let n = t.norm(y, NORM_EPS);
    let an = t.atan_kappa(n, kappa);
    let scale = t.div(an, n);
    mul_by_scalar_tensor(t, y, scale)
}

/// Geodesic distance `d_κ(x, y) = 2·tan⁻¹_κ(‖-x ⊕_κ y‖)`.
pub fn distance(t: &mut Tape, x: Var, y: Var, kappa: Var) -> Var {
    let neg_x = t.neg(x);
    let w = mobius_add(t, neg_x, y, kappa);
    let n = t.norm(w, NORM_EPS);
    let an = t.atan_kappa(n, kappa);
    t.scale(an, 2.0)
}

/// κ-matrix multiplication `W ⊗_κ x = exp^κ_0(log^κ_0(x)·W)`.
///
/// `x` is a `1 × d_in` row vector and `w` a `d_in × d_out` matrix (the
/// row-vector convention used throughout the model crate).
pub fn kappa_linear(t: &mut Tape, x: Var, w: Var, kappa: Var) -> Var {
    let tangent = log0(t, x, kappa);
    let out = t.matmul(tangent, w);
    exp0(t, out, kappa)
}

/// κ-activation `σ_{κ1→κ2}(x) = exp^{κ2}_0(σ(log^{κ1}_0(x)))` with `tanh`
/// as the Euclidean non-linearity (the choice used by the model crate).
pub fn kappa_activation_tanh(t: &mut Tape, x: Var, kappa_from: Var, kappa_to: Var) -> Var {
    let tangent = log0(t, x, kappa_from);
    let act = t.tanh(tangent);
    exp0(t, act, kappa_to)
}

/// Move a point from curvature `kappa_from` to `kappa_to` without a
/// non-linearity (identity transport through the shared tangent space).
pub fn transport(t: &mut Tape, x: Var, kappa_from: Var, kappa_to: Var) -> Var {
    let tangent = log0(t, x, kappa_from);
    exp0(t, tangent, kappa_to)
}

/// Fermi–Dirac similarity `σ(temp·(radius − d))` used by the triplet loss
/// (Eq. 15 of the paper).
pub fn fermi_dirac(t: &mut Tape, dist: Var, radius: f64, temperature: f64) -> Var {
    let neg_d = t.neg(dist);
    let shifted = t.add_const(neg_d, radius);
    let scaled = t.scale(shifted, temperature);
    t.sigmoid(scaled)
}

/// Multiply a row vector by a `1 × 1` scalar tensor variable.
fn mul_by_scalar_tensor(t: &mut Tape, v: Var, scale: Var) -> Var {
    t.mul_scalar(v, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use amcad_manifold as reference;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn forward_values_match_reference_implementation() {
        let xs = [0.12, -0.2, 0.3];
        let ys = [-0.05, 0.15, 0.22];
        for &kappa in &[-1.0, -0.4, 0.0, 0.5, 1.0] {
            let mut t = Tape::new();
            let x = t.row(xs.to_vec());
            let y = t.row(ys.to_vec());
            let k = t.scalar(kappa);

            let madd = mobius_add(&mut t, x, y, k);
            assert_vec_close(
                &t.value(madd).data,
                &reference::mobius_add(&xs, &ys, kappa),
                1e-9,
            );

            let e = exp0(&mut t, x, k);
            assert_vec_close(
                &t.value(e).data,
                &reference::exp_map_origin(&xs, kappa),
                1e-9,
            );

            let l = log0(&mut t, y, k);
            assert_vec_close(
                &t.value(l).data,
                &reference::log_map_origin(&ys, kappa),
                1e-9,
            );

            let d = distance(&mut t, x, y, k);
            assert_close(
                t.value(d).scalar_value(),
                reference::distance(&xs, &ys, kappa),
                1e-9,
            );
        }
    }

    #[test]
    fn kappa_linear_matches_reference_matmul() {
        let xs = [0.1, -0.05, 0.2];
        let w = [0.3, -0.2, 0.1, 0.4, -0.1, 0.2]; // 3x2 (d_in x d_out), row-major
        for &kappa in &[-0.7, 0.0, 0.7] {
            let mut t = Tape::new();
            let x = t.row(xs.to_vec());
            let wv = t.leaf(Tensor::new(3, 2, w.to_vec()));
            let k = t.scalar(kappa);
            let out = kappa_linear(&mut t, x, wv, k);
            // reference kappa_matmul expects a (rows x cols) matrix applied as M·x
            // with M = Wᵀ (2x3).
            let wt = [0.3, 0.1, -0.1, -0.2, 0.4, 0.2];
            let expected = reference::kappa_matmul(&wt, 2, 3, &xs, kappa);
            assert_vec_close(&t.value(out).data, &expected, 1e-9);
        }
    }

    #[test]
    fn exp0_log0_roundtrip_in_tape() {
        for &kappa in &[-1.0, 0.0, 1.0] {
            let mut t = Tape::new();
            let v = t.row(vec![0.2, -0.1, 0.15]);
            let k = t.scalar(kappa);
            let p = exp0(&mut t, v, k);
            let back = log0(&mut t, p, k);
            assert_vec_close(&t.value(back).data, &t.value(v).data.clone(), 1e-7);
        }
    }

    #[test]
    fn distance_gradient_matches_finite_difference() {
        let base_x = vec![0.15, -0.1, 0.2];
        let base_y = vec![-0.05, 0.25, 0.1];
        for &kappa in &[-0.8, -0.2, 0.0, 0.4, 0.9] {
            let eval = |xv: &[f64], yv: &[f64], kv: f64| -> f64 {
                let mut t = Tape::new();
                let x = t.row(xv.to_vec());
                let y = t.row(yv.to_vec());
                let k = t.scalar(kv);
                let d = distance(&mut t, x, y, k);
                t.value(d).scalar_value()
            };
            let mut t = Tape::new();
            let x = t.row(base_x.clone());
            let y = t.row(base_y.clone());
            let k = t.scalar(kappa);
            let d = distance(&mut t, x, y, k);
            let grads = t.backward(d);
            let h = 1e-6;

            // gradient w.r.t. x
            let gx = grads.wrt(x).unwrap();
            for j in 0..base_x.len() {
                let mut plus = base_x.clone();
                plus[j] += h;
                let mut minus = base_x.clone();
                minus[j] -= h;
                let fd = (eval(&plus, &base_y, kappa) - eval(&minus, &base_y, kappa)) / (2.0 * h);
                assert!((gx.data[j] - fd).abs() < 1e-4, "kappa {kappa} dx[{j}]");
            }
            // gradient w.r.t. κ (the adaptive-curvature path)
            let gk = grads.wrt(k).unwrap().scalar_value();
            let fd =
                (eval(&base_x, &base_y, kappa + h) - eval(&base_x, &base_y, kappa - h)) / (2.0 * h);
            assert!((gk - fd).abs() < 1e-4, "kappa {kappa} dκ: {gk} vs {fd}");
        }
    }

    #[test]
    fn fermi_dirac_is_between_zero_and_one_and_decreasing() {
        let mut t = Tape::new();
        let d_small = t.scalar(0.1);
        let d_large = t.scalar(3.0);
        let s_small = fermi_dirac(&mut t, d_small, 1.0, 5.0);
        let s_large = fermi_dirac(&mut t, d_large, 1.0, 5.0);
        let vs = t.value(s_small).scalar_value();
        let vl = t.value(s_large).scalar_value();
        assert!(vs > vl, "similarity must decrease with distance");
        assert!((0.0..=1.0).contains(&vs));
        assert!((0.0..=1.0).contains(&vl));
    }

    #[test]
    fn transport_preserves_tangent_representation() {
        let mut t = Tape::new();
        let v = t.row(vec![0.2, -0.1]);
        let k1 = t.scalar(-1.0);
        let k2 = t.scalar(1.0);
        let p = exp0(&mut t, v, k1);
        let q = transport(&mut t, p, k1, k2);
        let back = log0(&mut t, q, k2);
        assert_vec_close(&t.value(back).data, &t.value(v).data.clone(), 1e-7);
    }
}
