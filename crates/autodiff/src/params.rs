//! Trainable-parameter storage and the AdaGrad optimiser.
//!
//! The paper trains AMCAD with vanilla AdaGrad over parameters that all
//! live in tangent (Euclidean) space, stabilised by gradient clipping and a
//! learning-rate warm-up (Section V-B), and keeps the sparse ID-feature
//! embedding tables from growing without bound via an LRU feature-exit
//! mechanism (Section V-C).  [`ParamStore`] reproduces this machinery:
//!
//! * dense parameters (weight matrices, curvature scalars, attention
//!   projections),
//! * sparse embedding tables updated only on the rows touched by a batch,
//! * per-element AdaGrad accumulators, global-norm gradient clipping and
//!   linear warm-up,
//! * last-used bookkeeping per embedding row for LRU eviction.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tape::{Gradients, Tape, Var};
use crate::tensor::Tensor;

/// Handle to a dense parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DenseId(usize);

/// Handle to an embedding table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableId(usize);

/// Hyper-parameters of the AdaGrad optimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Base learning rate (the paper grid-searches to 1e-2).
    pub learning_rate: f64,
    /// AdaGrad denominator epsilon.
    pub epsilon: f64,
    /// Global gradient-norm clip threshold (0 disables clipping).
    pub clip_norm: f64,
    /// Number of warm-up steps over which the learning rate ramps linearly.
    pub warmup_steps: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            learning_rate: 1e-2,
            epsilon: 1e-10,
            clip_norm: 5.0,
            warmup_steps: 100,
        }
    }
}

#[derive(Debug, Clone)]
struct DenseParam {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    accum: Vec<f64>,
    trainable: bool,
}

#[derive(Debug, Clone)]
struct EmbeddingTable {
    name: String,
    rows: usize,
    dim: usize,
    data: Vec<f64>,
    accum: Vec<f64>,
    last_used: Vec<u64>,
}

/// Where a tape leaf's gradient should be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Target {
    Dense(DenseId),
    Row(TableId, usize),
}

/// Records which tape leaves were bound to which parameters in one batch.
#[derive(Debug, Default)]
pub struct Batch {
    uses: Vec<(Var, Target)>,
}

impl Batch {
    /// Create an empty binding record.
    pub fn new() -> Self {
        Batch::default()
    }

    /// Number of parameter bindings recorded.
    pub fn len(&self) -> usize {
        self.uses.len()
    }

    /// Whether no parameters were bound.
    pub fn is_empty(&self) -> bool {
        self.uses.is_empty()
    }
}

/// Container for every trainable parameter of a model.
#[derive(Debug)]
pub struct ParamStore {
    dense: Vec<DenseParam>,
    dense_by_name: HashMap<String, DenseId>,
    tables: Vec<EmbeddingTable>,
    tables_by_name: HashMap<String, TableId>,
    config: OptimizerConfig,
    step: u64,
    rng: StdRng,
}

impl ParamStore {
    /// Create a store with the given optimiser configuration and RNG seed
    /// (parameter initialisation is deterministic given the seed).
    pub fn new(config: OptimizerConfig, seed: u64) -> Self {
        ParamStore {
            dense: Vec::new(),
            dense_by_name: HashMap::new(),
            tables: Vec::new(),
            tables_by_name: HashMap::new(),
            config,
            step: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of optimisation steps applied so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The optimiser configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Total number of scalar parameters (dense + embeddings).
    pub fn num_parameters(&self) -> usize {
        self.dense.iter().map(|p| p.data.len()).sum::<usize>()
            + self.tables.iter().map(|t| t.data.len()).sum::<usize>()
    }

    // ----- registration -----

    /// Register a dense parameter of shape `rows × cols`, initialised
    /// uniformly in `[-scale, scale]`.
    pub fn dense(&mut self, name: &str, rows: usize, cols: usize, scale: f64) -> DenseId {
        assert!(
            !self.dense_by_name.contains_key(name),
            "duplicate dense parameter `{name}`"
        );
        let data = (0..rows * cols)
            .map(|_| self.rng.gen_range(-scale..=scale))
            .collect();
        let id = DenseId(self.dense.len());
        self.dense.push(DenseParam {
            name: name.to_string(),
            rows,
            cols,
            data,
            accum: vec![0.0; rows * cols],
            trainable: true,
        });
        self.dense_by_name.insert(name.to_string(), id);
        id
    }

    /// Register a dense parameter with explicit initial values.
    pub fn dense_with_values(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
        values: Vec<f64>,
    ) -> DenseId {
        assert_eq!(values.len(), rows * cols);
        let id = self.dense(name, rows, cols, 0.0);
        self.dense[id.0].data = values;
        id
    }

    /// Register a scalar parameter (used for trainable curvatures).
    pub fn scalar_param(&mut self, name: &str, value: f64, trainable: bool) -> DenseId {
        let id = self.dense_with_values(name, 1, 1, vec![value]);
        self.dense[id.0].trainable = trainable;
        id
    }

    /// Register an embedding table of `rows × dim`, initialised uniformly in
    /// `[-scale, scale]`.
    pub fn embedding(&mut self, name: &str, rows: usize, dim: usize, scale: f64) -> TableId {
        assert!(
            !self.tables_by_name.contains_key(name),
            "duplicate embedding table `{name}`"
        );
        let data = (0..rows * dim)
            .map(|_| self.rng.gen_range(-scale..=scale))
            .collect();
        let id = TableId(self.tables.len());
        self.tables.push(EmbeddingTable {
            name: name.to_string(),
            rows,
            dim,
            data,
            accum: vec![0.0; rows * dim],
            last_used: vec![0; rows],
        });
        self.tables_by_name.insert(name.to_string(), id);
        id
    }

    /// Look up a dense parameter by name.
    pub fn dense_id(&self, name: &str) -> Option<DenseId> {
        self.dense_by_name.get(name).copied()
    }

    /// Look up an embedding table by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables_by_name.get(name).copied()
    }

    /// Names of all dense parameters (stable registration order).
    pub fn dense_names(&self) -> Vec<&str> {
        self.dense.iter().map(|p| p.name.as_str()).collect()
    }

    // ----- values -----

    /// Current value of a dense parameter as a tensor copy.
    pub fn dense_value(&self, id: DenseId) -> Tensor {
        let p = &self.dense[id.0];
        Tensor::new(p.rows, p.cols, p.data.clone())
    }

    /// Current scalar value of a `1 × 1` dense parameter.
    pub fn scalar_value(&self, id: DenseId) -> f64 {
        let p = &self.dense[id.0];
        debug_assert_eq!(p.data.len(), 1);
        p.data[0]
    }

    /// Overwrite the scalar value of a `1 × 1` dense parameter.
    pub fn set_scalar_value(&mut self, id: DenseId, value: f64) {
        let p = &mut self.dense[id.0];
        debug_assert_eq!(p.data.len(), 1);
        p.data[0] = value;
    }

    /// Row `row` of an embedding table as a slice.
    pub fn row_value(&self, id: TableId, row: usize) -> &[f64] {
        let t = &self.tables[id.0];
        &t.data[row * t.dim..(row + 1) * t.dim]
    }

    /// Number of rows in an embedding table.
    pub fn table_rows(&self, id: TableId) -> usize {
        self.tables[id.0].rows
    }

    /// Embedding dimension of a table.
    pub fn table_dim(&self, id: TableId) -> usize {
        self.tables[id.0].dim
    }

    // ----- binding into a tape -----

    /// Bind a dense parameter into the tape as a leaf for this batch.
    pub fn use_dense(&self, tape: &mut Tape, batch: &mut Batch, id: DenseId) -> Var {
        let var = tape.leaf(self.dense_value(id));
        batch.uses.push((var, Target::Dense(id)));
        var
    }

    /// Bind one embedding row into the tape as a leaf for this batch.
    pub fn use_row(&mut self, tape: &mut Tape, batch: &mut Batch, id: TableId, row: usize) -> Var {
        let step = self.step;
        let t = &mut self.tables[id.0];
        assert!(
            row < t.rows,
            "row {row} out of bounds for table `{}`",
            t.name
        );
        t.last_used[row] = step;
        let data = t.data[row * t.dim..(row + 1) * t.dim].to_vec();
        let var = tape.leaf(Tensor::row(data));
        batch.uses.push((var, Target::Row(id, row)));
        var
    }

    // ----- optimisation -----

    /// Effective learning rate after warm-up at the current step.
    pub fn effective_lr(&self) -> f64 {
        if self.config.warmup_steps == 0 {
            return self.config.learning_rate;
        }
        let ramp = ((self.step + 1) as f64 / self.config.warmup_steps as f64).min(1.0);
        self.config.learning_rate * ramp
    }

    /// Apply AdaGrad updates for one batch.  Returns the pre-clip global
    /// gradient norm (useful for monitoring training stability).
    pub fn apply_gradients(&mut self, grads: &Gradients, batch: &Batch) -> f64 {
        // 1. accumulate per-target gradients (a parameter bound several
        //    times in one batch receives the sum of its leaf gradients).
        let mut acc: HashMap<Target, Vec<f64>> = HashMap::new();
        for (var, target) in &batch.uses {
            let Some(g) = grads.wrt(*var) else { continue };
            let entry = acc
                .entry(*target)
                .or_insert_with(|| vec![0.0; g.data.len()]);
            for (e, gi) in entry.iter_mut().zip(&g.data) {
                *e += gi;
            }
        }

        // Deterministic order: the clip-norm sum is order-sensitive in
        // floating point, and HashMap order varies per process, which
        // would make seeded training runs diverge.
        let mut entries: Vec<(Target, Vec<f64>)> = acc.into_iter().collect();
        entries.sort_unstable_by_key(|(t, _)| match *t {
            Target::Dense(id) => (0, id.0, 0),
            Target::Row(id, row) => (1, id.0, row),
        });

        // 2. global norm clipping
        let total_sq: f64 = entries
            .iter()
            .map(|(_, g)| g.iter().map(|x| x * x).sum::<f64>())
            .sum();
        let global_norm = total_sq.sqrt();
        let clip_scale = if self.config.clip_norm > 0.0 && global_norm > self.config.clip_norm {
            self.config.clip_norm / global_norm
        } else {
            1.0
        };

        // 3. AdaGrad update
        let lr = self.effective_lr();
        let eps = self.config.epsilon;
        for (target, mut g) in entries {
            for gi in &mut g {
                *gi *= clip_scale;
            }
            match target {
                Target::Dense(id) => {
                    let p = &mut self.dense[id.0];
                    if !p.trainable {
                        continue;
                    }
                    debug_assert_eq!(g.len(), p.data.len(), "dense gradient shape mismatch");
                    for (i, gi) in g.iter().enumerate() {
                        p.accum[i] += gi * gi;
                        p.data[i] -= lr * gi / (p.accum[i].sqrt() + eps);
                    }
                }
                Target::Row(id, row) => {
                    let t = &mut self.tables[id.0];
                    let base = row * t.dim;
                    debug_assert_eq!(g.len(), t.dim, "row gradient shape mismatch");
                    for (i, gi) in g.iter().enumerate().take(t.dim) {
                        t.accum[base + i] += gi * gi;
                        t.data[base + i] -= lr * gi / (t.accum[base + i].sqrt() + eps);
                    }
                }
            }
        }

        self.step += 1;
        global_norm
    }

    /// LRU feature exit (Section V-C): reset embedding rows that have not
    /// been touched for more than `max_age` optimisation steps.  Returns the
    /// number of evicted rows.
    pub fn evict_stale_rows(&mut self, id: TableId, max_age: u64) -> usize {
        let step = self.step;
        let t = &mut self.tables[id.0];
        let mut evicted = 0;
        for row in 0..t.rows {
            if step.saturating_sub(t.last_used[row]) > max_age {
                let base = row * t.dim;
                for i in 0..t.dim {
                    t.data[base + i] = 0.0;
                    t.accum[base + i] = 0.0;
                }
                t.last_used[row] = step;
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParamStore {
        ParamStore::new(OptimizerConfig::default(), 7)
    }

    #[test]
    fn registration_and_lookup() {
        let mut s = store();
        let w = s.dense("w", 2, 3, 0.1);
        let e = s.embedding("emb", 10, 4, 0.1);
        assert_eq!(s.dense_id("w"), Some(w));
        assert_eq!(s.table_id("emb"), Some(e));
        assert_eq!(s.table_rows(e), 10);
        assert_eq!(s.table_dim(e), 4);
        assert_eq!(s.num_parameters(), 6 + 40);
        assert_eq!(s.dense_names(), vec!["w"]);
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut s = store();
        s.dense("w", 2, 2, 0.1);
        s.dense("w", 2, 2, 0.1);
    }

    #[test]
    fn adagrad_descends_a_quadratic() {
        // minimise f(w) = Σ (w - 3)² over a 1x2 dense parameter
        let mut s = ParamStore::new(
            OptimizerConfig {
                learning_rate: 0.5,
                warmup_steps: 0,
                clip_norm: 0.0,
                ..Default::default()
            },
            3,
        );
        let w = s.dense_with_values("w", 1, 2, vec![0.0, 10.0]);
        for _ in 0..300 {
            let mut tape = Tape::new();
            let mut batch = Batch::new();
            let wv = s.use_dense(&mut tape, &mut batch, w);
            let target = tape.row(vec![3.0, 3.0]);
            let diff = tape.sub(wv, target);
            let sq = tape.square(diff);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            s.apply_gradients(&grads, &batch);
        }
        let final_w = s.dense_value(w);
        for v in final_w.data {
            assert!((v - 3.0).abs() < 0.1, "w did not converge: {v}");
        }
    }

    #[test]
    fn sparse_embedding_rows_update_independently() {
        let mut s = ParamStore::new(
            OptimizerConfig {
                learning_rate: 0.5,
                warmup_steps: 0,
                ..Default::default()
            },
            3,
        );
        let e = s.embedding("emb", 4, 2, 0.0); // all-zero init
        let before_row3 = s.row_value(e, 3).to_vec();
        // push row 1 towards [1, 1]
        for _ in 0..200 {
            let mut tape = Tape::new();
            let mut batch = Batch::new();
            let r = s.use_row(&mut tape, &mut batch, e, 1);
            let target = tape.row(vec![1.0, 1.0]);
            let diff = tape.sub(r, target);
            let sq = tape.square(diff);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            s.apply_gradients(&grads, &batch);
        }
        let row1 = s.row_value(e, 1);
        assert!((row1[0] - 1.0).abs() < 0.1 && (row1[1] - 1.0).abs() < 0.1);
        assert_eq!(s.row_value(e, 3), before_row3.as_slice());
    }

    #[test]
    fn warmup_ramps_learning_rate() {
        let s = ParamStore::new(
            OptimizerConfig {
                learning_rate: 1.0,
                warmup_steps: 10,
                ..Default::default()
            },
            1,
        );
        assert!(s.effective_lr() <= 0.1 + 1e-12);
        let mut s2 = s;
        // simulate steps
        for _ in 0..20 {
            let tape = Tape::new();
            let batch = Batch::new();
            drop(tape);
            drop(batch);
            s2.step += 1;
        }
        assert!((s2.effective_lr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_clipping_bounds_update_magnitude() {
        let mut s = ParamStore::new(
            OptimizerConfig {
                learning_rate: 1.0,
                warmup_steps: 0,
                clip_norm: 1.0,
                ..Default::default()
            },
            3,
        );
        let w = s.dense_with_values("w", 1, 1, vec![0.0]);
        let mut tape = Tape::new();
        let mut batch = Batch::new();
        let wv = s.use_dense(&mut tape, &mut batch, w);
        let huge = tape.scale(wv, 1.0);
        let shifted = tape.add_const(huge, -1000.0);
        let sq = tape.square(shifted);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        let norm = s.apply_gradients(&grads, &batch);
        assert!(norm > 1.0, "raw gradient should exceed the clip threshold");
        // With AdaGrad the first step magnitude is ≈ lr regardless, but the
        // accumulated state must reflect the clipped gradient (1.0), not the
        // raw one (2000).
        assert!(s.dense[w.0].accum[0] <= 1.0 + 1e-9);
    }

    #[test]
    fn non_trainable_scalar_is_frozen() {
        let mut s = store();
        let k = s.scalar_param("kappa", -1.0, false);
        let mut tape = Tape::new();
        let mut batch = Batch::new();
        let kv = s.use_dense(&mut tape, &mut batch, k);
        let sq = tape.square(kv);
        let loss = tape.sum(sq);
        let grads = tape.backward(loss);
        s.apply_gradients(&grads, &batch);
        assert_eq!(s.scalar_value(k), -1.0);
    }

    #[test]
    fn lru_eviction_resets_stale_rows() {
        let mut s = store();
        let e = s.embedding("emb", 3, 2, 0.5);
        // touch row 0 only, then advance steps artificially
        {
            let mut tape = Tape::new();
            let mut batch = Batch::new();
            let r = s.use_row(&mut tape, &mut batch, e, 0);
            let loss = tape.sum(r);
            let grads = tape.backward(loss);
            s.apply_gradients(&grads, &batch);
        }
        s.step += 100;
        // re-touch row 0 so it stays fresh
        {
            let mut tape = Tape::new();
            let mut batch = Batch::new();
            let r = s.use_row(&mut tape, &mut batch, e, 0);
            let loss = tape.sum(r);
            let grads = tape.backward(loss);
            s.apply_gradients(&grads, &batch);
        }
        let evicted = s.evict_stale_rows(e, 50);
        assert_eq!(evicted, 2, "rows 1 and 2 should be evicted");
        assert!(s.row_value(e, 1).iter().all(|&v| v == 0.0));
        assert!(s.row_value(e, 0).iter().any(|&v| v != 0.0));
    }
}
