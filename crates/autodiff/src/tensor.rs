//! Dense row-major `f64` tensors.
//!
//! The training engine only ever needs rank-2 tensors: matrices, row
//! vectors (`1 × d`) and scalars (`1 × 1`).  Keeping the representation this
//! small makes the tape ops easy to audit, which matters more than raw
//! throughput at the laptop scale this reproduction targets.

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` entries.
    pub data: Vec<f64>,
}

impl Tensor {
    /// Create a tensor from raw parts.
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { rows, cols, data }
    }

    /// A `1 × d` row vector.
    pub fn row(data: Vec<f64>) -> Self {
        let cols = data.len();
        Tensor::new(1, cols, data)
    }

    /// A `1 × 1` scalar tensor.
    pub fn scalar(v: f64) -> Self {
        Tensor::new(1, 1, vec![v])
    }

    /// An all-zeros tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor::new(rows, cols, vec![0.0; rows * cols])
    }

    /// An all-ones tensor of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor::new(rows, cols, vec![1.0; rows * cols])
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether this is a `1 × 1` scalar.
    #[inline]
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The single value of a scalar tensor.
    #[inline]
    pub fn scalar_value(&self) -> f64 {
        debug_assert!(
            self.is_scalar(),
            "expected scalar, got {}x{}",
            self.rows,
            self.cols
        );
        self.data[0]
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Shapes are equal.
    #[inline]
    pub fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a == 0.0 {
                    continue;
                }
                let brow = other.row_slice(k);
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                *out.at_mut(c, r) = self.at(r, c);
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Tensor {
        Tensor::new(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Elementwise binary combination with a same-shaped tensor.
    pub fn zip<F: Fn(f64, f64) -> f64>(&self, other: &Tensor, f: F) -> Tensor {
        assert!(self.same_shape(other), "shape mismatch in zip");
        Tensor::new(
            self.rows,
            self.cols,
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        )
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean norm of the flattened data.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let t = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.row_slice(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_scalar());
        assert!(Tensor::scalar(2.5).is_scalar());
        assert_eq!(Tensor::scalar(2.5).scalar_value(), 2.5);
    }

    #[test]
    #[should_panic]
    fn mismatched_data_length_panics() {
        Tensor::new(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows, 2);
        assert_eq!(c.cols, 2);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let back = a.transpose().transpose();
        assert_eq!(a, back);
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::row(vec![1.0, -2.0, 3.0]);
        let b = Tensor::row(vec![0.5, 0.5, 0.5]);
        assert_eq!(a.map(|v| v * 2.0).data, vec![2.0, -4.0, 6.0]);
        assert_eq!(a.zip(&b, |x, y| x + y).data, vec![1.5, -1.5, 3.5]);
        assert_eq!(a.sum(), 2.0);
        assert!((Tensor::row(vec![3.0, 4.0]).frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
