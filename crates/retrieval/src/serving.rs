//! Online-serving load simulator (Fig. 9 of the paper).
//!
//! The paper reports ad-retrieval response time as the offered load grows
//! from 1K to 50K queries per second on the production iGraph cluster.  The
//! same *shape* — response time grows slowly with offered QPS until the
//! worker pool saturates — is reproduced here with an open-loop load
//! generator: requests arrive on a fixed schedule derived from the offered
//! QPS, a pool of worker threads serves them from a shared queue, and the
//! reported latency includes queueing delay (so overload shows up as a steep
//! latency increase, exactly like the paper's figure).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;

use crate::retriever::TwoLayerRetriever;

/// One simulated online request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Query node id.
    pub query: u32,
    /// Recently clicked item node ids.
    pub preclick_items: Vec<u32>,
}

/// Latency statistics of one load level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Offered load in requests per second.
    pub offered_qps: f64,
    /// Number of requests completed.
    pub completed: usize,
    /// Mean response time (including queueing) in milliseconds.
    pub mean_ms: f64,
    /// Median response time in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response time in milliseconds.
    pub p99_ms: f64,
    /// Achieved throughput in requests per second.
    pub achieved_qps: f64,
}

/// Configuration of the load generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Number of serving worker threads.
    pub workers: usize,
    /// Number of requests issued per load level.
    pub requests_per_level: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 4,
            requests_per_level: 2_000,
        }
    }
}

/// The serving simulator: a worker pool around a [`TwoLayerRetriever`].
pub struct ServingSimulator<'a> {
    retriever: &'a TwoLayerRetriever,
    config: ServingConfig,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

impl<'a> ServingSimulator<'a> {
    /// Create a simulator around a retriever.
    pub fn new(retriever: &'a TwoLayerRetriever, config: ServingConfig) -> Self {
        ServingSimulator { retriever, config }
    }

    /// Run one load level: issue `requests` (cycled to reach the configured
    /// request count) at `offered_qps` and measure response times.
    pub fn run_level(&self, requests: &[Request], offered_qps: f64) -> LoadReport {
        assert!(!requests.is_empty(), "need at least one request template");
        assert!(offered_qps > 0.0);
        let total = self.config.requests_per_level;
        let workers = self.config.workers.max(1);
        let interval = Duration::from_secs_f64(1.0 / offered_qps);

        // Work items: (request index, scheduled arrival offset).
        let queue: Arc<SegQueue<(usize, Duration)>> = Arc::new(SegQueue::new());
        let latencies_ms = Arc::new(parking_lot::Mutex::new(Vec::with_capacity(total)));
        let produced = Arc::new(AtomicUsize::new(0));
        let done_producing = Arc::new(AtomicUsize::new(0));

        let start = Instant::now();
        crossbeam::scope(|scope| {
            // producer: enqueue requests on the offered-load schedule
            {
                let queue = Arc::clone(&queue);
                let produced = Arc::clone(&produced);
                let done = Arc::clone(&done_producing);
                scope.spawn(move |_| {
                    for i in 0..total {
                        let scheduled = interval * i as u32;
                        // open-loop: wait until the scheduled arrival time
                        let now = start.elapsed();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        queue.push((i, scheduled));
                        produced.fetch_add(1, Ordering::SeqCst);
                    }
                    done.store(1, Ordering::SeqCst);
                });
            }
            // workers: serve requests, recording latency from scheduled
            // arrival to completion (queueing + service time)
            for _ in 0..workers {
                let queue = Arc::clone(&queue);
                let latencies = Arc::clone(&latencies_ms);
                let done = Arc::clone(&done_producing);
                let produced = Arc::clone(&produced);
                let retriever = self.retriever;
                scope.spawn(move |_| {
                    let mut served = 0usize;
                    loop {
                        match queue.pop() {
                            Some((i, scheduled)) => {
                                let req = &requests[i % requests.len()];
                                let _ads = retriever.retrieve(req.query, &req.preclick_items);
                                let latency = start.elapsed().saturating_sub(scheduled);
                                latencies.lock().push(latency.as_secs_f64() * 1000.0);
                                served += 1;
                            }
                            None => {
                                if done.load(Ordering::SeqCst) == 1
                                    && latencies.lock().len() >= produced.load(Ordering::SeqCst)
                                {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    served
                });
            }
        })
        .expect("serving threads must not panic");
        let wall = start.elapsed().as_secs_f64();

        let mut ms = Arc::try_unwrap(latencies_ms)
            .expect("all workers joined")
            .into_inner();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let completed = ms.len();
        LoadReport {
            offered_qps,
            completed,
            mean_ms: if completed == 0 {
                0.0
            } else {
                ms.iter().sum::<f64>() / completed as f64
            },
            p50_ms: percentile(&ms, 0.50),
            p99_ms: percentile(&ms, 0.99),
            achieved_qps: completed as f64 / wall.max(1e-9),
        }
    }

    /// Sweep several offered-QPS levels (the Fig. 9 x-axis).
    pub fn sweep(&self, requests: &[Request], qps_levels: &[f64]) -> Vec<LoadReport> {
        qps_levels
            .iter()
            .map(|&qps| self.run_level(requests, qps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
    use crate::retriever::RetrievalConfig;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use amcad_mnn::MixedPointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(ids: std::ops::Range<u32>, seed: u64) -> MixedPointSet {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let tangent: Vec<f64> = (0..4).map(|_| rng.gen_range(-0.3..0.3)).collect();
            set.push(id, &manifold.exp0(&tangent), &[0.5, 0.5]);
        }
        set
    }

    fn retriever() -> TwoLayerRetriever {
        let inputs = IndexBuildInputs {
            queries_qq: random_points(0..10, 1),
            queries_qi: random_points(0..10, 2),
            items_qi: random_points(100..140, 3),
            queries_qa: random_points(0..10, 4),
            ads_qa: random_points(200..220, 5),
            items_ii: random_points(100..140, 6),
            items_ia: random_points(100..140, 7),
            ads_ia: random_points(200..220, 8),
        };
        let indexes = IndexSet::build(&inputs, IndexBuildConfig { top_k: 8, threads: 1 });
        TwoLayerRetriever::new(indexes, RetrievalConfig::default())
    }

    fn requests() -> Vec<Request> {
        (0..10u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q, 110 + q],
            })
            .collect()
    }

    #[test]
    fn load_test_completes_every_request_and_reports_sane_statistics() {
        let r = retriever();
        let sim = ServingSimulator::new(
            &r,
            ServingConfig {
                workers: 2,
                requests_per_level: 200,
            },
        );
        let report = sim.run_level(&requests(), 5_000.0);
        assert_eq!(report.completed, 200);
        assert!(report.mean_ms >= 0.0);
        assert!(report.p50_ms <= report.p99_ms + 1e-9);
        assert!(report.achieved_qps > 0.0);
    }

    #[test]
    fn sweep_returns_one_report_per_level() {
        let r = retriever();
        let sim = ServingSimulator::new(
            &r,
            ServingConfig {
                workers: 2,
                requests_per_level: 100,
            },
        );
        let reports = sim.sweep(&requests(), &[1_000.0, 4_000.0]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].offered_qps, 1_000.0);
        assert_eq!(reports[1].offered_qps, 4_000.0);
    }

    #[test]
    fn percentile_helper_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }
}
