//! Online-serving load simulator (Fig. 9 of the paper).
//!
//! The paper reports ad-retrieval response time as the offered load grows
//! from 1K to 50K queries per second on the production iGraph cluster.  The
//! same *shape* — response time grows slowly with offered QPS until the
//! worker pool saturates — is reproduced here with an open-loop load
//! generator: requests arrive on a fixed schedule derived from the offered
//! QPS, a pool of worker threads drains them from a shared queue in
//! batches (one queue interaction per wakeup) and serves them through the
//! engine, and the reported latency includes queueing delay (so overload
//! shows up as a steep latency increase, exactly like the paper's figure).
//! Each request's completion is timestamped individually so the curve
//! reflects true per-request latency, not batch-end latency; transport-
//! level response batching is what
//! [`crate::RetrievalEngine::retrieve_batch`] models for callers that
//! want it.
//!
//! Idle workers park on a condition variable instead of spinning: a low
//! offered load no longer burns a full core per worker waiting for the
//! next arrival.
//!
//! The producer and drain workers run as one fork/join batch on a
//! resident [`PersistentPool`] owned by the simulator: the threads are
//! spawned once in [`ServingSimulator::new`] and reused across every
//! level of a sweep, so steady-state load generation performs zero
//! thread spawns — the same discipline the serving runtime follows.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Condvar;
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};

use crate::engine::{Request, Retrieve};
use crate::error::RetrievalError;
use crate::runtime::park_pool::PersistentPool;

/// Latency statistics of one load level.
///
/// The tail is reported at p90 / p95 / p99, not p50 → p99 alone: the
/// saturation knee of the Fig. 9 curve shows up in the intermediate
/// percentiles first (queueing delay hits the slowest decile long before
/// it moves the median).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Offered load in requests per second.
    pub offered_qps: f64,
    /// Number of requests completed (including no-coverage responses).
    pub completed: usize,
    /// Requests answered with [`RetrievalError::NoCoverage`].
    pub no_coverage: usize,
    /// Mean response time (including queueing) in milliseconds.
    pub mean_ms: f64,
    /// Median response time in milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile response time in milliseconds.
    pub p90_ms: f64,
    /// 95th-percentile response time in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile response time in milliseconds.
    pub p99_ms: f64,
    /// Achieved throughput in requests per second.
    pub achieved_qps: f64,
    /// Requests shed by admission control or deadline enforcement
    /// ([`RetrievalError::Overloaded`]). Always zero for the plain
    /// simulator, which has no admission queue.
    pub shed: usize,
    /// Requests that completed but only after their deadline had passed
    /// (late answers — completed, but not goodput). Always zero for the
    /// plain simulator, which enforces no deadline.
    pub timed_out: usize,
    /// Hedge sub-requests issued during this level (straggling shard
    /// gathers re-issued to a sibling replica).
    pub hedges: u64,
    /// Hedge sub-requests that beat the primary replica to the answer.
    pub hedge_wins: u64,
    /// Throughput counting only requests answered within their deadline,
    /// in requests per second. Equal to `achieved_qps` when no deadline
    /// is enforced.
    pub goodput_qps: f64,
}

/// Configuration of the load generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Number of serving worker threads.
    pub workers: usize,
    /// Number of requests issued per load level.
    pub requests_per_level: usize,
    /// Maximum requests a worker drains from the queue per wakeup (one
    /// lock/condvar interaction per batch; requests are still served and
    /// timestamped individually).
    pub batch_size: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 4,
            requests_per_level: 2_000,
            batch_size: 8,
        }
    }
}

/// Work item: (request template index, scheduled arrival offset).
type WorkItem = (usize, Duration);

/// A closable MPMC queue whose consumers park when idle. The producer
/// notifies on every push; an idle consumer waits on the condvar (with a
/// short bound as a missed-wakeup guard) instead of spinning on `pop`.
///
/// Deliberately `std::sync::Mutex`, not `parking_lot::Mutex`:
/// `std::sync::Condvar` only pairs with std guards (the offline
/// parking_lot stub happens to alias them, the real crate does not).
struct RequestQueue {
    // amcad-lint: allow(no-std-sync-primitives) — std::sync::Condvar only pairs with std MutexGuard (the real parking_lot's guard would not compile here)
    items: std::sync::Mutex<VecDeque<WorkItem>>,
    available: Condvar,
    closed: AtomicBool,
}

impl RequestQueue {
    fn new() -> Self {
        RequestQueue {
            // amcad-lint: allow(no-std-sync-primitives) — std::sync::Condvar only pairs with std MutexGuard
            items: std::sync::Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    fn push(&self, item: WorkItem) {
        self.lock().push_back(item);
        self.available.notify_one();
    }

    /// Mark the queue closed: consumers drain what is left, then stop.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<WorkItem>> {
        self.items.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take up to `max` items, parking while the queue is empty and open.
    /// An empty result means closed-and-drained.
    fn pop_batch(&self, max: usize) -> Vec<WorkItem> {
        let mut guard = self.lock();
        loop {
            if !guard.is_empty() {
                let n = guard.len().min(max);
                return guard.drain(..n).collect();
            }
            if self.closed.load(Ordering::SeqCst) {
                return Vec::new();
            }
            let (g, _) = self
                .available
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }
}

/// The serving simulator: a parked-worker pool around any [`Retrieve`]
/// implementation — a single [`crate::RetrievalEngine`], a
/// [`crate::ShardedEngine`] fan-out, or a hot-swappable
/// [`crate::EngineHandle`].
pub struct ServingSimulator<'a> {
    engine: &'a dyn Retrieve,
    config: ServingConfig,
    /// Resident load-generation threads: one producer slot plus the
    /// configured workers, parked between levels.
    pool: PersistentPool,
}

pub(crate) fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

impl<'a> ServingSimulator<'a> {
    /// Create a simulator around any serving engine.
    pub fn new(engine: &'a dyn Retrieve, config: ServingConfig) -> Self {
        // width = workers + 1: the open-loop producer occupies one job
        // slot for a whole level, the drain workers the rest. `run`'s
        // calling thread participates, so `new` spawns exactly
        // `workers` resident threads.
        let pool = PersistentPool::new(config.workers.max(1) + 1);
        ServingSimulator {
            engine,
            config,
            pool,
        }
    }

    /// Run one load level: issue `requests` (cycled to reach the configured
    /// request count) at `offered_qps` and measure response times.
    pub fn run_level(&self, requests: &[Request], offered_qps: f64) -> LoadReport {
        assert!(!requests.is_empty(), "need at least one request template");
        assert!(offered_qps > 0.0);
        let total = self.config.requests_per_level;
        let workers = self.config.workers.max(1);
        let batch_size = self.config.batch_size.max(1);
        let interval = Duration::from_secs_f64(1.0 / offered_qps);

        let queue = RequestQueue::new();
        let latencies_ms = parking_lot::Mutex::new(Vec::with_capacity(total));
        let no_coverage = std::sync::atomic::AtomicUsize::new(0);

        let start = Instant::now();
        let engine = self.engine;
        // One fork/join batch on the resident pool: job 0 is the
        // open-loop producer, jobs 1..=workers drain and serve. Index 0
        // is claimed first, so the producer always runs even if the
        // batch momentarily has fewer threads than jobs — drain jobs
        // terminate once the queue is closed and empty, unblocking any
        // thread that then claims a later index.
        self.pool.run(workers + 1, |job| {
            if job == 0 {
                // producer: enqueue requests on the offered-load schedule
                for i in 0..total {
                    // f64 multiply, not `interval * i as u32`: the cast
                    // silently truncated the request index and the u32
                    // multiply can panic on Duration overflow at low
                    // QPS × many requests (a release-only abort, since
                    // debug builds hit the cast first)
                    let scheduled = interval.mul_f64(i as f64);
                    // open-loop: wait until the scheduled arrival time
                    let now = start.elapsed();
                    if scheduled > now {
                        std::thread::sleep(scheduled - now);
                    }
                    queue.push((i, scheduled));
                }
                queue.close();
                return;
            }
            // workers: drain batches (one queue interaction per wakeup),
            // serve each request, and record per-request latency from
            // scheduled arrival to its own completion (queueing + service
            // time). Completion is timestamped per item, not per batch —
            // batch-end timestamping would inflate every latency by its
            // batchmates' service times and distort the Fig. 9 curve.
            let mut batch_ms: Vec<f64> = Vec::with_capacity(batch_size);
            loop {
                let items = queue.pop_batch(batch_size);
                if items.is_empty() {
                    break; // closed and drained
                }
                batch_ms.clear();
                for &(i, scheduled) in &items {
                    let result = engine.retrieve(&requests[i % requests.len()]);
                    if matches!(result, Err(RetrievalError::NoCoverage { .. })) {
                        // monotonic telemetry counter, read only after the
                        // level's join — no ordering needed — so Relaxed
                        no_coverage.fetch_add(1, Ordering::Relaxed);
                    }
                    let latency = start.elapsed().saturating_sub(scheduled);
                    batch_ms.push(latency.as_secs_f64() * 1000.0);
                }
                latencies_ms.lock().extend_from_slice(&batch_ms);
            }
        });
        let wall = start.elapsed().as_secs_f64();

        let mut ms = latencies_ms.into_inner();
        ms.sort_by(|a, b| a.total_cmp(b));
        let completed = ms.len();
        let achieved_qps = completed as f64 / wall.max(1e-9);
        LoadReport {
            offered_qps,
            completed,
            // the pool join above already ordered every worker's writes
            no_coverage: no_coverage.load(Ordering::Relaxed),
            mean_ms: if completed == 0 {
                0.0
            } else {
                ms.iter().sum::<f64>() / completed as f64
            },
            p50_ms: percentile(&ms, 0.50),
            p90_ms: percentile(&ms, 0.90),
            p95_ms: percentile(&ms, 0.95),
            p99_ms: percentile(&ms, 0.99),
            achieved_qps,
            // the plain simulator has no admission queue, deadline or
            // hedging — every completion is goodput
            shed: 0,
            timed_out: 0,
            hedges: 0,
            hedge_wins: 0,
            goodput_qps: achieved_qps,
        }
    }

    /// Sweep several offered-QPS levels (the Fig. 9 x-axis).
    pub fn sweep(&self, requests: &[Request], qps_levels: &[f64]) -> Vec<LoadReport> {
        qps_levels
            .iter()
            .map(|&qps| self.run_level(requests, qps))
            .collect()
    }
}

/// How a traffic scenario picks request templates.
///
/// Production ad traffic is heavily skewed — a few hot queries dominate —
/// which is exactly the load shape that makes cross-request batch dedup
/// and per-replica caching pay off. The uniform pattern cycles templates
/// round-robin (the legacy simulator behaviour); the Zipf pattern samples
/// template ranks from a power law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficPattern {
    /// Cycle through the templates in order (every template equally hot).
    Uniform,
    /// Zipf-distributed template popularity: template at rank `r`
    /// (0-indexed) is drawn with weight `1 / (r + 1)^exponent`.
    /// Deterministic for a fixed seed.
    Zipf {
        /// The skew exponent `s` (1.0 is the classic Zipf shape; larger
        /// concentrates more of the traffic on the top templates).
        exponent: f64,
        /// RNG seed — the same seed replays the same arrival sequence.
        seed: u64,
    },
}

impl TrafficPattern {
    /// Build a sampler over `templates` request templates.
    pub(crate) fn sampler(&self, templates: usize) -> TemplateSampler {
        assert!(templates > 0, "need at least one request template");
        match *self {
            TrafficPattern::Uniform => TemplateSampler::RoundRobin(templates),
            TrafficPattern::Zipf { exponent, seed } => {
                let mut cumulative = Vec::with_capacity(templates);
                let mut total = 0.0;
                for rank in 0..templates {
                    total += 1.0 / ((rank + 1) as f64).powf(exponent);
                    cumulative.push(total);
                }
                TemplateSampler::Zipf {
                    cumulative,
                    rng: rand::rngs::StdRng::seed_from_u64(seed),
                }
            }
        }
    }
}

/// Stateful template chooser produced by [`TrafficPattern::sampler`].
pub(crate) enum TemplateSampler {
    /// `i % templates` — matches the legacy simulator's cycling.
    RoundRobin(usize),
    /// Inverse-CDF sampling over precomputed cumulative Zipf weights.
    Zipf {
        cumulative: Vec<f64>,
        rng: rand::rngs::StdRng,
    },
}

impl TemplateSampler {
    /// Template index for the `i`-th request of the phase.
    pub(crate) fn next(&mut self, i: usize) -> usize {
        match self {
            TemplateSampler::RoundRobin(templates) => i % *templates,
            TemplateSampler::Zipf { cumulative, rng } => {
                let total = *cumulative.last().expect("sampler has >= 1 template");
                let u = rng.gen_range(0.0..total);
                cumulative
                    .partition_point(|&c| c <= u)
                    .min(cumulative.len() - 1)
            }
        }
    }
}

/// One constant-rate segment of a [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioPhase {
    /// Label for reports ("pre-spike", "flash crowd", ...).
    pub label: &'static str,
    /// Offered load during this phase, requests per second.
    pub offered_qps: f64,
    /// How many requests this phase issues.
    pub requests: usize,
}

/// A multi-phase open-loop traffic scenario for the serving runtime:
/// each phase offers a constant rate, phases run back to back against
/// the same runtime so queue state carries across phase boundaries
/// (a flash crowd's backlog drains into the recovery phase).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// How request templates are chosen across the whole scenario.
    pub pattern: TrafficPattern,
    /// The phases, executed in order.
    pub phases: Vec<ScenarioPhase>,
}

impl Scenario {
    /// Sustained open-loop load: one phase at a constant rate.
    pub fn sustained(offered_qps: f64, requests: usize) -> Self {
        Scenario {
            pattern: TrafficPattern::Uniform,
            phases: vec![ScenarioPhase {
                label: "sustained",
                offered_qps,
                requests,
            }],
        }
    }

    /// A flash crowd: steady base load, a spike at `spike_qps`, then a
    /// recovery phase back at the base rate. The interesting assertions
    /// are "the spike sheds" and "the recovery does not".
    pub fn flash_crowd(
        base_qps: f64,
        spike_qps: f64,
        base_requests: usize,
        spike_requests: usize,
    ) -> Self {
        Scenario {
            pattern: TrafficPattern::Uniform,
            phases: vec![
                ScenarioPhase {
                    label: "pre-spike",
                    offered_qps: base_qps,
                    requests: base_requests,
                },
                ScenarioPhase {
                    label: "flash crowd",
                    offered_qps: spike_qps,
                    requests: spike_requests,
                },
                ScenarioPhase {
                    label: "recovery",
                    offered_qps: base_qps,
                    requests: base_requests,
                },
            ],
        }
    }

    /// Replace the template-popularity pattern (builder style).
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RetrievalEngine;
    use crate::test_fixtures::tiny_inputs;

    fn engine() -> RetrievalEngine {
        RetrievalEngine::builder()
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .expect("tiny inputs build a valid engine")
    }

    fn requests() -> Vec<Request> {
        (0..10u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q, 110 + q],
            })
            .collect()
    }

    #[test]
    fn load_test_completes_every_request_and_reports_sane_statistics() {
        let e = engine();
        let sim = ServingSimulator::new(
            &e,
            ServingConfig {
                workers: 2,
                requests_per_level: 200,
                batch_size: 8,
            },
        );
        let report = sim.run_level(&requests(), 5_000.0);
        assert_eq!(report.completed, 200);
        assert_eq!(report.no_coverage, 0);
        assert!(report.mean_ms >= 0.0);
        // the percentile ladder must be monotone
        assert!(report.p50_ms <= report.p90_ms + 1e-9);
        assert!(report.p90_ms <= report.p95_ms + 1e-9);
        assert!(report.p95_ms <= report.p99_ms + 1e-9);
        assert!(report.achieved_qps > 0.0);
    }

    #[test]
    fn simulator_serves_sharded_engines_and_handles_through_the_trait() {
        let sharded = crate::ShardedEngine::builder()
            .shards(2)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .expect("tiny inputs build a valid sharded engine");
        let config = ServingConfig {
            workers: 2,
            requests_per_level: 80,
            batch_size: 4,
        };
        let report = ServingSimulator::new(&sharded, config).run_level(&requests(), 10_000.0);
        assert_eq!(report.completed, 80);
        assert_eq!(report.no_coverage, 0);
        let handle = crate::EngineHandle::new(sharded);
        let report = ServingSimulator::new(&handle, config).run_level(&requests(), 10_000.0);
        assert_eq!(report.completed, 80);
        assert_eq!(report.no_coverage, 0);
    }

    #[test]
    fn sweep_returns_one_report_per_level() {
        let e = engine();
        let sim = ServingSimulator::new(
            &e,
            ServingConfig {
                workers: 2,
                requests_per_level: 100,
                batch_size: 4,
            },
        );
        let reports = sim.sweep(&requests(), &[1_000.0, 4_000.0]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].offered_qps, 1_000.0);
        assert_eq!(reports[1].offered_qps, 4_000.0);
    }

    #[test]
    fn uncovered_requests_are_counted_not_dropped() {
        let e = engine();
        let sim = ServingSimulator::new(
            &e,
            ServingConfig {
                workers: 2,
                requests_per_level: 50,
                batch_size: 4,
            },
        );
        let uncovered = vec![Request {
            query: 99_999,
            preclick_items: vec![],
        }];
        let report = sim.run_level(&uncovered, 10_000.0);
        assert_eq!(report.completed, 50);
        assert_eq!(report.no_coverage, 50);
    }

    #[test]
    fn batch_size_one_still_serves_everything() {
        let e = engine();
        let sim = ServingSimulator::new(
            &e,
            ServingConfig {
                workers: 3,
                requests_per_level: 60,
                batch_size: 1,
            },
        );
        let report = sim.run_level(&requests(), 50_000.0);
        assert_eq!(report.completed, 60);
    }

    #[test]
    fn percentile_helper_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.99), 3.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    /// Pins the percentile *convention*: nearest rank over the sorted
    /// sample by `idx = round((n - 1) · p)`, 0-indexed, rounding half
    /// away from zero. If the convention ever drifts (interpolation,
    /// ceil-based nearest rank, 1-indexed ranks) these hand-computed
    /// ladders catch it.
    #[test]
    fn percentile_follows_the_rounded_nearest_rank_convention() {
        // 100-rung ladder 1..=100: idx = round(99 p)
        let hundred: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&hundred, 0.50), 51.0); // round(49.5)  = 50
        assert_eq!(percentile(&hundred, 0.90), 90.0); // round(89.1)  = 89
        assert_eq!(percentile(&hundred, 0.99), 99.0); // round(98.01) = 98
                                                      // 10-rung ladder 1..=10: idx = round(9 p)
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile(&ten, 0.50), 6.0); // round(4.5)  = 5
        assert_eq!(percentile(&ten, 0.90), 9.0); // round(8.1)  = 8
        assert_eq!(percentile(&ten, 0.99), 10.0); // round(8.91) = 9
                                                  // 5-rung ladder with uneven gaps: values, not interpolations
        let gaps = vec![1.0, 1.5, 2.0, 50.0, 1000.0];
        assert_eq!(percentile(&gaps, 0.50), 2.0); // round(2.0) = 2
        assert_eq!(percentile(&gaps, 0.90), 1000.0); // round(3.6) = 4
        assert_eq!(percentile(&gaps, 0.99), 1000.0); // round(3.96) = 4
    }

    #[test]
    fn open_loop_schedule_survives_large_request_indices_at_low_qps() {
        // the old `interval * i as u32` panicked on Duration overflow once
        // interval × index exceeded Duration::MAX (and silently truncated
        // the index first); mul_f64 must keep the schedule monotone
        let interval = Duration::from_secs_f64(1.0 / 0.001); // 1000 s apart
        let far = interval.mul_f64(10_000_000.0);
        assert!(far > interval.mul_f64(9_999_999.0));
        assert_eq!(interval.mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_skewed() {
        let pattern = TrafficPattern::Zipf {
            exponent: 1.2,
            seed: 7,
        };
        let mut a = pattern.sampler(20);
        let mut b = pattern.sampler(20);
        let draws_a: Vec<usize> = (0..500).map(|i| a.next(i)).collect();
        let draws_b: Vec<usize> = (0..500).map(|i| b.next(i)).collect();
        assert_eq!(draws_a, draws_b, "same seed must replay the same stream");
        assert!(draws_a.iter().all(|&t| t < 20));
        // rank 0 must dominate: with s=1.2 over 20 templates its weight is
        // ~30% of the total — far above the 5% a uniform draw would give
        let top = draws_a.iter().filter(|&&t| t == 0).count();
        let mid = draws_a.iter().filter(|&&t| t == 10).count();
        assert!(top > 100, "rank 0 drew {top}/500 — not Zipf-skewed");
        assert!(top > mid, "rank 0 ({top}) must outdraw rank 10 ({mid})");
    }

    #[test]
    fn uniform_sampler_cycles_like_the_legacy_simulator() {
        let mut s = TrafficPattern::Uniform.sampler(3);
        let draws: Vec<usize> = (0..7).map(|i| s.next(i)).collect();
        assert_eq!(draws, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn scenario_constructors_shape_their_phases() {
        let s = Scenario::sustained(5_000.0, 400);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].offered_qps, 5_000.0);
        assert_eq!(s.phases[0].requests, 400);
        let f =
            Scenario::flash_crowd(1_000.0, 50_000.0, 200, 800).with_pattern(TrafficPattern::Zipf {
                exponent: 1.0,
                seed: 1,
            });
        assert_eq!(f.phases.len(), 3);
        assert_eq!(f.phases[0].label, "pre-spike");
        assert_eq!(f.phases[1].label, "flash crowd");
        assert_eq!(f.phases[2].label, "recovery");
        assert_eq!(f.phases[0].offered_qps, f.phases[2].offered_qps);
        assert!(f.phases[1].offered_qps > f.phases[0].offered_qps);
        assert!(matches!(f.pattern, TrafficPattern::Zipf { .. }));
    }

    #[test]
    fn queue_close_wakes_parked_consumers() {
        let q = std::sync::Arc::new(RequestQueue::new());
        let q2 = std::sync::Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_batch(4));
        std::thread::sleep(Duration::from_millis(20));
        q.push((7, Duration::ZERO));
        q.close();
        let batch = consumer.join().unwrap();
        assert_eq!(batch, vec![(7, Duration::ZERO)]);
        // after close + drain, consumers get an empty batch immediately
        assert!(q.pop_batch(4).is_empty());
    }
}
