//! Zero-downtime index updates: [`EngineHandle`] and [`EngineSnapshot`].
//!
//! The paper retrains incrementally every day and refreshes the serving
//! indices without taking traffic down (Section V-C). The serving-side
//! primitive that makes that safe is the *snapshot swap*: the live engine
//! sits behind an atomically replaceable [`Arc`], worker threads pin the
//! current snapshot for the duration of a request (or a batch), and a
//! rebuild publishes a new snapshot with one pointer swap. In-flight
//! requests keep the generation they pinned — no locks are held while
//! serving, no request ever observes a half-replaced index, and the old
//! generation is freed exactly when its last in-flight request finishes.
//!
//! ```no_run
//! use amcad_retrieval::{EngineHandle, Retrieve, Request};
//! # fn rebuild() -> amcad_retrieval::RetrievalEngine { unimplemented!() }
//!
//! let handle = EngineHandle::new(rebuild());
//! // worker threads: pin a snapshot per request
//! let snapshot = handle.snapshot();
//! let response = snapshot.retrieve(&Request { query: 7, preclick_items: vec![] })?;
//! println!("served by generation {}", snapshot.generation());
//! // control plane: swap in tonight's rebuild — zero downtime
//! let generation = handle.publish(rebuild());
//! assert_eq!(handle.generation(), generation);
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```
//!
//! Any [`Retrieve`] implementation can sit behind a handle — a single
//! [`crate::RetrievalEngine`], a [`crate::ShardedEngine`], even another
//! handle (though one level is all a deployment needs).

use std::path::Path;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::delta::{IndexDelta, ShardedDeltaBuilder};
use crate::engine::{Request, RetrievalResponse, Retrieve};
use crate::error::RetrievalError;

/// One immutable published generation of the serving engine. Cheap to
/// clone (an [`Arc`] bump), safe to serve from concurrently, and
/// permanently attributable: every response obtained through a snapshot
/// came from exactly this generation's indices.
pub struct EngineSnapshot {
    engine: Arc<dyn Retrieve>,
    generation: u64,
}

impl EngineSnapshot {
    /// The publish counter this snapshot was installed at (the initial
    /// engine is generation 1).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The engine behind this snapshot.
    pub fn engine(&self) -> &dyn Retrieve {
        self.engine.as_ref()
    }
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl Retrieve for EngineSnapshot {
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        self.engine.retrieve(request)
    }

    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        self.engine.retrieve_batch(requests)
    }
}

/// The hot-swappable serving entry point: holds the current
/// [`EngineSnapshot`] behind a reader-writer lock that is only ever held
/// long enough to clone or replace an [`Arc`] — never while serving.
///
/// Workers either call [`EngineHandle::retrieve`] directly (each request
/// pins the then-current snapshot) or call [`EngineHandle::snapshot`] to
/// pin one generation across several requests. [`EngineHandle::publish`]
/// installs a new engine build with a single pointer swap; concurrent
/// retrievals are never blocked behind index construction because the
/// build happens entirely before `publish` is called.
pub struct EngineHandle {
    current: RwLock<Arc<EngineSnapshot>>,
}

impl EngineHandle {
    /// Create a handle serving `engine` as generation 1.
    pub fn new(engine: impl Retrieve + 'static) -> Self {
        Self::from_arc(Arc::new(engine))
    }

    /// Create a handle around an already-shared engine (generation 1).
    pub fn from_arc(engine: Arc<dyn Retrieve>) -> Self {
        Self::from_arc_at(engine, 1)
    }

    /// Create a handle serving `engine` at an explicit generation — the
    /// warm-restart constructor: a handle restored from a snapshot taken
    /// at generation G resumes counting publishes from G, so the
    /// generation sequence after a restart is indistinguishable from the
    /// never-restarted process.
    pub(crate) fn from_arc_at(engine: Arc<dyn Retrieve>, generation: u64) -> Self {
        EngineHandle {
            current: RwLock::new(Arc::new(EngineSnapshot { engine, generation })),
        }
    }

    /// Persist the deployment `builder` maintains — and this handle
    /// serves — to `path` as a durable snapshot stamped with the current
    /// generation (returned on success). The snapshot captures the full
    /// serving state (see [`crate::store`]); pair with
    /// [`EngineHandle::load`] for the warm restart, replaying any
    /// [`IndexDelta`]s newer than the returned generation through
    /// [`EngineHandle::publish_delta`] to catch up.
    ///
    /// The caller is responsible for `builder` being the one whose
    /// generations this handle publishes — the snapshot pairs the
    /// builder's state with this handle's generation counter.
    pub fn save_snapshot(
        &self,
        builder: &ShardedDeltaBuilder,
        path: impl AsRef<Path>,
    ) -> Result<u64, RetrievalError> {
        let generation = self.generation();
        crate::store::write_snapshot(path.as_ref(), builder, generation)?;
        Ok(generation)
    }

    /// Warm-restart a deployment from a snapshot written by
    /// [`EngineHandle::save_snapshot`]: reconstruct the
    /// [`ShardedDeltaBuilder`] (no index rebuild — the decoded indices
    /// are served as-is) and a handle already at the snapshot's
    /// generation. Applying the deltas published after the snapshot, in
    /// order, through [`EngineHandle::publish_delta`] yields a process
    /// byte-identical to one that never restarted — rankings, logical
    /// stats and generation numbers alike (property-tested in
    /// [`crate::store`]).
    pub fn load(
        path: impl AsRef<Path>,
    ) -> Result<(EngineHandle, ShardedDeltaBuilder), RetrievalError> {
        let (generation, builder) = crate::store::read_snapshot(path.as_ref())?;
        let engine = builder.engine()?;
        Ok((
            EngineHandle::from_arc_at(Arc::new(engine), generation),
            builder,
        ))
    }

    /// Pin the current snapshot. The returned [`Arc`] keeps that
    /// generation alive (and attributable) for as long as the caller
    /// holds it, regardless of how many publishes happen meanwhile.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.read())
    }

    /// Generation of the currently published snapshot.
    pub fn generation(&self) -> u64 {
        self.read().generation
    }

    /// Atomically replace the serving engine with a freshly built one —
    /// the zero-downtime index update. Returns the new generation.
    /// In-flight requests finish on the snapshot they pinned; new
    /// requests observe the new generation immediately.
    pub fn publish(&self, engine: impl Retrieve + 'static) -> u64 {
        self.publish_arc(Arc::new(engine))
    }

    /// The incremental flavour of [`EngineHandle::publish`]: apply
    /// `delta` through `builder` — touched shards update their ad-side
    /// indices in place, untouched shards reuse their [`Arc`]'d index
    /// storage — and atomically publish the resulting generation. Returns
    /// the new generation on success; on `Err` (invalid delta, or a delta
    /// retiring the entire corpus) neither the builder nor the currently
    /// served generation changes, so readers are never exposed to a
    /// rejected delta. Like every publish, readers pin whole snapshots:
    /// a request observes either the pre-delta or the post-delta
    /// generation in full, never a torn mix.
    pub fn publish_delta(
        &self,
        builder: &mut ShardedDeltaBuilder,
        delta: &IndexDelta,
    ) -> Result<u64, RetrievalError> {
        Ok(self.publish(builder.apply(delta)?))
    }

    /// [`EngineHandle::publish`] for an already-shared engine.
    pub fn publish_arc(&self, engine: Arc<dyn Retrieve>) -> u64 {
        let mut guard = self.current.write();
        let generation = guard.generation + 1;
        *guard = Arc::new(EngineSnapshot { engine, generation });
        generation
    }

    fn read(&self) -> parking_lot::RwLockReadGuard<'_, Arc<EngineSnapshot>> {
        self.current.read()
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl Retrieve for EngineHandle {
    /// Serve through the currently published snapshot (pinned per call).
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        self.snapshot().retrieve(request)
    }

    /// A batch pins ONE snapshot for all its requests, so a publish
    /// landing mid-batch cannot produce a mixed-generation response set.
    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        self.snapshot().retrieve_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RetrievalEngine;
    use crate::test_fixtures::tiny_inputs;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    fn engine(top_k: usize) -> RetrievalEngine {
        RetrievalEngine::builder()
            .top_k(top_k)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap()
    }

    #[test]
    fn publish_bumps_the_generation_and_swaps_the_engine() {
        let handle = EngineHandle::new(engine(8));
        assert_eq!(handle.generation(), 1);
        let pinned = handle.snapshot();
        assert_eq!(handle.publish(engine(3)), 2);
        assert_eq!(handle.generation(), 2);
        // the pinned snapshot still serves generation 1
        assert_eq!(pinned.generation(), 1);
        let request = Request {
            query: 3,
            preclick_items: vec![101],
        };
        let old = pinned.retrieve(&request).unwrap();
        let new = handle.retrieve(&request).unwrap();
        // top_k 8 vs 3 produce different posting depths — outputs differ
        assert_ne!(old, new, "generations must actually differ for this test");
    }

    #[test]
    fn handle_serves_any_retrieve_implementation() {
        let sharded = crate::ShardedEngine::builder()
            .shards(2)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        let handle = EngineHandle::new(sharded);
        let response = handle
            .retrieve(&Request {
                query: 1,
                preclick_items: vec![120],
            })
            .unwrap();
        assert!(!response.ads.is_empty());
        let batch = handle.retrieve_batch(&[Request {
            query: 1,
            preclick_items: vec![120],
        }]);
        assert_eq!(batch[0].as_ref().unwrap(), &response);
    }

    #[test]
    fn publish_delta_bumps_the_generation_and_errors_leave_it_untouched() {
        use crate::delta::IndexDelta;
        use crate::test_fixtures::random_points;

        let inputs = tiny_inputs();
        let mut builder = crate::ShardedDeltaBuilder::new(
            &inputs,
            crate::ShardedEngine::builder()
                .shards(2)
                .top_k(8)
                .threads(1),
        )
        .unwrap();
        let handle = EngineHandle::new(builder.engine().unwrap());
        assert_eq!(handle.generation(), 1);
        let delta = IndexDelta {
            added_ads_qa: random_points(300..303, 1),
            added_ads_ia: random_points(300..303, 2),
            retired_ads: vec![200],
        };
        assert_eq!(handle.publish_delta(&mut builder, &delta).unwrap(), 2);
        assert_eq!(handle.generation(), 2);
        // a rejected delta bumps nothing and the handle keeps serving
        let bad = IndexDelta::retire_only(&inputs, vec![9999]);
        assert_eq!(
            handle.publish_delta(&mut builder, &bad).unwrap_err(),
            RetrievalError::UnknownAd { ad: 9999 }
        );
        assert_eq!(handle.generation(), 2);
        assert!(handle
            .retrieve(&Request {
                query: 3,
                preclick_items: vec![103],
            })
            .is_ok());
    }

    /// The delta flavour of the hot-swap acceptance test: worker threads
    /// retrieve concurrently while the control plane publishes delta
    /// after delta (retiring and re-adding one distinguishing ad). Every
    /// response must equal one generation's expected output in full — a
    /// torn delta (a request seeing the retired ad in one index but not
    /// the other, or a half-swapped shard) would match neither — and
    /// generations stay strictly sequential.
    #[test]
    fn concurrent_readers_never_observe_a_torn_delta() {
        use crate::delta::IndexDelta;

        let inputs = tiny_inputs();
        let topology = crate::ShardedEngine::builder()
            .shards(2)
            .top_k(8)
            .threads(1);
        let mut builder = crate::ShardedDeltaBuilder::new(&inputs, topology).unwrap();
        let request = Request {
            query: 3,
            preclick_items: vec![101, 115],
        };
        // the toggled ad: the top ad of the initial response, so its
        // retirement visibly changes the ranking
        let with_ad = builder.engine().unwrap().retrieve(&request).unwrap();
        let toggled = with_ad.ads[0].ad;
        let held_out_qa = inputs.ads_qa.filtered(|id| id == toggled);
        let held_out_ia = inputs.ads_ia.filtered(|id| id == toggled);
        let retire = IndexDelta::retire_only(&inputs, vec![toggled]);
        let re_add = IndexDelta {
            added_ads_qa: held_out_qa,
            added_ads_ia: held_out_ia,
            retired_ads: Vec::new(),
        };
        // delta exactness makes expected outputs reproducible: re-adding
        // the identical points restores the original response exactly
        let without_ad = {
            let mut probe = builder.clone();
            let engine = probe.apply(&retire).unwrap();
            engine.retrieve(&request).unwrap()
        };
        assert_ne!(with_ad, without_ad);
        assert_ne!(without_ad.ads[0].ad, toggled);

        let handle = EngineHandle::new(builder.engine().unwrap());
        let stop = AtomicBool::new(false);
        let served = AtomicU64::new(0);
        let publishes = 30u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = handle.snapshot();
                        let generation = snapshot.generation();
                        let response = snapshot
                            .retrieve(&request)
                            .expect("a delta publish must never surface an error");
                        // odd generations hold the ad, even ones do not;
                        // anything else is a torn delta
                        let expected = if generation % 2 == 1 {
                            &with_ad
                        } else {
                            &without_ad
                        };
                        assert_eq!(
                            &response, expected,
                            "generation {generation} served a torn or foreign response"
                        );
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..publishes {
                let delta = if i % 2 == 0 { &retire } else { &re_add };
                let generation = handle
                    .publish_delta(&mut builder, delta)
                    .expect("toggling one ad is always a valid delta");
                assert_eq!(generation, i + 2, "generations are strictly sequential");
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(handle.generation(), publishes + 1);
        assert!(
            served.load(Ordering::Relaxed) > 0,
            "workers must have served during the delta storm"
        );
    }

    /// The acceptance-criterion hot-swap test: worker threads retrieve
    /// concurrently while the control plane publishes snapshot after
    /// snapshot. No request may error, no torn read may surface (every
    /// response must equal one generation's expected output), and every
    /// response must be attributable to exactly one generation.
    #[test]
    fn concurrent_retrievals_observe_whole_generations_only() {
        let request = Request {
            query: 3,
            preclick_items: vec![101, 115],
        };
        // two engine builds with distinguishable outputs
        let (a, b) = (engine(8), engine(3));
        let expected_a = a.retrieve(&request).unwrap();
        let expected_b = b.retrieve(&request).unwrap();
        assert_ne!(expected_a, expected_b);

        let handle = EngineHandle::new(a);
        let stop = AtomicBool::new(false);
        let served = AtomicU64::new(0);
        let publishes = 40u64;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let snapshot = handle.snapshot();
                        let generation = snapshot.generation();
                        let response = snapshot
                            .retrieve(&request)
                            .expect("hot swap must never surface an error");
                        // attribution: odd generations serve build A,
                        // even generations build B — a torn read would
                        // match neither expected output
                        let expected = if generation % 2 == 1 {
                            &expected_a
                        } else {
                            &expected_b
                        };
                        assert_eq!(
                            &response, expected,
                            "generation {generation} served a foreign response"
                        );
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for i in 0..publishes {
                let next = if i % 2 == 0 { engine(3) } else { engine(8) };
                let generation = handle.publish(next);
                assert_eq!(generation, i + 2, "generations are strictly sequential");
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(handle.generation(), publishes + 1);
        assert!(
            served.load(Ordering::Relaxed) > 0,
            "workers must have served during the publish storm"
        );
    }
}
