//! Persistent parked worker pool.
//!
//! [`PersistentPool`] is the long-lived successor to the scoped
//! [`WorkerPool`](crate::pool::WorkerPool): instead of spawning a fresh
//! set of scoped threads for every call, it spawns its workers once and
//! parks them on a condvar between requests.  The serving path
//! ([`ShardedEngine`](crate::shard::ShardedEngine) fan-out, batch dedup
//! gathers, and hedged sub-requests) submits work to the resident
//! threads, so steady-state request processing performs zero thread
//! spawns.  The scoped pool remains in use for offline builds, where a
//! burst of construction parallelism per call is exactly right.
//!
//! Two submission shapes are supported:
//!
//! - [`PersistentPool::run`] — the fork/join shape the scoped pool
//!   offered: `jobs` indexed closures stolen atomically by index, the
//!   results re-assembled in job order.  The caller participates in the
//!   work itself (it is one more worker for the duration of the call),
//!   which both guarantees progress on a single-threaded pool and makes
//!   nested `run` calls from inside a pool job deadlock-free.
//! - [`PersistentPool::spawn`] — a fire-and-forget task, used by the
//!   hedged-request path to launch replica gathers whose results are
//!   delivered through a side channel rather than a join.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
// amcad-lint: allow(no-std-sync-primitives) — the park/wake protocol needs std::sync::Condvar, which only pairs with std MutexGuard; poison is recovered manually in lock() below
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Lock a mutex, recovering the guard if a previous holder panicked.
///
/// Pool invariants are maintained by atomic counters, not by the data
/// under the mutexes, so a poisoned lock is always safe to re-enter;
/// propagating the poison would instead wedge every parked worker.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fork/join batch shared between the submitting caller and the
/// resident workers.
///
/// # Safety
///
/// `job` is a raw pointer to a closure that lives on the submitting
/// caller's stack.  The protocol that keeps every dereference inside
/// the closure's lifetime:
///
/// - a worker only dereferences `job` after claiming an index with
///   `next.fetch_add(1)` that satisfies `i < jobs`;
/// - `remaining` starts at `jobs` and is decremented exactly once per
///   claimed index, *after* the closure call for that index returns;
/// - the submitting `run` call blocks until `remaining == 0`, i.e.
///   until every claimed index has finished executing, before its stack
///   frame (and the closure) can unwind;
/// - every `fetch_add` after the first `jobs` claims returns an index
///   `>= jobs`, so late workers that still hold the `Arc<BatchState>`
///   never touch `job` again — they only read the heap-allocated
///   atomic, observe exhaustion, and drop their reference.
struct BatchState {
    job: *const (dyn Fn(usize) + Sync),
    jobs: usize,
    next: AtomicUsize,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `job` is only dereferenced under the claim protocol described
// on the struct; all other fields are ordinary sync primitives.
unsafe impl Send for BatchState {}
unsafe impl Sync for BatchState {}

impl BatchState {
    /// Steal and execute job indices until the batch is exhausted.
    ///
    /// Called by both the resident workers and the submitting caller.
    /// A panicking job records its payload (first panic wins) and keeps
    /// the accounting intact so the submitter always unblocks.
    fn work(&self) {
        // amcad-lint: allow(unbounded-fanout) — index-claim loop: exits once the shared counter passes `jobs`, which the submitter fixes per batch
        loop {
            // index claim only: RMW atomicity already hands out each index
            // exactly once, and the closure pointer it gates was published
            // by the queue mutex — no extra edge needed, so Relaxed
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.jobs {
                return;
            }
            // SAFETY: `i < jobs`, so the submitting `run` frame is still
            // blocked in `wait()` and the closure is alive (see struct docs).
            let job = unsafe { &*self.job };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                let mut slot = lock(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut remaining = lock(&self.remaining);
            *remaining -= 1;
            if *remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Whether every job index has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        // advisory queue-cleanup check: a stale read only delays popping
        // the finished batch by one wakeup, so Relaxed
        self.next.load(Ordering::Relaxed) >= self.jobs
    }

    /// Block until every claimed job index has finished executing.
    fn wait(&self) {
        let mut remaining = lock(&self.remaining);
        // amcad-lint: allow(unbounded-fanout) — condvar wait loop: bounded by the batch's job count; every finished job decrements `remaining` and the last one notifies
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Work queued for the resident workers.
enum Task {
    /// A fork/join batch; workers steal indices until it is exhausted.
    Batch(Arc<BatchState>),
    /// A fire-and-forget task, executed by exactly one worker.
    Once(Box<dyn FnOnce() + Send + 'static>),
}

struct PoolQueue {
    tasks: VecDeque<Task>,
    /// Inside the mutex on purpose: a flag outside it races with the
    /// condvar wait (worker observes `false`, `Drop` sets it and
    /// notifies before the worker parks, worker sleeps forever).
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
}

/// A fixed-width pool of condvar-parked worker threads, spawned once
/// and reused for every request (see the module docs).
pub struct PersistentPool {
    shared: Arc<PoolShared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PersistentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl PersistentPool {
    /// Create a pool with `threads` total parallelism (clamped to at
    /// least 1).  `threads - 1` resident workers are spawned: the
    /// caller of [`run`](Self::run) participates in every batch, so a
    /// width-1 pool spawns no threads at all and runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            threads,
            workers,
        }
    }

    /// Total parallelism of the pool (resident workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` closures, returning their results in job order.
    ///
    /// The closure receives the job index.  Work is stolen atomically
    /// by index across the resident workers *and the calling thread*,
    /// which claims indices until the batch is exhausted and then waits
    /// for stragglers.  Panics in any job are re-raised here after the
    /// whole batch has settled; the pool remains usable afterwards.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers.is_empty() || jobs <= 1 {
            return (0..jobs).map(f).collect();
        }

        // One result slot per job; each index is claimed (and therefore
        // written) exactly once, so the disjoint writes need no lock.
        let slots: Vec<std::cell::UnsafeCell<Option<T>>> = (0..jobs)
            .map(|_| std::cell::UnsafeCell::new(None))
            .collect();
        struct Slots<'s, T>(&'s [std::cell::UnsafeCell<Option<T>>]);
        // SAFETY: every index is claimed by exactly one thread via the
        // batch's `fetch_add`, so no two threads touch the same cell.
        unsafe impl<T: Send> Sync for Slots<'_, T> {}
        let shared_slots = Slots(&slots);

        let f = &f;
        let runner = move |i: usize| {
            // Borrow the whole wrapper so the closure captures `Slots`
            // (which is `Sync`), not the raw slice field (which is not).
            let slots = &shared_slots;
            let value = f(i);
            // SAFETY: index `i` was claimed exactly once (see Slots).
            unsafe { *slots.0[i].get() = Some(value) };
        };
        let erased: &(dyn Fn(usize) + Sync) = &runner;
        // SAFETY: lifetime erasure — the field type carries the default
        // `'static` bound, but `runner` only needs to outlive the batch,
        // which `wait()` below guarantees before this frame unwinds (see
        // the `BatchState` safety protocol).
        let erased: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(erased)
        };
        let batch = Arc::new(BatchState {
            job: erased,
            jobs,
            next: AtomicUsize::new(0),
            remaining: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        {
            let mut queue = lock(&self.shared.queue);
            queue.tasks.push_back(Task::Batch(Arc::clone(&batch)));
        }
        self.shared.work_ready.notify_all();

        // The caller is a worker too: guarantees progress even if every
        // resident worker is busy, and lets a pool job submit a nested
        // batch without deadlocking.
        batch.work();
        batch.wait();

        if let Some(payload) = lock(&batch.panic).take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every job index is claimed exactly once")
            })
            .collect()
    }

    /// Submit a fire-and-forget task to the resident workers.
    ///
    /// On a width-1 pool (no resident workers) the task runs inline on
    /// the calling thread — there is nobody else to run it.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'static,
    {
        if self.workers.is_empty() {
            task();
            return;
        }
        {
            let mut queue = lock(&self.shared.queue);
            queue.tasks.push_back(Task::Once(Box::new(task)));
        }
        self.shared.work_ready.notify_one();
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            // a worker that panicked outside `catch_unwind` is already
            // accounted for; joining its handle just collects the payload
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    // amcad-lint: allow(unbounded-fanout) — worker lifetime loop: returns via the shutdown flag checked under the queue lock; each iteration executes one queued task
    loop {
        let task = {
            let mut queue = lock(&shared.queue);
            // amcad-lint: allow(unbounded-fanout) — dequeue loop: breaks with a task or returns on shutdown; parks on the condvar while the queue is empty
            loop {
                // drop exhausted batches so later tasks become visible
                // amcad-lint: allow(unbounded-fanout) — bounded by the queue length: each iteration pops one exhausted batch
                while matches!(queue.tasks.front(), Some(Task::Batch(b)) if b.exhausted()) {
                    queue.tasks.pop_front();
                }
                match queue.tasks.front() {
                    Some(Task::Batch(batch)) => break Task::Batch(Arc::clone(batch)),
                    Some(Task::Once(_)) => {
                        let Some(task) = queue.tasks.pop_front() else {
                            unreachable!("front() just matched")
                        };
                        break task;
                    }
                    None if queue.shutdown => return,
                    None => {
                        queue = shared
                            .work_ready
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        match task {
            Task::Batch(batch) => batch.work(),
            Task::Once(task) => {
                // a panicking fire-and-forget task must not take the
                // resident worker down with it
                let _ = catch_unwind(AssertUnwindSafe(task));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_job_order_across_widths_and_reuse() {
        for threads in [1, 2, 4, 7] {
            let pool = PersistentPool::new(threads);
            // reuse the same pool across multiple runs: the workers are
            // resident, not per-call
            for round in 0..3usize {
                let out = pool.run(13, |i| i * i + round);
                let expect: Vec<usize> = (0..13).map(|i| i * i + round).collect();
                assert_eq!(out, expect, "threads={threads} round={round}");
            }
        }
    }

    #[test]
    fn zero_jobs_and_width_clamp() {
        let pool = PersistentPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out: Vec<usize> = pool.run(0, |i| i);
        assert!(out.is_empty());
        let out = pool.run(1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = PersistentPool::new(4);
        let counters: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(64, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i}");
        }
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        let pool = PersistentPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        }));
        let payload = result.expect_err("the job panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("job 5 exploded"), "got: {msg}");
        // the pool survives a panicking batch
        let out = pool.run(6, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn jobs_see_borrowed_state() {
        let pool = PersistentPool::new(4);
        let data: Vec<u64> = (0..32).map(|i| i * 3).collect();
        let out = pool.run(32, |i| data[i] + 1);
        let expect: Vec<u64> = (0..32).map(|i| i * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn spawned_tasks_execute() {
        let pool = PersistentPool::new(3);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "spawned tasks did not all run"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn spawn_runs_inline_on_a_width_one_pool() {
        let pool = PersistentPool::new(1);
        let hit = AtomicU64::new(0);
        pool.spawn(|| {});
        // inline execution means the side effect is visible immediately
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let _ = hit;
    }

    #[test]
    fn panicking_spawned_task_leaves_workers_alive() {
        let pool = PersistentPool::new(2);
        pool.spawn(|| panic!("fire-and-forget panic"));
        // the sole resident worker must still process both batches and
        // further spawns after eating the panic
        let out = pool.run(8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while hits.load(Ordering::Relaxed) < 1 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn nested_run_from_inside_a_job_makes_progress() {
        let pool = PersistentPool::new(2);
        let out = pool.run(4, |i| {
            // the caller of the inner run participates in its batch, so
            // this cannot deadlock even with every worker busy
            let inner = pool.run(3, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..4).map(|i| (0..3).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }
}
