//! The persistent serving runtime: admission control, deadlines, load
//! shedding and warm generation rollout in front of any [`Retrieve`]
//! implementation.
//!
//! The [`ServingSimulator`](crate::ServingSimulator) measures an engine;
//! this module *is* the serving tier. A [`ServingRuntime`] owns a bounded
//! admission queue and a fixed set of resident worker threads (parked on
//! a condvar when idle — spawned once, reused for every request):
//!
//! * **Admission control** — [`ServingRuntime::submit`] rejects a request
//!   with the typed [`RetrievalError::Overloaded`] the moment the queue
//!   is at its configured depth, instead of letting queueing delay grow
//!   without bound. Under overload the runtime answers a subset of
//!   requests inside the SLO rather than answering all of them
//!   arbitrarily late.
//! * **Per-request deadlines** — a queued request that ages past
//!   [`RuntimeConfig::deadline`] before a worker picks it up is shed with
//!   the same typed error; its ticket resolves immediately rather than
//!   wasting service capacity on an answer nobody is waiting for.
//! * **Batch dedup for free** — workers drain up to
//!   [`RuntimeConfig::batch_size`] queued requests per wakeup and serve
//!   them through [`Retrieve::retrieve_batch`], so the engine-level
//!   cross-request scan dedup engages exactly when load (and therefore
//!   key overlap) is highest.
//! * **Traffic scenarios** — [`ServingRuntime::run_scenario`] drives the
//!   runtime with open-loop [`Scenario`]s (sustained load, flash crowds,
//!   Zipf-skewed template popularity) and reports
//!   [`LoadReport`]s extended with shed / timeout / hedge counters and
//!   goodput.
//! * **Warm generation rollout** — [`warm_rollout`] models the
//!   replica-by-replica bring-up of a snapshot generation over a serving
//!   [`ShardedEngine`]: each replica is drained (weight 0, siblings keep
//!   serving generation G), labeled with the incoming generation, and
//!   restored; data visibility then flips atomically at the
//!   [`EngineHandle`] publish. Hedged requests
//!   ([`ShardedEngineBuilder::hedge_delay`](crate::ShardedEngineBuilder::hedge_delay))
//!   compose with the runtime: attach the engine's
//!   [`HedgeControl`] via
//!   [`ServingRuntime::with_hedge_metrics`] and scenario reports carry
//!   hedge counts.
//!
//! The parked fork/join pool the sharded fan-out itself runs on lives in
//! [`park_pool`].

pub mod park_pool;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
// amcad-lint: allow(no-std-sync-primitives) — the admission queue parks workers on std::sync::Condvar, which only pairs with std MutexGuard; poison is recovered manually in lock() below
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{Request, RetrievalResponse, Retrieve};
use crate::error::RetrievalError;
use crate::serving::{percentile, LoadReport, Scenario, ScenarioPhase, TemplateSampler};
use crate::shard::{HedgeControl, ShardedEngine};
use crate::snapshot::EngineHandle;

/// Lock a mutex, recovering from a poisoned guard (runtime invariants
/// live in atomics, not the data under the mutexes).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of a [`ServingRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Resident serving worker threads (must be positive).
    pub workers: usize,
    /// Admission-queue depth: a request arriving while this many are
    /// already queued is shed with [`RetrievalError::Overloaded`]
    /// (must be positive).
    pub queue_depth: usize,
    /// Per-request deadline: a request still queued this long after
    /// submission is shed instead of served, and a completion later than
    /// this counts toward `timed_out` rather than goodput.
    pub deadline: Duration,
    /// Requests a worker drains per wakeup; several live requests are
    /// served through [`Retrieve::retrieve_batch`], engaging the
    /// engine-level cross-request scan dedup.
    pub batch_size: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            queue_depth: 256,
            deadline: Duration::from_millis(25),
            batch_size: 8,
        }
    }
}

/// Observability counters of a [`ServingRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests served to completion (including no-coverage answers).
    pub completed: u64,
    /// Requests shed at admission because the queue was full.
    pub shed_queue_full: u64,
    /// Requests shed at dequeue because they aged past their deadline.
    pub shed_deadline: u64,
    /// Requests currently queued.
    pub queue_len: usize,
}

/// The pending outcome of one admitted request.
struct TicketState {
    outcome: Mutex<Option<(Result<RetrievalResponse, RetrievalError>, Instant)>>,
    done: Condvar,
}

impl TicketState {
    fn new() -> Self {
        TicketState {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    /// Resolve the ticket (first resolution wins; later ones are
    /// impossible by construction but harmless).
    fn fulfill(&self, result: Result<RetrievalResponse, RetrievalError>) {
        let mut slot = lock(&self.outcome);
        if slot.is_none() {
            *slot = Some((result, Instant::now()));
            self.done.notify_all();
        }
    }
}

/// A handle to one admitted request: redeem it with [`Ticket::wait`] for
/// the response. Every admitted ticket resolves — served, deadline-shed,
/// or shed at runtime shutdown — so waiting can never hang.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let resolved = lock(&self.state.outcome).is_some();
        f.debug_struct("Ticket")
            .field("resolved", &resolved)
            .finish()
    }
}

impl Ticket {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<RetrievalResponse, RetrievalError> {
        self.wait_full().0
    }

    /// Block until the request resolves; also return the completion
    /// timestamp the worker stamped (the scenario driver computes
    /// per-request latency from it).
    pub(crate) fn wait_full(self) -> (Result<RetrievalResponse, RetrievalError>, Instant) {
        let mut guard = lock(&self.state.outcome);
        // amcad-lint: allow(unbounded-fanout) — condvar wait loop: bounded by ticket fulfilment (or shed); spurious wakeups re-check the outcome slot
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self
                .state
                .done
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One queued request.
struct QueuedRequest {
    request: Request,
    enqueued: Instant,
    ticket: Arc<TicketState>,
}

struct RuntimeQueue {
    items: VecDeque<QueuedRequest>,
    /// Inside the mutex (see `park_pool::PoolQueue`): a flag outside it
    /// can miss the shutdown wakeup and park a worker forever.
    shutdown: bool,
}

struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed_queue: AtomicU64,
    shed_deadline: AtomicU64,
}

struct RuntimeShared {
    engine: Arc<dyn Retrieve>,
    queue: Mutex<RuntimeQueue>,
    ready: Condvar,
    config: RuntimeConfig,
    counters: Counters,
}

/// A persistent serving tier around any [`Retrieve`] engine: a bounded
/// admission queue drained by resident parked workers, with per-request
/// deadlines and SLO-driven load shedding (see the module docs).
pub struct ServingRuntime {
    shared: Arc<RuntimeShared>,
    workers: Vec<JoinHandle<()>>,
    hedge: Option<Arc<HedgeControl>>,
}

impl std::fmt::Debug for ServingRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingRuntime")
            .field("config", &self.shared.config)
            .field("hedged", &self.hedge.is_some())
            .finish()
    }
}

impl ServingRuntime {
    /// Spawn the runtime's resident workers around `engine`.
    pub fn new(engine: Arc<dyn Retrieve>, config: RuntimeConfig) -> Result<Self, RetrievalError> {
        if config.workers == 0 {
            return Err(RetrievalError::InvalidConfig(
                "serving runtime needs at least one worker".into(),
            ));
        }
        if config.queue_depth == 0 {
            return Err(RetrievalError::InvalidConfig(
                "admission queue depth must be positive".into(),
            ));
        }
        let config = RuntimeConfig {
            batch_size: config.batch_size.max(1),
            ..config
        };
        let shared = Arc::new(RuntimeShared {
            engine,
            queue: Mutex::new(RuntimeQueue {
                items: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            config,
            counters: Counters {
                admitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                shed_queue: AtomicU64::new(0),
                shed_deadline: AtomicU64::new(0),
            },
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(ServingRuntime {
            shared,
            workers,
            hedge: None,
        })
    }

    /// Attach the serving engine's [`HedgeControl`] so scenario reports
    /// carry hedge issue/win counts (see
    /// [`ShardedEngine::hedge_control`]).
    pub fn with_hedge_metrics(mut self, control: Arc<HedgeControl>) -> Self {
        self.hedge = Some(control);
        self
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Current observability counters.
    pub fn stats(&self) -> RuntimeStats {
        let c = &self.shared.counters;
        RuntimeStats {
            // monotonic telemetry counters: a momentarily stale read is a
            // correct (slightly older) snapshot, so Relaxed throughout
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed_queue_full: c.shed_queue.load(Ordering::Relaxed),
            shed_deadline: c.shed_deadline.load(Ordering::Relaxed),
            queue_len: lock(&self.shared.queue).items.len(),
        }
    }

    /// Admit one request. `Err(Overloaded)` when the admission queue is
    /// at its configured depth (or the runtime is shutting down) — the
    /// request was *not* queued and will never be served.
    pub fn submit(&self, request: Request) -> Result<Ticket, RetrievalError> {
        let overloaded = || RetrievalError::Overloaded {
            queue_depth: self.shared.config.queue_depth,
            deadline: self.shared.config.deadline,
        };
        let ticket = Arc::new(TicketState::new());
        {
            let mut queue = lock(&self.shared.queue);
            if queue.shutdown || queue.items.len() >= self.shared.config.queue_depth {
                self.shared
                    .counters
                    .shed_queue
                    .fetch_add(1, Ordering::Relaxed); // monotonic telemetry only
                return Err(overloaded());
            }
            queue.items.push_back(QueuedRequest {
                request,
                enqueued: Instant::now(),
                ticket: Arc::clone(&ticket),
            });
        }
        self.shared
            .counters
            .admitted
            .fetch_add(1, Ordering::Relaxed); // monotonic telemetry only
        self.shared.ready.notify_one();
        Ok(Ticket { state: ticket })
    }

    /// Submit and wait — the synchronous convenience path.
    pub fn retrieve_blocking(
        &self,
        request: &Request,
    ) -> Result<RetrievalResponse, RetrievalError> {
        self.submit(request.clone())?.wait()
    }

    /// Drive the runtime with an open-loop traffic [`Scenario`]: one
    /// [`LoadReport`] per phase. Requests arrive on each phase's
    /// fixed-rate schedule regardless of completions (open loop —
    /// overload cannot slow the arrivals down, exactly the regime
    /// admission control exists for); the template sampler persists
    /// across phases, so Zipf popularity spans the whole scenario.
    /// Queue state also carries across phases: a flash crowd's backlog
    /// drains into the recovery phase.
    pub fn run_scenario(&self, templates: &[Request], scenario: &Scenario) -> Vec<LoadReport> {
        assert!(!templates.is_empty(), "need at least one request template");
        let mut sampler = scenario.pattern.sampler(templates.len());
        scenario
            .phases
            .iter()
            .map(|phase| self.run_phase(templates, &mut sampler, phase))
            .collect()
    }

    /// One constant-rate open-loop phase (see
    /// [`ServingRuntime::run_scenario`]).
    fn run_phase(
        &self,
        templates: &[Request],
        sampler: &mut TemplateSampler,
        phase: &ScenarioPhase,
    ) -> LoadReport {
        assert!(phase.offered_qps > 0.0, "offered QPS must be positive");
        let interval = Duration::from_secs_f64(1.0 / phase.offered_qps);
        let deadline = self.shared.config.deadline;
        let hedge_before = self.hedge.as_ref().map(|h| (h.issued(), h.wins()));

        let start = Instant::now();
        let mut pending: Vec<(Duration, Ticket)> = Vec::with_capacity(phase.requests);
        let mut shed = 0usize;
        for i in 0..phase.requests {
            let scheduled = interval.mul_f64(i as f64);
            let now = start.elapsed();
            if scheduled > now {
                std::thread::sleep(scheduled - now);
            }
            let template = &templates[sampler.next(i)];
            match self.submit(template.clone()) {
                Ok(ticket) => pending.push((scheduled, ticket)),
                Err(_) => shed += 1, // admission-shed: Overloaded by construction
            }
        }

        let mut ms: Vec<f64> = Vec::with_capacity(pending.len());
        let mut no_coverage = 0usize;
        let mut timed_out = 0usize;
        let mut good = 0usize;
        for (scheduled, ticket) in pending {
            let (result, finished) = ticket.wait_full();
            match result {
                Err(RetrievalError::Overloaded { .. }) => {
                    // deadline-shed while queued: no answer was produced
                    shed += 1;
                    continue;
                }
                Err(RetrievalError::NoCoverage { .. }) => no_coverage += 1,
                _ => {}
            }
            // latency from scheduled arrival to this request's own
            // completion: queueing + service, like the simulator
            let latency = finished.duration_since(start).saturating_sub(scheduled);
            if latency <= deadline {
                good += 1;
            } else {
                timed_out += 1;
            }
            ms.push(latency.as_secs_f64() * 1000.0);
        }
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        ms.sort_by(|a, b| a.total_cmp(b));
        let completed = ms.len();
        let (hedges, hedge_wins) = match (hedge_before, &self.hedge) {
            (Some((i0, w0)), Some(h)) => (h.issued() - i0, h.wins() - w0),
            _ => (0, 0),
        };
        LoadReport {
            offered_qps: phase.offered_qps,
            completed,
            no_coverage,
            mean_ms: if completed == 0 {
                0.0
            } else {
                ms.iter().sum::<f64>() / completed as f64
            },
            p50_ms: percentile(&ms, 0.50),
            p90_ms: percentile(&ms, 0.90),
            p95_ms: percentile(&ms, 0.95),
            p99_ms: percentile(&ms, 0.99),
            achieved_qps: completed as f64 / wall,
            shed,
            timed_out,
            hedges,
            hedge_wins,
            goodput_qps: good as f64 / wall,
        }
    }
}

impl Drop for ServingRuntime {
    fn drop(&mut self) {
        let leftovers: Vec<QueuedRequest> = {
            let mut queue = lock(&self.shared.queue);
            queue.shutdown = true;
            queue.items.drain(..).collect()
        };
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // resolve every still-queued ticket so no waiter hangs on a
        // runtime that shut down under it
        for item in leftovers {
            self.shared
                .counters
                .shed_queue
                .fetch_add(1, Ordering::Relaxed); // monotonic telemetry only
            item.ticket.fulfill(Err(RetrievalError::Overloaded {
                queue_depth: self.shared.config.queue_depth,
                deadline: self.shared.config.deadline,
            }));
        }
    }
}

fn worker_loop(shared: &RuntimeShared) {
    // all dispatch-shell scratch is pre-sized to the batch cap and reused
    // for the worker's lifetime: the steady-state loop below allocates
    // nothing of its own — only the engine call does real work
    let batch_cap = shared.config.batch_size.max(1);
    let mut batch: Vec<QueuedRequest> = Vec::with_capacity(batch_cap);
    let mut live: Vec<QueuedRequest> = Vec::with_capacity(batch_cap);
    let mut requests: Vec<Request> = Vec::with_capacity(batch_cap);
    let mut tickets: Vec<Arc<TicketState>> = Vec::with_capacity(batch_cap);
    // amcad-lint: allow(unbounded-fanout) — worker lifetime loop: exits via the shutdown flag checked under the queue lock; each iteration serves one admission-bounded batch
    loop {
        batch.clear();
        {
            let mut queue = lock(&shared.queue);
            // amcad-lint: allow(unbounded-fanout) — condvar wait loop: re-checks the queue predicate on spurious wakeups; bounded by request arrival or shutdown
            while queue.items.is_empty() {
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            let n = queue.items.len().min(shared.config.batch_size);
            batch.extend(queue.items.drain(..n));
        }
        // deadline check at dequeue: a request that aged out while
        // queued is shed — serving it would waste capacity on an answer
        // its caller has already given up on
        let now = Instant::now();
        live.clear();
        for item in batch.drain(..) {
            if now.duration_since(item.enqueued) > shared.config.deadline {
                shared
                    .counters
                    .shed_deadline
                    .fetch_add(1, Ordering::Relaxed); // monotonic telemetry only
                item.ticket.fulfill(Err(RetrievalError::Overloaded {
                    queue_depth: shared.config.queue_depth,
                    deadline: shared.config.deadline,
                }));
            } else {
                live.push(item);
            }
        }
        match live.len() {
            0 => {}
            1 => {
                let item = live.pop().expect("len checked");
                let result = shared.engine.retrieve(&item.request);
                // monotonic telemetry only; the ticket fulfil below carries
                // the actual result synchronisation
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                item.ticket.fulfill(result);
            }
            _ => {
                // several live requests: serve through the batch path so
                // the engine's cross-request scan dedup engages. Move the
                // requests out of the queued items (instead of cloning
                // them) — after dispatch only the tickets are needed to
                // fulfil, so the split is free.
                requests.clear();
                tickets.clear();
                for item in live.drain(..) {
                    requests.push(item.request);
                    tickets.push(item.ticket);
                }
                let results = shared.engine.retrieve_batch(&requests);
                debug_assert_eq!(results.len(), tickets.len());
                for (ticket, result) in tickets.drain(..).zip(results) {
                    // monotonic telemetry only, as above
                    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                    ticket.fulfill(result);
                }
            }
        }
    }
}

/// Roll a serving [`ShardedEngine`] forward to a snapshot generation,
/// replica by replica, without interrupting serving.
///
/// The rollout models the paper's warm replica bring-up over the PR 6
/// snapshot store:
///
/// 1. the snapshot is decoded into the next-generation engine (the
///    expensive part — no index rebuild, but a full file read),
/// 2. each replica of the *current* deployment is drained
///    ([`ShardedEngine::begin_warmup`]: weight 0 — siblings keep serving
///    generation G), labeled with the incoming data generation and
///    restored ([`ShardedEngine::finish_warmup`]); `on_stage(shard,
///    replica)` runs while the replica is drained, which is where tests
///    issue probe requests to prove old-generation serving continues,
/// 3. the new engine is published atomically through the handle.
///
/// In this in-process model data visibility flips at the publish — there
/// are no torn generations, which is *stronger* than a real cluster where
/// replicas restart one at a time. The per-replica generation labels
/// record bring-up progress; the returned value is the handle's new
/// publish generation (the labels carry the snapshot's own data
/// generation, which advances independently).
pub fn warm_rollout(
    handle: &EngineHandle,
    current: &ShardedEngine,
    snapshot: impl AsRef<std::path::Path>,
    mut on_stage: impl FnMut(usize, usize),
) -> Result<u64, RetrievalError> {
    let (generation, builder) = crate::store::read_snapshot(snapshot.as_ref())?;
    let next = builder.engine()?;
    next.label_generations(generation);
    for shard in 0..current.active_shards() {
        for replica in 0..current.replicas() {
            current.begin_warmup(shard, replica);
            on_stage(shard, replica);
            current.finish_warmup(shard, replica, generation);
        }
    }
    Ok(handle.publish_arc(Arc::new(next)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RetrievalEngine;
    use crate::serving::TrafficPattern;
    use crate::test_fixtures::tiny_inputs;

    fn engine() -> Arc<RetrievalEngine> {
        Arc::new(
            RetrievalEngine::builder()
                .top_k(8)
                .threads(1)
                .build(&tiny_inputs())
                .expect("tiny inputs build a valid engine"),
        )
    }

    fn requests() -> Vec<Request> {
        (0..10u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q, 110 + q],
            })
            .collect()
    }

    /// A [`Retrieve`] double whose calls block on a gate until the test
    /// opens it — makes queue-occupancy tests deterministic.
    struct GatedEngine {
        inner: Arc<RetrievalEngine>,
        open: Mutex<bool>,
        gate: Condvar,
        entered: Mutex<usize>,
        entered_cv: Condvar,
    }

    impl GatedEngine {
        fn new(inner: Arc<RetrievalEngine>) -> Self {
            GatedEngine {
                inner,
                open: Mutex::new(false),
                gate: Condvar::new(),
                entered: Mutex::new(0),
                entered_cv: Condvar::new(),
            }
        }

        fn open_gate(&self) {
            *lock(&self.open) = true;
            self.gate.notify_all();
        }

        /// Block until `n` requests have entered the engine (i.e. were
        /// dequeued by a worker and are now parked on the gate).
        fn wait_entered(&self, n: usize) {
            let mut entered = lock(&self.entered);
            while *entered < n {
                entered = self
                    .entered_cv
                    .wait(entered)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl Retrieve for GatedEngine {
        fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
            {
                let mut entered = lock(&self.entered);
                *entered += 1;
                self.entered_cv.notify_all();
            }
            {
                let mut open = lock(&self.open);
                while !*open {
                    open = self.gate.wait(open).unwrap_or_else(PoisonError::into_inner);
                }
            }
            self.inner.retrieve(request)
        }
    }

    #[test]
    fn invalid_runtime_configs_are_rejected() {
        let e = engine();
        assert!(matches!(
            ServingRuntime::new(
                e.clone(),
                RuntimeConfig {
                    workers: 0,
                    ..RuntimeConfig::default()
                }
            )
            .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
        assert!(matches!(
            ServingRuntime::new(
                e,
                RuntimeConfig {
                    queue_depth: 0,
                    ..RuntimeConfig::default()
                }
            )
            .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
    }

    #[test]
    fn runtime_serves_singles_batches_and_counts() {
        let runtime = ServingRuntime::new(
            engine(),
            RuntimeConfig {
                workers: 2,
                queue_depth: 64,
                deadline: Duration::from_secs(5),
                batch_size: 4,
            },
        )
        .unwrap();
        let templates = requests();
        let tickets: Vec<Ticket> = templates
            .iter()
            .map(|r| runtime.submit(r.clone()).expect("queue is not full"))
            .collect();
        for ticket in tickets {
            let response = ticket.wait().expect("tiny world covers every template");
            assert!(!response.ads.is_empty());
        }
        // the blocking path answers identically to the engine itself
        let direct = engine().retrieve(&templates[3]).unwrap();
        let through = runtime.retrieve_blocking(&templates[3]).unwrap();
        assert_eq!(direct, through);
        let stats = runtime.stats();
        assert_eq!(stats.admitted, 11);
        assert_eq!(stats.completed, 11);
        assert_eq!(stats.shed_queue_full, 0);
        assert_eq!(stats.shed_deadline, 0);
        assert_eq!(stats.queue_len, 0);
    }

    /// The admission-control acceptance test: a saturated queue sheds
    /// with the typed `Overloaded` error, and a load drop restores
    /// zero-shed serving.
    #[test]
    fn saturated_admission_queue_sheds_and_recovers() {
        let gated = Arc::new(GatedEngine::new(engine()));
        let runtime = ServingRuntime::new(
            gated.clone() as Arc<dyn Retrieve>,
            RuntimeConfig {
                workers: 1,
                queue_depth: 2,
                deadline: Duration::from_secs(30),
                batch_size: 1,
            },
        )
        .unwrap();
        let templates = requests();
        // r1 is dequeued by the single worker and parks on the gate ...
        let t1 = runtime.submit(templates[0].clone()).unwrap();
        gated.wait_entered(1);
        // ... so r2 and r3 fill the depth-2 queue exactly ...
        let t2 = runtime.submit(templates[1].clone()).unwrap();
        let t3 = runtime.submit(templates[2].clone()).unwrap();
        // ... and r4 must shed with the typed error
        let err = runtime.submit(templates[3].clone()).unwrap_err();
        assert_eq!(
            err,
            RetrievalError::Overloaded {
                queue_depth: 2,
                deadline: Duration::from_secs(30),
            }
        );
        assert_eq!(runtime.stats().shed_queue_full, 1);
        assert_eq!(runtime.stats().queue_len, 2);
        // open the gate: everything admitted completes
        gated.open_gate();
        for ticket in [t1, t2, t3] {
            assert!(ticket.wait().is_ok());
        }
        // load drop: the queue is empty again, submissions sail through
        for template in &templates {
            assert!(runtime.retrieve_blocking(template).is_ok());
        }
        let stats = runtime.stats();
        assert_eq!(stats.shed_queue_full, 1, "no new sheds after the drop");
        assert_eq!(stats.completed, 13);
    }

    #[test]
    fn queued_requests_past_their_deadline_are_shed_not_served() {
        let gated = Arc::new(GatedEngine::new(engine()));
        let runtime = ServingRuntime::new(
            gated.clone() as Arc<dyn Retrieve>,
            RuntimeConfig {
                workers: 1,
                queue_depth: 8,
                deadline: Duration::from_millis(5),
                batch_size: 1,
            },
        )
        .unwrap();
        let templates = requests();
        let t1 = runtime.submit(templates[0].clone()).unwrap();
        gated.wait_entered(1); // the worker is inside the engine, gated
        let t2 = runtime.submit(templates[1].clone()).unwrap();
        // let r2 age past its 5 ms deadline while queued
        std::thread::sleep(Duration::from_millis(25));
        gated.open_gate();
        // r1 was dequeued before its deadline passed — it is served
        assert!(t1.wait().is_ok());
        // r2 aged out in the queue — shed with the typed error
        assert!(matches!(
            t2.wait().unwrap_err(),
            RetrievalError::Overloaded { .. }
        ));
        let stats = runtime.stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn dropping_the_runtime_resolves_leftover_tickets() {
        let gated = Arc::new(GatedEngine::new(engine()));
        let runtime = ServingRuntime::new(
            gated.clone() as Arc<dyn Retrieve>,
            RuntimeConfig {
                workers: 1,
                queue_depth: 8,
                deadline: Duration::from_secs(30),
                batch_size: 1,
            },
        )
        .unwrap();
        let templates = requests();
        let t1 = runtime.submit(templates[0].clone()).unwrap();
        gated.wait_entered(1);
        let t2 = runtime.submit(templates[1].clone()).unwrap();
        gated.open_gate();
        drop(runtime); // joins the worker; t2 may be served or shut down
        assert!(t1.wait().is_ok());
        // whichever way the race went, the ticket resolved — no hang
        let _ = t2.wait();
    }

    #[test]
    fn flash_crowd_scenario_sheds_at_the_spike_and_recovers() {
        let runtime = ServingRuntime::new(
            engine(),
            RuntimeConfig {
                workers: 1,
                queue_depth: 16,
                deadline: Duration::from_secs(1),
                batch_size: 4,
            },
        )
        .unwrap();
        // base phases arrive 10 ms apart (far slower than tiny-world
        // service, with headroom for a descheduled worker when the whole
        // suite runs in parallel); the spike offers requests faster than
        // the producer can even enqueue them, so the depth-16 queue must
        // overflow
        let scenario = Scenario::flash_crowd(100.0, 5_000_000.0, 30, 2_000);
        let reports = runtime.run_scenario(&requests(), &scenario);
        assert_eq!(reports.len(), 3);
        let (base, spike, recovery) = (&reports[0], &reports[1], &reports[2]);
        assert_eq!(base.shed, 0, "base load must serve without shedding");
        assert_eq!(base.completed, 30);
        assert!(
            spike.shed > 0,
            "the flash crowd must shed against the depth-16 queue (completed {}, shed {})",
            spike.completed,
            spike.shed
        );
        assert_eq!(
            spike.completed + spike.shed,
            2_000,
            "every spike request is accounted for, served or shed"
        );
        assert_eq!(recovery.shed, 0, "the load drop restores zero-shed serving");
        assert_eq!(recovery.completed, 30);
        // goodput never exceeds achieved throughput
        for r in &reports {
            assert!(r.goodput_qps <= r.achieved_qps + 1e-9);
        }
        let stats = runtime.stats();
        assert_eq!(
            stats.shed_queue_full + stats.shed_deadline,
            spike.shed as u64,
            "runtime counters agree with the report"
        );
    }

    #[test]
    fn zipf_scenario_completes_and_counts_every_request() {
        let runtime = ServingRuntime::new(
            engine(),
            RuntimeConfig {
                workers: 2,
                queue_depth: 256,
                deadline: Duration::from_secs(5),
                batch_size: 8,
            },
        )
        .unwrap();
        let scenario = Scenario::sustained(20_000.0, 300).with_pattern(TrafficPattern::Zipf {
            exponent: 1.1,
            seed: 42,
        });
        let reports = runtime.run_scenario(&requests(), &scenario);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].completed, 300);
        assert_eq!(reports[0].shed, 0);
        assert_eq!(reports[0].no_coverage, 0);
        assert!(reports[0].p50_ms <= reports[0].p99_ms + 1e-9);
    }

    /// Warm rollout over the snapshot store: replicas drain one at a
    /// time while serving continues from generation G, and the publish
    /// flips the deployment to the snapshot generation atomically.
    #[test]
    fn warm_rollout_keeps_serving_and_relabels_generations() {
        use crate::delta::ShardedDeltaBuilder;

        let inputs = tiny_inputs();
        let topology = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build_threads(1);
        let builder = ShardedDeltaBuilder::new(&inputs, topology.clone()).unwrap();
        let handle = EngineHandle::new(builder.engine().unwrap());
        let dir = std::env::temp_dir().join(format!(
            "amcad-warm-rollout-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rollout.snap");
        handle.save_snapshot(&builder, &path).unwrap();
        let saved_generation = handle.generation();

        // the engine currently serving (shared with the handle)
        let current = builder.engine().unwrap();
        let serving = EngineHandle::new(current.clone());
        let templates = requests();
        let baseline: Vec<_> = templates
            .iter()
            .map(|r| serving.retrieve(r).map(RetrievalResponse::logical))
            .collect();
        assert!(current
            .replica_generations()
            .iter()
            .all(|shard| shard.iter().all(|&g| g == 0)));

        let mut stages = Vec::new();
        let new_generation = warm_rollout(&serving, &current, &path, |shard, replica| {
            stages.push((shard, replica));
            // the replica is drained right now: its weight is 0, its
            // siblings keep serving, and rankings never change
            assert_eq!(current.replica_weights()[shard][replica], 0);
            for (request, expected) in templates.iter().zip(&baseline) {
                let got = serving.retrieve(request).map(RetrievalResponse::logical);
                assert_eq!(&got, expected, "serving changed mid-rollout");
            }
        })
        .unwrap();

        // every replica of every shard was staged exactly once
        let mut expected_stages = Vec::new();
        for s in 0..current.active_shards() {
            for r in 0..current.replicas() {
                expected_stages.push((s, r));
            }
        }
        assert_eq!(stages, expected_stages);
        // weights restored, generations labeled with the snapshot's own
        assert!(current
            .replica_weights()
            .iter()
            .all(|shard| shard.iter().all(|&w| w == 1)));
        assert!(current
            .replica_generations()
            .iter()
            .all(|shard| shard.iter().all(|&g| g == saved_generation)));
        // the publish advanced the handle and serving still matches
        assert_eq!(serving.generation(), new_generation);
        assert!(new_generation > saved_generation);
        for (request, expected) in templates.iter().zip(&baseline) {
            let got = serving.retrieve(request).map(RetrievalResponse::logical);
            assert_eq!(&got, expected, "the rolled-out generation diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
