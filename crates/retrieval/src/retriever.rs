//! The two-layer online ad retrieval framework (Section IV-C.2).
//!
//! An online request carries the posed query and the user's recently clicked
//! items.  Layer 1 expands these raw keys into a richer key set through the
//! Q2Q / Q2I / I2Q / I2I indices; layer 2 retrieves ads for every key
//! through Q2A / I2A and merges the scores.  The paper's motivation for the
//! extra layer is traffic coverage: rewriting the query into several related
//! queries and items lets the system serve requests whose raw query has a
//! thin (or empty) Q2A posting list.
//!
//! [`TwoLayerRetriever`] is the layer logic; production callers go through
//! [`crate::RetrievalEngine`], which adds backend selection, typed errors,
//! batching and per-request statistics on top.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::engine::{CoverageSource, Request, RetrievalStats};
use crate::index_set::IndexSet;

/// Configuration of the two-layer retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalConfig {
    /// Expanded keys kept per first-layer index lookup.
    pub expansion_per_index: usize,
    /// Ads kept per second-layer key lookup.
    pub ads_per_key: usize,
    /// Final number of ads returned.
    pub final_top_n: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            expansion_per_index: 5,
            ads_per_key: 10,
            final_top_n: 20,
        }
    }
}

/// Where a first-layer key came from — determines the coverage source
/// reported for the ads it retrieves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KeyOrigin {
    /// The raw query of the request.
    RawQuery,
    /// Expansion of the raw query through Q2Q / Q2I.
    QueryExpansion,
    /// A pre-click item, or its expansion through I2Q / I2I.
    Preclick,
}

/// An expanded retrieval key: a query or item node, the weight it
/// contributes to ads retrieved through it, and its provenance.
///
/// Crate-visible so the sharded engine can expand keys once and fan the
/// same key set out to every shard's second layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Key {
    pub(crate) id: u32,
    pub(crate) weight: f64,
    pub(crate) is_item: bool,
    pub(crate) origin: KeyOrigin,
}

/// A retrieved ad with its merged score (higher = better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievedAd {
    /// Ad node id.
    pub ad: u32,
    /// Merged retrieval score.
    pub score: f64,
}

/// Batch-scope fetch cache: `(is_item, key id)` → (index of the request
/// that first fetched it, the borrowed candidate prefix).
type FetchCache<'a> = HashMap<(bool, u32), (usize, &'a [(u32, f64)])>;

/// The two-layer retriever over a built [`IndexSet`].
#[derive(Debug, Clone)]
pub struct TwoLayerRetriever {
    indexes: IndexSet,
    config: RetrievalConfig,
}

/// Convert a mixed-curvature distance into a bounded similarity score.
/// A NaN distance (corrupt posting) maps to score 0 so it can never
/// outrank a real candidate; `.max(0.0)` would silently discard the NaN
/// and hand it the maximum score instead.
#[inline]
fn distance_to_score(distance: f64) -> f64 {
    if distance.is_nan() {
        return 0.0;
    }
    1.0 / (1.0 + distance.max(0.0))
}

impl TwoLayerRetriever {
    /// Create a retriever.
    pub fn new(indexes: IndexSet, config: RetrievalConfig) -> Self {
        TwoLayerRetriever { indexes, config }
    }

    /// The retrieval configuration.
    pub fn config(&self) -> &RetrievalConfig {
        &self.config
    }

    /// The underlying index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// First layer: expand the raw query and pre-click items into a weighted
    /// key set, appended to the caller-owned `keys` scratch buffer (cleared
    /// first) so batch callers reuse one allocation. Counts postings scanned
    /// into `stats`.
    pub(crate) fn expand_keys_into(
        &self,
        query: u32,
        preclick_items: &[u32],
        stats: &mut RetrievalStats,
        keys: &mut Vec<Key>,
    ) {
        let k = self.config.expansion_per_index;
        keys.clear();
        // the raw query itself carries full weight
        keys.push(Key {
            id: query,
            weight: 1.0,
            is_item: false,
            origin: KeyOrigin::RawQuery,
        });
        if let Some(postings) = self.indexes.q2q.get(query) {
            for (q, d) in postings.iter().take(k) {
                stats.postings_scanned += 1;
                keys.push(Key {
                    id: *q,
                    weight: distance_to_score(*d),
                    is_item: false,
                    origin: KeyOrigin::QueryExpansion,
                });
            }
        }
        if let Some(postings) = self.indexes.q2i.get(query) {
            for (i, d) in postings.iter().take(k) {
                stats.postings_scanned += 1;
                keys.push(Key {
                    id: *i,
                    weight: distance_to_score(*d),
                    is_item: true,
                    origin: KeyOrigin::QueryExpansion,
                });
            }
        }
        for &item in preclick_items {
            keys.push(Key {
                id: item,
                weight: 1.0,
                is_item: true,
                origin: KeyOrigin::Preclick,
            });
            if let Some(postings) = self.indexes.i2q.get(item) {
                for (q, d) in postings.iter().take(k) {
                    stats.postings_scanned += 1;
                    keys.push(Key {
                        id: *q,
                        weight: 0.8 * distance_to_score(*d),
                        is_item: false,
                        origin: KeyOrigin::Preclick,
                    });
                }
            }
            if let Some(postings) = self.indexes.i2i.get(item) {
                for (i, d) in postings.iter().take(k) {
                    stats.postings_scanned += 1;
                    keys.push(Key {
                        id: *i,
                        weight: 0.8 * distance_to_score(*d),
                        is_item: true,
                        origin: KeyOrigin::Preclick,
                    });
                }
            }
        }
        stats.keys_expanded = keys.len();
    }

    /// Second-layer candidates of one key: the prefix of its Q2A / I2A
    /// posting list the configured `ads_per_key` cut admits. Borrowed
    /// straight from the index — no copy — and already sorted by the index
    /// build's `(distance, id)` order, which is what lets shard-local
    /// prefixes be merged back into the exact global prefix.
    pub(crate) fn key_candidates(&self, key: &Key, per_key: usize) -> &[(u32, f64)] {
        let postings = if key.is_item {
            self.indexes.i2a.get(key.id)
        } else {
            self.indexes.q2a.get(key.id)
        };
        match postings {
            Some(postings) => &postings[..per_key.min(postings.len())],
            None => &[],
        }
    }

    /// Serve one request, reporting per-request statistics: query +
    /// pre-click items → (ranked ads, stats).
    pub fn retrieve_with_stats(
        &self,
        query: u32,
        preclick_items: &[u32],
    ) -> (Vec<RetrievedAd>, RetrievalStats) {
        let mut stats = RetrievalStats::default();
        let mut keys = Vec::new();
        self.expand_keys_into(query, preclick_items, &mut stats, &mut keys);
        let per_key = self.config.ads_per_key;
        let candidates: Vec<&[(u32, f64)]> = keys
            .iter()
            .map(|key| {
                let c = self.key_candidates(key, per_key);
                stats.postings_scanned += c.len();
                c
            })
            .collect();
        let mut scratch = HashMap::new();
        let ads = score_candidates(
            &keys,
            &candidates,
            self.config.final_top_n,
            &mut scratch,
            &mut stats,
        );
        (ads, stats)
    }

    /// Serve a whole batch, deduplicating second-layer work across
    /// requests: the candidate prefix of each distinct `(layer, key)` is
    /// fetched (and its scan counted) once per batch, and the key / score
    /// scratch buffers are reused across requests. Per-request rankings are
    /// identical to [`TwoLayerRetriever::retrieve_with_stats`]; only
    /// `postings_scanned` differs — a scan shared with an *earlier* request
    /// in the batch is attributed to that earlier request, so the batch's
    /// summed scan count is the true deduplicated work.
    pub(crate) fn retrieve_batch_with_stats(
        &self,
        requests: &[Request],
    ) -> Vec<(Vec<RetrievedAd>, RetrievalStats)> {
        let per_key = self.config.ads_per_key;
        let mut fetched: FetchCache<'_> = HashMap::new();
        let mut keys: Vec<Key> = Vec::new();
        // one posting slice per expanded key; pre-sized for the common
        // fan-out (raw query + expansions) and reused across the batch
        let mut candidates: Vec<&[(u32, f64)]> =
            Vec::with_capacity(2 * (1 + self.config.expansion_per_index));
        let mut scratch: HashMap<u32, f64> = HashMap::new();
        let mut out = Vec::with_capacity(requests.len());
        for (r, request) in requests.iter().enumerate() {
            let mut stats = RetrievalStats::default();
            self.expand_keys_into(
                request.query,
                &request.preclick_items,
                &mut stats,
                &mut keys,
            );
            candidates.clear();
            for key in &keys {
                let slice = match fetched.entry((key.is_item, key.id)) {
                    Entry::Occupied(e) => {
                        let &(first, slice) = e.get();
                        // a repeat within the *same* request re-scans in the
                        // single-request path too — keep the counts aligned
                        if first == r {
                            stats.postings_scanned += slice.len();
                        }
                        slice
                    }
                    Entry::Vacant(v) => {
                        let slice = self.key_candidates(key, per_key);
                        stats.postings_scanned += slice.len();
                        v.insert((r, slice)).1
                    }
                };
                candidates.push(slice);
            }
            let ads = score_candidates(
                &keys,
                &candidates,
                self.config.final_top_n,
                &mut scratch,
                &mut stats,
            );
            out.push((ads, stats));
        }
        out
    }

    /// Serve one request: query + pre-click items → ranked ads.
    pub fn retrieve(&self, query: u32, preclick_items: &[u32]) -> Vec<RetrievedAd> {
        self.retrieve_with_stats(query, preclick_items).0
    }

    /// Single-layer baseline: retrieve ads using only the raw query's Q2A
    /// posting list (what a conventional embedding-based retrieval channel
    /// would do).  Used to quantify the coverage gain of the second layer.
    pub fn retrieve_single_layer(&self, query: u32) -> Vec<RetrievedAd> {
        let mut ads: Vec<RetrievedAd> = self
            .indexes
            .q2a
            .get(query)
            .map(|postings| {
                postings
                    .iter()
                    .take(self.config.final_top_n)
                    .map(|(ad, d)| RetrievedAd {
                        ad: *ad,
                        score: distance_to_score(*d),
                    })
                    .collect()
            })
            .unwrap_or_default();
        ads.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ad.cmp(&b.ad)));
        ads
    }
}

/// Second-layer scoring shared by every serving path (single request,
/// deduplicated batch, sharded fan-out): merge per-key candidate lists into
/// a ranked ad list. The score of an ad reached through several keys is the
/// maximum of its per-key scores — rewriting should not double-count
/// popularity. Tracks which key origins contributed candidates, so the
/// reported coverage source answers "would this request be covered without
/// the expansion / pre-click channels?".
///
/// `candidates` is aligned with `keys` (one list per key occurrence).
/// Scan counting is the *caller's* job — done where the candidates are
/// fetched, so deduplicated fetches are not double-counted here.
/// `merged_scratch` is a reusable accumulator (cleared on entry).
pub(crate) fn score_candidates(
    keys: &[Key],
    candidates: &[&[(u32, f64)]],
    final_top_n: usize,
    merged_scratch: &mut HashMap<u32, f64>,
    stats: &mut RetrievalStats,
) -> Vec<RetrievedAd> {
    debug_assert_eq!(keys.len(), candidates.len());
    let mut origins: (bool, bool, bool) = (false, false, false);
    merged_scratch.clear();
    for (key, list) in keys.iter().zip(candidates) {
        if !list.is_empty() {
            match key.origin {
                KeyOrigin::RawQuery => origins.0 = true,
                KeyOrigin::QueryExpansion => origins.1 = true,
                KeyOrigin::Preclick => origins.2 = true,
            }
        }
        for (ad, d) in list.iter() {
            let score = key.weight * distance_to_score(*d);
            let entry = merged_scratch.entry(*ad).or_insert(f64::NEG_INFINITY);
            if score > *entry {
                *entry = score;
            }
        }
    }
    let mut ads: Vec<RetrievedAd> = merged_scratch
        .iter()
        .map(|(&ad, &score)| RetrievedAd { ad, score })
        .collect();
    // total_cmp instead of partial_cmp().unwrap(): scores are NaN-free
    // (distance_to_score maps NaN to 0) but the sort must stay
    // panic-free for any f64 regardless
    ads.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ad.cmp(&b.ad)));
    ads.truncate(final_top_n);
    stats.coverage = if origins.0 {
        CoverageSource::DirectQuery
    } else if origins.1 {
        CoverageSource::ExpandedKeys
    } else if origins.2 {
        CoverageSource::PreclickItems
    } else {
        CoverageSource::None
    };
    ads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_set::{IndexBuildConfig, IndexSet};
    use crate::test_fixtures::{random_points, shared_points, tiny_inputs};

    fn retriever() -> TwoLayerRetriever {
        let indexes = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 8,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        TwoLayerRetriever::new(indexes, RetrievalConfig::default())
    }

    #[test]
    fn retrieval_returns_ranked_ads_from_the_ad_id_range() {
        let r = retriever();
        let ads = r.retrieve(3, &[101, 115]);
        assert!(!ads.is_empty());
        assert!(ads.len() <= r.config().final_top_n);
        for w in ads.windows(2) {
            assert!(w[0].score >= w[1].score, "ads must be sorted by score");
        }
        assert!(ads.iter().all(|a| (200..220).contains(&a.ad)));
        // no duplicates
        let mut ids: Vec<u32> = ads.iter().map(|a| a.ad).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ads.len());
    }

    #[test]
    fn two_layer_covers_at_least_as_much_as_single_layer() {
        let r = retriever();
        for q in 0..10u32 {
            let single = r.retrieve_single_layer(q);
            let two = r.retrieve(q, &[100]);
            assert!(two.len() >= single.len().min(r.config().final_top_n));
        }
    }

    #[test]
    fn unknown_query_without_preclicks_yields_nothing_but_preclicks_recover_coverage() {
        let r = retriever();
        let unknown_query = 9999;
        assert!(r.retrieve(unknown_query, &[]).is_empty());
        let (with_preclick, stats) = r.retrieve_with_stats(unknown_query, &[105]);
        assert!(
            !with_preclick.is_empty(),
            "pre-click items must provide coverage for unseen queries"
        );
        assert_eq!(
            stats.coverage,
            CoverageSource::PreclickItems,
            "coverage must be attributed to the pre-click channel"
        );
    }

    #[test]
    fn scores_are_bounded_and_positive() {
        let r = retriever();
        for ad in r.retrieve(1, &[120]) {
            assert!(ad.score > 0.0 && ad.score <= 1.0 + 1e-12);
        }
        assert_eq!(distance_to_score(0.0), 1.0);
        assert!(distance_to_score(10.0) < 0.1);
    }

    #[test]
    fn stats_report_expansion_and_scan_work() {
        let r = retriever();
        let (ads, stats) = r.retrieve_with_stats(2, &[101]);
        assert!(!ads.is_empty());
        // raw query + raw preclick + up to 4 * expansion_per_index
        assert!(stats.keys_expanded >= 2);
        assert!(
            stats.keys_expanded <= 2 + 4 * r.config().expansion_per_index,
            "got {}",
            stats.keys_expanded
        );
        assert!(stats.postings_scanned >= ads.len());
        assert_eq!(stats.coverage, CoverageSource::DirectQuery);
    }

    #[test]
    fn batch_dedup_cuts_second_layer_scans_without_changing_rankings() {
        let r = retriever();
        let requests: Vec<Request> = (0..4)
            .map(|_| Request {
                query: 3,
                preclick_items: vec![101, 115],
            })
            .collect();
        let batch = r.retrieve_batch_with_stats(&requests);
        let (single_ads, single_stats) = r.retrieve_with_stats(3, &[101, 115]);
        assert!(single_stats.postings_scanned > single_stats.keys_expanded);
        for (ads, stats) in &batch {
            assert_eq!(ads, &single_ads, "dedup must not change the ranking");
            assert_eq!(stats.coverage, single_stats.coverage);
            assert_eq!(stats.keys_expanded, single_stats.keys_expanded);
        }
        // the first request pays the full scan bill ...
        assert_eq!(batch[0].1, single_stats);
        // ... repeats share its second-layer fetches, so they scan strictly
        // fewer postings and the batch is measurably cheaper than N singles
        for (_, stats) in &batch[1..] {
            assert!(
                stats.postings_scanned < single_stats.postings_scanned,
                "shared keys must not be re-scanned ({} vs {})",
                stats.postings_scanned,
                single_stats.postings_scanned
            );
        }
        let batch_total: usize = batch.iter().map(|(_, s)| s.postings_scanned).sum();
        assert!(
            batch_total < requests.len() * single_stats.postings_scanned,
            "batch total {batch_total} must beat {} independent scans",
            requests.len() * single_stats.postings_scanned
        );
    }

    #[test]
    fn batch_with_distinct_requests_matches_the_single_path_per_request() {
        let r = retriever();
        let requests: Vec<Request> = (0..10u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q],
            })
            .collect();
        let batch = r.retrieve_batch_with_stats(&requests);
        for (request, (ads, stats)) in requests.iter().zip(&batch) {
            let (single_ads, single_stats) =
                r.retrieve_with_stats(request.query, &request.preclick_items);
            assert_eq!(ads, &single_ads);
            assert_eq!(stats.coverage, single_stats.coverage);
            assert_eq!(stats.keys_expanded, single_stats.keys_expanded);
            // scans may only ever be saved, never added
            assert!(stats.postings_scanned <= single_stats.postings_scanned);
        }
    }

    #[test]
    fn nan_distances_cannot_panic_or_outrank_real_candidates() {
        // A NaN posting distance maps to score 0 — it can never beat a
        // real candidate — and the total_cmp sorts stay panic-free where
        // partial_cmp().unwrap() used to abort the serving path.
        let inputs = crate::index_set::IndexBuildInputs {
            queries_qq: shared_points(0..3, 11),
            queries_qi: shared_points(0..3, 12),
            items_qi: shared_points(100..110, 13),
            queries_qa: shared_points(0..3, 14),
            ads_qa: random_points(200..210, 15),
            items_ii: shared_points(100..110, 16),
            items_ia: shared_points(100..110, 17),
            ads_ia: random_points(200..210, 18),
        };
        let mut indexes = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        indexes.q2a.insert(0, vec![(205, f64::NAN), (206, 0.1)]);
        let r = TwoLayerRetriever::new(indexes, RetrievalConfig::default());
        let single = r.retrieve_single_layer(0);
        assert_eq!(single.first().unwrap().ad, 206, "real distance must win");
        assert_eq!(
            single.last().unwrap().ad,
            205,
            "NaN distance must sort last"
        );
        assert_eq!(single.last().unwrap().score, 0.0);
        let ads = r.retrieve(0, &[]);
        assert!(!ads.is_empty());
        assert!(ads.iter().all(|a| a.score.is_finite()));
        assert_ne!(
            ads.first().unwrap().ad,
            205,
            "a NaN-distance posting must never top the merged ranking"
        );
    }
}
