//! The two-layer online ad retrieval framework (Section IV-C.2).
//!
//! An online request carries the posed query and the user's recently clicked
//! items.  Layer 1 expands these raw keys into a richer key set through the
//! Q2Q / Q2I / I2Q / I2I indices; layer 2 retrieves ads for every key
//! through Q2A / I2A and merges the scores.  The paper's motivation for the
//! extra layer is traffic coverage: rewriting the query into several related
//! queries and items lets the system serve requests whose raw query has a
//! thin (or empty) Q2A posting list.

use std::collections::HashMap;

use crate::index_set::IndexSet;

/// Configuration of the two-layer retrieval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalConfig {
    /// Expanded keys kept per first-layer index lookup.
    pub expansion_per_index: usize,
    /// Ads kept per second-layer key lookup.
    pub ads_per_key: usize,
    /// Final number of ads returned.
    pub final_top_n: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            expansion_per_index: 5,
            ads_per_key: 10,
            final_top_n: 20,
        }
    }
}

/// An expanded retrieval key: either a query node or an item node, with the
/// weight it contributes to ads retrieved through it.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Key {
    Query(u32, f64),
    Item(u32, f64),
}

/// A retrieved ad with its merged score (higher = better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievedAd {
    /// Ad node id.
    pub ad: u32,
    /// Merged retrieval score.
    pub score: f64,
}

/// The two-layer retriever over a built [`IndexSet`].
#[derive(Debug, Clone)]
pub struct TwoLayerRetriever {
    indexes: IndexSet,
    config: RetrievalConfig,
}

/// Convert a mixed-curvature distance into a bounded similarity score.
#[inline]
fn distance_to_score(distance: f64) -> f64 {
    1.0 / (1.0 + distance.max(0.0))
}

impl TwoLayerRetriever {
    /// Create a retriever.
    pub fn new(indexes: IndexSet, config: RetrievalConfig) -> Self {
        TwoLayerRetriever { indexes, config }
    }

    /// The retrieval configuration.
    pub fn config(&self) -> &RetrievalConfig {
        &self.config
    }

    /// The underlying index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// First layer: expand the raw query and pre-click items into a weighted
    /// key set.
    fn expand_keys(&self, query: u32, preclick_items: &[u32]) -> Vec<Key> {
        let k = self.config.expansion_per_index;
        let mut keys: Vec<Key> = Vec::new();
        // the raw query itself carries full weight
        keys.push(Key::Query(query, 1.0));
        if let Some(postings) = self.indexes.q2q.get(query) {
            for (q, d) in postings.iter().take(k) {
                keys.push(Key::Query(*q, distance_to_score(*d)));
            }
        }
        if let Some(postings) = self.indexes.q2i.get(query) {
            for (i, d) in postings.iter().take(k) {
                keys.push(Key::Item(*i, distance_to_score(*d)));
            }
        }
        for &item in preclick_items {
            keys.push(Key::Item(item, 1.0));
            if let Some(postings) = self.indexes.i2q.get(item) {
                for (q, d) in postings.iter().take(k) {
                    keys.push(Key::Query(*q, 0.8 * distance_to_score(*d)));
                }
            }
            if let Some(postings) = self.indexes.i2i.get(item) {
                for (i, d) in postings.iter().take(k) {
                    keys.push(Key::Item(*i, 0.8 * distance_to_score(*d)));
                }
            }
        }
        keys
    }

    /// Second layer: retrieve ads for every key and merge the scores (the
    /// score of an ad reached through several keys is the maximum of its
    /// per-key scores — rewriting should not double-count popularity).
    fn retrieve_ads(&self, keys: &[Key]) -> Vec<RetrievedAd> {
        let per_key = self.config.ads_per_key;
        let mut merged: HashMap<u32, f64> = HashMap::new();
        for key in keys {
            let (postings, weight) = match key {
                Key::Query(q, w) => (self.indexes.q2a.get(*q), *w),
                Key::Item(i, w) => (self.indexes.i2a.get(*i), *w),
            };
            let Some(postings) = postings else { continue };
            for (ad, d) in postings.iter().take(per_key) {
                let score = weight * distance_to_score(*d);
                let entry = merged.entry(*ad).or_insert(f64::NEG_INFINITY);
                if score > *entry {
                    *entry = score;
                }
            }
        }
        let mut ads: Vec<RetrievedAd> = merged
            .into_iter()
            .map(|(ad, score)| RetrievedAd { ad, score })
            .collect();
        ads.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.ad.cmp(&b.ad)));
        ads.truncate(self.config.final_top_n);
        ads
    }

    /// Serve one request: query + pre-click items → ranked ads.
    pub fn retrieve(&self, query: u32, preclick_items: &[u32]) -> Vec<RetrievedAd> {
        let keys = self.expand_keys(query, preclick_items);
        self.retrieve_ads(&keys)
    }

    /// Single-layer baseline: retrieve ads using only the raw query's Q2A
    /// posting list (what a conventional embedding-based retrieval channel
    /// would do).  Used to quantify the coverage gain of the second layer.
    pub fn retrieve_single_layer(&self, query: u32) -> Vec<RetrievedAd> {
        let mut ads: Vec<RetrievedAd> = self
            .indexes
            .q2a
            .get(query)
            .map(|postings| {
                postings
                    .iter()
                    .take(self.config.final_top_n)
                    .map(|(ad, d)| RetrievedAd {
                        ad: *ad,
                        score: distance_to_score(*d),
                    })
                    .collect()
            })
            .unwrap_or_default();
        ads.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.ad.cmp(&b.ad)));
        ads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use amcad_mnn::MixedPointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(ids: std::ops::Range<u32>, seed: u64) -> MixedPointSet {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let tangent: Vec<f64> = (0..4).map(|_| rng.gen_range(-0.3..0.3)).collect();
            set.push(id, &manifold.exp0(&tangent), &[0.5, 0.5]);
        }
        set
    }

    fn retriever() -> TwoLayerRetriever {
        let inputs = IndexBuildInputs {
            queries_qq: random_points(0..10, 1),
            queries_qi: random_points(0..10, 2),
            items_qi: random_points(100..140, 3),
            queries_qa: random_points(0..10, 4),
            ads_qa: random_points(200..220, 5),
            items_ii: random_points(100..140, 6),
            items_ia: random_points(100..140, 7),
            ads_ia: random_points(200..220, 8),
        };
        let indexes = IndexSet::build(&inputs, IndexBuildConfig { top_k: 8, threads: 1 });
        TwoLayerRetriever::new(indexes, RetrievalConfig::default())
    }

    #[test]
    fn retrieval_returns_ranked_ads_from_the_ad_id_range() {
        let r = retriever();
        let ads = r.retrieve(3, &[101, 115]);
        assert!(!ads.is_empty());
        assert!(ads.len() <= r.config().final_top_n);
        for w in ads.windows(2) {
            assert!(w[0].score >= w[1].score, "ads must be sorted by score");
        }
        assert!(ads.iter().all(|a| (200..220).contains(&a.ad)));
        // no duplicates
        let mut ids: Vec<u32> = ads.iter().map(|a| a.ad).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ads.len());
    }

    #[test]
    fn two_layer_covers_at_least_as_much_as_single_layer() {
        let r = retriever();
        for q in 0..10u32 {
            let single = r.retrieve_single_layer(q);
            let two = r.retrieve(q, &[100]);
            assert!(two.len() >= single.len().min(r.config().final_top_n));
        }
    }

    #[test]
    fn unknown_query_without_preclicks_yields_nothing_but_preclicks_recover_coverage() {
        let r = retriever();
        let unknown_query = 9999;
        assert!(r.retrieve(unknown_query, &[]).is_empty());
        let with_preclick = r.retrieve(unknown_query, &[105]);
        assert!(
            !with_preclick.is_empty(),
            "pre-click items must provide coverage for unseen queries"
        );
    }

    #[test]
    fn scores_are_bounded_and_positive() {
        let r = retriever();
        for ad in r.retrieve(1, &[120]) {
            assert!(ad.score > 0.0 && ad.score <= 1.0 + 1e-12);
        }
        assert_eq!(distance_to_score(0.0), 1.0);
        assert!(distance_to_score(10.0) < 0.1);
    }
}
