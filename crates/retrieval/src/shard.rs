//! Sharded serving: [`ShardedEngine`] partitions the ad corpus across N
//! shards, builds and serves them **in parallel**, and keeps R serving
//! replicas per shard so the cluster survives replica failures.
//!
//! The paper's production deployment (Fig. 9 / Table IX) spreads both the
//! offline MNN index build and the online iGraph serving layer across a
//! cluster; one monolithic [`RetrievalEngine`] cannot model that. Here the
//! [`IndexBuildInputs`] are split **by ad** with a deterministic hash
//! ([`ad_shard`]): each shard receives the full query / item point sets
//! (so every shard builds identical first-layer key indices and expands a
//! request to the same key set) but only its slice of the ads (so the
//! expensive second-layer Q2A / I2A builds and scans are divided N ways).
//!
//! ## The cluster topology: build pool, fan-out pool, replica sets
//!
//! Three independent axes, three independent knobs on
//! [`ShardedEngineBuilder`]:
//!
//! * **Parallel shard builds** ([`ShardedEngineBuilder::build_threads`],
//!   default auto): every shard's index build depends only on that shard's
//!   input slice, so [`ShardedEngineBuilder::build`] runs the per-shard
//!   builds on a scoped [`WorkerPool`]. Results are re-assembled in shard
//!   order, which makes the parallel build byte-identical to the
//!   sequential loop — including which error is reported when several
//!   shards fail.
//! * **Parallel request fan-out** ([`ShardedEngineBuilder::fanout_threads`],
//!   default 1): serving a request gathers, for every expanded key, each
//!   shard's posting-list prefix. Those per-key gathers are independent,
//!   so they run on a persistent, condvar-parked
//!   [`PersistentPool`] —
//!   spawned once at build time and reused across every request, so the
//!   steady-state serving path performs zero thread spawns — and are
//!   merged back in key order, byte-identical to the sequential path
//!   (the property test in this module pins both axes for shard counts
//!   1 / 2 / 4 / 7). The scoped [`WorkerPool`] remains the *build*
//!   executor: offline shard builds want a burst of threads per call,
//!   not resident ones.
//! * **Per-shard replication** ([`ShardedEngineBuilder::replicas`],
//!   default 1): each shard is served by a [`ReplicatedShard`] — R
//!   serving replicas behind round-robin selection with health marking.
//!   A replica that surfaces an internal error at contact, or is
//!   administratively killed through the
//!   [`ShardedEngine::fail_replica`] hook, is marked down and skipped;
//!   traffic fails over to its siblings. Only when a shard loses *all*
//!   replicas does serving degrade to the typed
//!   [`RetrievalError::ShardUnavailable`]. Every response records the
//!   physical route taken in [`RetrievalStats::served_by`], so tests (and
//!   operators) can prove failover actually rerouted traffic. In this
//!   in-process model the replicas of one shard share the shard's
//!   immutable index storage — what a real deployment copies per machine
//!   — so replication is an availability knob, never a ranking change.
//!   Replicas additionally carry a **routing weight** (weight-0 replicas
//!   drain: they stay healthy but receive no fresh traffic unless every
//!   sibling is also draining — availability beats draining) and a
//!   **generation label** for snapshot warm-up bookkeeping (see
//!   [`crate::runtime::warm_rollout`]).
//! * **Hedged requests** ([`ShardedEngineBuilder::hedge_delay`], default
//!   off): with replicas ≥ 2, a per-shard gather that has not answered
//!   within the configured delay is re-issued to a sibling replica and
//!   the first response wins — [`RetrievalStats::served_by`] records the
//!   winner, and [`HedgeControl`] counts issued hedges and hedge wins.
//!   The delay is runtime-adjustable through
//!   [`ShardedEngine::hedge_control`], so operators can measure a p95
//!   first and derive the hedge delay from it without rebuilding.
//!   Because replicas serve identical data, hedging is a tail-latency
//!   knob, never a ranking change (parity-tested against the unhedged
//!   path).
//!
//! ## Why the merge is exactly right, not approximately right
//!
//! Serving fans a request out to every shard and must return *precisely*
//! what a single engine over the whole corpus would return — otherwise
//! resharding would change ranking behaviour in production. The naive
//! merge (concatenate per-shard top-k responses, re-sort) is **wrong**:
//! each shard's per-key `ads_per_key` cut admits ads the global cut would
//! have rejected, and such an ad can sneak into the merged top-n. Instead
//! the merge happens one level lower, per expanded key: every shard
//! contributes its posting-list prefix for the key, the prefixes are
//! merged in the index build's `(distance, id)` order and re-cut to the
//! global prefix length, and only then does the shared scoring path run.
//! Because posting lists are the k smallest `(distance, id)` pairs and
//! shards partition the candidates, the merged prefix is bit-for-bit the
//! prefix a whole-corpus index would have produced — parity holds for the
//! ads, the scores, the logical stats and the coverage attribution alike
//! (the property tests in this module assert all four; only the physical
//! [`RetrievalStats::served_by`] route reflects the topology).
//!
//! With the (deterministic) exact backend this parity is unconditional.
//! With IVF it holds only under full probing: per-shard clustering is a
//! different quantisation than whole-corpus clustering, so partial probes
//! may recall different candidates per shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
// amcad-lint: allow(no-std-sync-primitives) — the hedge rendezvous parks on std::sync::Condvar, which only pairs with std MutexGuard; poison is recovered via PoisonError::into_inner
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::engine::{
    ReplicaId, Request, RetrievalEngine, RetrievalResponse, RetrievalStats, Retrieve,
};
use crate::error::RetrievalError;
use crate::index_set::{IndexBuildConfig, IndexBuildInputs};
use crate::pool::WorkerPool;
use crate::retriever::{score_candidates, Key, RetrievalConfig};
use crate::runtime::park_pool::PersistentPool;

/// Batch-scope gather cache: `(is_item, key id)` → (index of the request
/// that first gathered it, the merged whole-corpus candidate prefix).
type MergedCache = HashMap<(bool, u32), (usize, Vec<(u32, f64)>)>;

/// Deterministic shard assignment for an ad id (Fibonacci hashing): the
/// same ad always lands on the same shard, independent of shard build
/// order, platform or process. Exposed so routers / delta-update tooling
/// can compute placements without an engine.
pub fn ad_shard(ad: u32, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    // multiplicative hash: the golden-ratio multiplier decorrelates
    // consecutive ids, and dropping the 7 low product bits (which barely
    // mix) before the mod keeps small shard counts from seeing patterns
    (ad.wrapping_mul(0x9E37_79B9) >> 7) as usize % shards
}

/// Split index-build inputs into per-shard inputs: ads hash-partitioned by
/// [`ad_shard`], queries and items replicated so every shard can expand
/// keys locally — the replication is an [`Arc`] bump per shard, every
/// shard's key-side fields point at the *same* point sets (asserted by
/// the tests in this module). A shard may end up with no ads at all (tiny
/// corpora); [`ShardedEngineBuilder::build`] skips such shards at build
/// time.
pub fn shard_inputs(inputs: &IndexBuildInputs, shards: usize) -> Vec<IndexBuildInputs> {
    let ads_qa = inputs
        .ads_qa
        .partition_by(shards, |ad| ad_shard(ad, shards));
    let ads_ia = inputs
        .ads_ia
        .partition_by(shards, |ad| ad_shard(ad, shards));
    ads_qa
        .into_iter()
        .zip(ads_ia)
        .map(|(ads_qa, ads_ia)| IndexBuildInputs {
            queries_qq: Arc::clone(&inputs.queries_qq),
            queries_qi: Arc::clone(&inputs.queries_qi),
            items_qi: Arc::clone(&inputs.items_qi),
            queries_qa: Arc::clone(&inputs.queries_qa),
            ads_qa,
            items_ii: Arc::clone(&inputs.items_ii),
            items_ia: Arc::clone(&inputs.items_ia),
            ads_ia,
        })
        .collect()
}

/// Builder for [`ShardedEngine`] — the same knobs as
/// [`crate::RetrievalEngineBuilder`] plus the cluster topology: shard
/// count, replicas per shard, build-pool and fan-out-pool widths.
#[derive(Debug, Clone)]
pub struct ShardedEngineBuilder {
    pub(crate) shards: usize,
    pub(crate) replicas: usize,
    pub(crate) build_threads: usize,
    pub(crate) fanout_threads: usize,
    pub(crate) hedge_delay: Option<Duration>,
    /// The persistent fan-out/hedge pool, created once per deployment by
    /// [`ShardedEngineBuilder::ensure_fanout_pool`] and shared (`Arc`)
    /// across every generation built from this topology — delta publishes
    /// and warm restarts reuse the resident threads instead of spawning
    /// new ones per generation.
    pub(crate) fanout_pool: Option<Arc<PersistentPool>>,
    pub(crate) index: IndexBuildConfig,
    pub(crate) retrieval: RetrievalConfig,
}

impl Default for ShardedEngineBuilder {
    fn default() -> Self {
        ShardedEngineBuilder {
            shards: 1,
            replicas: 1,
            build_threads: 0, // auto: min(shards, available cores)
            fanout_threads: 1,
            hedge_delay: None,
            fanout_pool: None,
            index: IndexBuildConfig::default(),
            retrieval: RetrievalConfig::default(),
        }
    }
}

impl ShardedEngineBuilder {
    /// Number of shards the ad corpus is hash-partitioned into (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Serving replicas per shard (default 1). Replicas of one shard serve
    /// identical data; extra replicas buy availability — traffic fails
    /// over round-robin when a replica is marked down — never a ranking
    /// change.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Worker threads the per-shard index builds run on (default 0 =
    /// auto: one per shard up to the machine's core count). The parallel
    /// build is byte-identical to the sequential one at any width.
    pub fn build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    /// Worker threads each request's shard fan-out gathers run on
    /// (default 1 = inline). Parallel fan-out is byte-identical to the
    /// sequential gather at any width.
    pub fn fanout_threads(mut self, fanout_threads: usize) -> Self {
        self.fanout_threads = fanout_threads.max(1);
        self
    }

    /// Enable hedged requests: a per-shard gather that has not answered
    /// within `delay` is re-issued to a sibling replica, and the first
    /// response wins (default: off). Requires `replicas >= 2` to have any
    /// effect — with a single replica per shard there is no sibling to
    /// hedge to, and the knob is silently inert. The delay can be
    /// re-tuned at runtime through [`ShardedEngine::hedge_control`]
    /// (e.g. measure a p95 first, then set the hedge delay from it).
    pub fn hedge_delay(mut self, delay: Duration) -> Self {
        self.hedge_delay = Some(delay);
        self
    }

    /// Create the persistent fan-out pool this topology serves on, if it
    /// needs one and does not have one yet. Called by every construction
    /// path ([`ShardedEngineBuilder::build`], the delta builder, the
    /// snapshot reader) so all generations of one deployment share a
    /// single resident pool. Hedging needs at least width 2 even with an
    /// inline fan-out: the hedged gathers run as background tasks.
    pub(crate) fn ensure_fanout_pool(&mut self) {
        let hedging = self.hedge_delay.is_some() && self.replicas > 1;
        let width = if hedging {
            self.fanout_threads.max(2)
        } else {
            self.fanout_threads
        };
        if width > 1 && self.fanout_pool.is_none() {
            self.fanout_pool = Some(Arc::new(PersistentPool::new(width)));
        }
    }

    /// Select the ANN backend every shard builds its indices with.
    pub fn backend(mut self, backend: amcad_mnn::IndexBackend) -> Self {
        self.index.backend = backend;
        self
    }

    /// Posting-list length kept per key (default 20).
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.index.top_k = top_k;
        self
    }

    /// Worker threads per shard build (default 4). This is the *inner*
    /// parallelism of one shard's index construction;
    /// [`ShardedEngineBuilder::build_threads`] is how many shards build
    /// concurrently.
    pub fn threads(mut self, threads: usize) -> Self {
        self.index.threads = threads;
        self
    }

    /// Replace the whole index-construction configuration.
    pub fn index(mut self, index: IndexBuildConfig) -> Self {
        self.index = index;
        self
    }

    /// Replace the two-layer retrieval configuration.
    pub fn retrieval(mut self, retrieval: RetrievalConfig) -> Self {
        self.retrieval = retrieval;
        self
    }

    /// Partition the inputs and build one [`RetrievalEngine`] per
    /// non-empty shard, running the independent per-shard builds on a
    /// scoped [`WorkerPool`] ([`ShardedEngineBuilder::build_threads`]
    /// wide). Results are re-assembled in shard order, so the parallel
    /// build produces exactly what the sequential loop would — the same
    /// engines *and* the same first error when a shard's build fails.
    /// Shards that receive no ads are skipped (their engines could never
    /// serve); if *every* shard is empty the build fails with the same
    /// [`RetrievalError::EmptyIndex`] a single engine over the whole
    /// inputs would report.
    pub fn build(mut self, inputs: &IndexBuildInputs) -> Result<ShardedEngine, RetrievalError> {
        self.validate_topology()?;
        self.ensure_fanout_pool();
        let parts = shard_inputs(inputs, self.shards);
        let build_pool = if self.build_threads == 0 {
            WorkerPool::sized_for(self.shards)
        } else {
            WorkerPool::new(self.build_threads)
        };
        let index = self.index;
        let retrieval = self.retrieval;
        let built: Vec<Result<Option<RetrievalEngine>, RetrievalError>> =
            build_pool.run(parts.len(), |s| {
                let part = &parts[s];
                if part.ads_qa.is_empty() && part.ads_ia.is_empty() {
                    return Ok(None); // the hash left this shard adless — skip it
                }
                RetrievalEngine::builder()
                    .index(index)
                    .retrieval(retrieval)
                    .build(part)
                    .map(Some)
            });
        let mut engines = Vec::with_capacity(self.shards);
        // consume in shard order: the first error reported matches the
        // sequential build's short-circuit exactly
        for result in built {
            if let Some(engine) = result? {
                engines.push(engine);
            }
        }
        if engines.is_empty() {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(ShardedEngine::from_shard_engines(
            engines.into_iter().map(std::sync::Arc::new).collect(),
            &self,
        ))
    }

    /// Cold-start a sharded deployment from a snapshot file written by
    /// [`crate::EngineHandle::save_snapshot`]. The cluster topology,
    /// backend and retrieval configuration all come from the file (they
    /// are part of the persisted state), and the decoded indices are
    /// served as-is — no O(keys × ads) rebuild. Use this when serving
    /// from a fixed corpus image; use [`crate::EngineHandle::load`] when
    /// the process also needs to catch up via deltas.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
    ) -> Result<ShardedEngine, RetrievalError> {
        let (_generation, builder) = crate::store::read_snapshot(path.as_ref())?;
        builder.engine()
    }

    /// Reject zero-sized topology knobs (shared by the builder and the
    /// delta builder).
    pub(crate) fn validate_topology(&self) -> Result<(), RetrievalError> {
        if self.shards == 0 {
            return Err(RetrievalError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        if self.replicas == 0 {
            return Err(RetrievalError::InvalidConfig(
                "replica count must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// State of one serving replica slot.
#[derive(Debug)]
struct ReplicaSlot {
    /// Marked down: administratively killed, or observed erroring.
    down: AtomicBool,
    /// Test hook: the next contact surfaces an internal error.
    poisoned: AtomicBool,
    /// Requests this replica served (routing attribution).
    serves: AtomicU64,
    /// Routing weight. Default 1; 0 drains the replica — it stays
    /// healthy but receives no fresh traffic unless every sibling is
    /// also draining (availability beats draining).
    weight: AtomicU64,
    /// Test hook: artificial contact latency in nanoseconds, applied to
    /// hedged gathers against this replica (models a degraded machine).
    delay_ns: AtomicU64,
    /// Generation label for warm-up bookkeeping (0 = unlabeled). Purely
    /// observational in this in-process model: data visibility flips
    /// atomically at publish, the label records which snapshot
    /// generation a replica was warmed from.
    generation: AtomicU64,
}

impl ReplicaSlot {
    fn healthy() -> Self {
        ReplicaSlot {
            down: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            serves: AtomicU64::new(0),
            weight: AtomicU64::new(1),
            delay_ns: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }
}

/// One shard's replica set: R serving replicas behind round-robin
/// selection with health marking.
///
/// The replicas of a shard serve identical data — in this in-process
/// model they share the shard's immutable index storage (a real
/// deployment copies it per machine) — so which replica answers can never
/// change a ranking. What the replica set adds is *availability*: a
/// replica that errors at contact or is killed through
/// [`ReplicatedShard::fail_replica`] is marked down and skipped, traffic
/// fails over to its siblings, and only a shard with zero healthy
/// replicas degrades serving to [`RetrievalError::ShardUnavailable`].
#[derive(Debug)]
pub struct ReplicatedShard {
    engine: Arc<RetrievalEngine>,
    slots: Vec<ReplicaSlot>,
    cursor: AtomicUsize,
}

impl Clone for ReplicatedShard {
    /// Clones carry over the current health marking and serve counters.
    /// The clone shares the shard's immutable index storage (an [`Arc`]
    /// bump, not a deep copy).
    fn clone(&self) -> Self {
        ReplicatedShard {
            engine: Arc::clone(&self.engine),
            slots: self
                .slots
                .iter()
                .map(|slot| ReplicaSlot {
                    down: AtomicBool::new(slot.down.load(Ordering::Acquire)),
                    poisoned: AtomicBool::new(slot.poisoned.load(Ordering::Acquire)),
                    // serves is a monotonic telemetry counter: an older
                    // snapshot is still correct, so Relaxed
                    serves: AtomicU64::new(slot.serves.load(Ordering::Relaxed)),
                    weight: AtomicU64::new(slot.weight.load(Ordering::Acquire)),
                    delay_ns: AtomicU64::new(slot.delay_ns.load(Ordering::Acquire)),
                    generation: AtomicU64::new(slot.generation.load(Ordering::Acquire)),
                })
                .collect(),
            // round-robin hint only: any starting cursor is valid
            cursor: AtomicUsize::new(self.cursor.load(Ordering::Relaxed)),
        }
    }
}

impl ReplicatedShard {
    fn new(engine: Arc<RetrievalEngine>, replicas: usize) -> Self {
        ReplicatedShard {
            engine,
            slots: (0..replicas).map(|_| ReplicaSlot::healthy()).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The shard's engine (shared by all of its replicas).
    pub fn engine(&self) -> &RetrievalEngine {
        &self.engine
    }

    /// The shard's shared, immutable index storage. Delta publishes reuse
    /// this [`Arc`] for shards a delta does not touch, so a generation
    /// swap leaves untouched shards byte-identical (pointer-identical, in
    /// fact — `Arc::ptr_eq` across generations proves the reuse).
    pub fn engine_shared(&self) -> &Arc<RetrievalEngine> {
        &self.engine
    }

    /// Configured replicas for this shard.
    pub fn replica_count(&self) -> usize {
        self.slots.len()
    }

    /// Replicas currently accepting traffic.
    pub fn healthy_replicas(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| !slot.down.load(Ordering::Acquire))
            .count()
    }

    /// Administratively kill replica `replica`: it stops receiving
    /// traffic immediately; siblings absorb its share.
    pub fn fail_replica(&self, replica: usize) {
        self.slots[replica].down.store(true, Ordering::Release);
    }

    /// Bring replica `replica` back into rotation (clears both the down
    /// marking and any injected fault).
    pub fn restore_replica(&self, replica: usize) {
        self.slots[replica].poisoned.store(false, Ordering::Release);
        self.slots[replica].down.store(false, Ordering::Release);
    }

    /// Test hook: make replica `replica`'s next contact surface an
    /// internal error. The router observes the error, marks the replica
    /// down and fails over to a sibling within the same request.
    pub fn poison_replica(&self, replica: usize) {
        self.slots[replica].poisoned.store(true, Ordering::Release);
    }

    /// Requests served per replica since the engine was built — the
    /// routing attribution that lets a test prove round-robin spread and
    /// post-failure rerouting.
    pub fn serve_counts(&self) -> Vec<u64> {
        self.slots
            .iter()
            // monotonic telemetry counter — a slightly stale snapshot is
            // still a valid attribution, so Relaxed
            .map(|slot| slot.serves.load(Ordering::Relaxed))
            .collect()
    }

    /// Routing weights per replica (down replicas report their stored
    /// weight — being down is orthogonal to draining).
    pub fn replica_weights(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|slot| slot.weight.load(Ordering::Acquire))
            .collect()
    }

    /// Set replica `replica`'s routing weight. Weight 0 drains the
    /// replica: it stays in the healthy set (and still serves if every
    /// sibling is drained or down) but receives no fresh traffic
    /// otherwise. At equal nonzero weights the routing degenerates to
    /// the classic per-request round-robin.
    pub fn set_replica_weight(&self, replica: usize, weight: u64) {
        self.slots[replica].weight.store(weight, Ordering::Release);
    }

    /// Test hook: add artificial latency to hedged gathers contacting
    /// replica `replica` (models a degraded machine for hedging tests).
    pub fn delay_replica(&self, replica: usize, delay: Duration) {
        self.slots[replica]
            .delay_ns
            .store(delay.as_nanos() as u64, Ordering::Release);
    }

    /// The artificial contact latency of replica `replica`.
    fn contact_delay(&self, replica: u32) -> Duration {
        Duration::from_nanos(
            self.slots[replica as usize]
                .delay_ns
                .load(Ordering::Acquire),
        )
    }

    /// Start warming replica `replica`: drain it (weight 0) so it stops
    /// receiving fresh traffic while the next generation's data loads.
    pub fn begin_warmup(&self, replica: usize) {
        self.set_replica_weight(replica, 0);
    }

    /// Finish warming replica `replica`: label it with the generation it
    /// now carries and restore its routing weight.
    pub fn finish_warmup(&self, replica: usize, generation: u64) {
        self.slots[replica]
            .generation
            .store(generation, Ordering::Release);
        self.set_replica_weight(replica, 1);
    }

    /// Per-replica generation labels (0 = never labeled).
    pub fn replica_generations(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|slot| slot.generation.load(Ordering::Acquire))
            .collect()
    }

    /// Label every replica of this shard with `generation`.
    pub fn label_generations(&self, generation: u64) {
        for slot in &self.slots {
            slot.generation.store(generation, Ordering::Release);
        }
    }

    /// Pick the serving replica for one request: weighted selection over
    /// healthy replicas, driven by the shared cursor (at equal weights
    /// this is exactly the classic round-robin). A poisoned replica
    /// errors at first contact — it is marked down and the pick fails
    /// over to the next healthy sibling. If every healthy replica is
    /// draining (weight 0), plain round-robin over the healthy set takes
    /// over: availability beats draining. `shard` is only for the error
    /// report.
    fn pick(&self, shard: usize) -> Result<u32, RetrievalError> {
        let n = self.slots.len();
        // hoisted out of the retry loop: a pick that fails over reuses
        // the replica scratch instead of reallocating it per attempt
        let mut weights = Vec::with_capacity(n);
        let mut healthy = Vec::with_capacity(n);
        // amcad-lint: allow(unbounded-fanout) — failover retry loop: each retry first marks one replica down, so iterations are bounded by the replica count
        loop {
            // round-robin ticket: RMW atomicity spreads concurrent picks;
            // which exact slot a pick lands on is not a correctness
            // property, so Relaxed
            let start = self.cursor.fetch_add(1, Ordering::Relaxed);
            weights.clear();
            healthy.clear();
            let mut total: u64 = 0;
            let mut any_healthy = false;
            for slot in &self.slots {
                let up = !slot.down.load(Ordering::Acquire);
                any_healthy |= up;
                let w = if up {
                    slot.weight.load(Ordering::Acquire)
                } else {
                    0
                };
                total += w;
                weights.push(w);
                healthy.push(up);
            }
            if !any_healthy {
                return Err(RetrievalError::ShardUnavailable { shard, replicas: n });
            }
            let replica = if total == 0 {
                // every healthy replica is drained — serve anyway
                (0..n)
                    .map(|k| (start + k) % n)
                    .find(|&r| healthy[r])
                    .expect("any_healthy checked above")
            } else {
                // cursor-driven inverse-CDF over the integer weights:
                // deterministic, and identical to round-robin when all
                // healthy weights are equal
                let mut x = start as u64 % total;
                let mut chosen = 0;
                for (r, &w) in weights.iter().enumerate() {
                    if x < w {
                        chosen = r;
                        break;
                    }
                    x -= w;
                }
                chosen
            };
            if self.slots[replica].poisoned.swap(false, Ordering::AcqRel) {
                // the contact surfaced an internal error: mark the replica
                // down and retry — failover within the same request
                self.slots[replica].down.store(true, Ordering::Release);
                continue;
            }
            // monotonic telemetry counter, read by serve_counts() — Relaxed
            self.slots[replica].serves.fetch_add(1, Ordering::Relaxed);
            return Ok(replica as u32);
        }
    }

    /// Pick a healthy replica other than `exclude` for a hedged gather
    /// (round-robin from the shared cursor; poisoned siblings are marked
    /// down, exactly like [`ReplicatedShard::pick`]). `None` when the
    /// primary is the only healthy replica left — then there is nobody
    /// to hedge to and the request simply waits for the primary.
    fn pick_sibling(&self, exclude: u32) -> Option<u32> {
        let n = self.slots.len();
        // round-robin ticket, as in pick(): slot choice is not a
        // correctness property, so Relaxed
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let r = (start + k) % n;
            if r as u32 == exclude || self.slots[r].down.load(Ordering::Acquire) {
                continue;
            }
            if self.slots[r].poisoned.swap(false, Ordering::AcqRel) {
                self.slots[r].down.store(true, Ordering::Release);
                continue;
            }
            // monotonic telemetry counter, read by serve_counts() — Relaxed
            self.slots[r].serves.fetch_add(1, Ordering::Relaxed);
            return Some(r as u32);
        }
        None
    }
}

/// Shared observability and tuning surface of the hedged-request path.
///
/// One instance per [`ShardedEngine`] deployment (shared by clones and
/// delta generations through the builder's pool `Arc`). The delay is a
/// live knob: measure a p95 on real traffic first, then
/// [`HedgeControl::set_delay`] the p9x-derived value without rebuilding
/// the engine.
#[derive(Debug)]
pub struct HedgeControl {
    delay_nanos: AtomicU64,
    issued: AtomicU64,
    won: AtomicU64,
}

impl HedgeControl {
    fn new(delay: Duration) -> Self {
        HedgeControl {
            delay_nanos: AtomicU64::new(delay.as_nanos() as u64),
            issued: AtomicU64::new(0),
            won: AtomicU64::new(0),
        }
    }

    /// The current hedge delay: how long a shard gather may straggle
    /// before a sibling replica is hedged in.
    pub fn delay(&self) -> Duration {
        Duration::from_nanos(self.delay_nanos.load(Ordering::Acquire))
    }

    /// Re-tune the hedge delay at runtime (takes effect on the next
    /// request).
    pub fn set_delay(&self, delay: Duration) {
        self.delay_nanos
            .store(delay.as_nanos() as u64, Ordering::Release);
    }

    /// Hedge sub-requests issued since the deployment was built.
    pub fn issued(&self) -> u64 {
        // monotonic telemetry counter — Relaxed
        self.issued.load(Ordering::Relaxed)
    }

    /// Hedge sub-requests that beat the primary replica to the answer.
    pub fn wins(&self) -> u64 {
        // monotonic telemetry counter — Relaxed
        self.won.load(Ordering::Relaxed)
    }
}

/// The hedging machinery of one deployment: the shared control/counters
/// plus the persistent pool the hedged gathers run on.
#[derive(Debug, Clone)]
struct HedgeRuntime {
    control: Arc<HedgeControl>,
    pool: Arc<PersistentPool>,
}

/// First-response-wins rendezvous between a request and its (up to two)
/// replica gathers for one shard.
struct GatherSlot {
    outcome: Mutex<Option<GatherOutcome>>,
    ready: Condvar,
}

/// What a replica gather delivers: who answered, and that shard's local
/// posting-list prefix for every expanded key.
struct GatherOutcome {
    replica: u32,
    lists: Vec<Vec<(u32, f64)>>,
}

impl GatherSlot {
    fn new() -> Self {
        GatherSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Deliver a gather result; only the first delivery is kept.
    fn deliver(&self, replica: u32, lists: Vec<Vec<(u32, f64)>>) {
        let mut slot = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(GatherOutcome { replica, lists });
            self.ready.notify_all();
        }
    }

    /// Wait up to `timeout` for a delivery; `None` means the gather is
    /// straggling and the caller should consider hedging.
    fn wait_for(&self, timeout: Duration) -> Option<GatherOutcome> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        // amcad-lint: allow(unbounded-fanout) — condvar wait loop: bounded by the deadline (checked every wakeup) or a gather delivery
        loop {
            if guard.is_some() {
                return guard.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Block until some gather delivers.
    fn wait(&self) -> GatherOutcome {
        let mut guard = self.outcome.lock().unwrap_or_else(PoisonError::into_inner);
        // amcad-lint: allow(unbounded-fanout) — condvar wait loop: bounded by gather delivery; callers only block here after at least one gather was spawned
        loop {
            if let Some(outcome) = guard.take() {
                return outcome;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Launch one replica gather as a background task on the persistent
/// pool. The task owns everything it touches (`Arc`s and copies), so an
/// abandoned straggler — its sibling already won — finishes harmlessly
/// in the background.
///
/// A gather against an artificially delayed replica (the
/// [`ReplicatedShard::delay_replica`] fault hook) runs on a throwaway
/// thread instead: a simulated straggler parked in `sleep` would
/// otherwise occupy a resident worker and starve the very hedge it is
/// supposed to lose to. Undelayed gathers — the production path — never
/// spawn.
fn spawn_gather(
    pool: &PersistentPool,
    shard: &ReplicatedShard,
    replica: u32,
    keys: &Arc<Vec<Key>>,
    per_key: usize,
    slot: &Arc<GatherSlot>,
) {
    let engine = Arc::clone(shard.engine_shared());
    let delay = shard.contact_delay(replica);
    let keys = Arc::clone(keys);
    let slot = Arc::clone(slot);
    let gather = move || {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let lists: Vec<Vec<(u32, f64)>> = keys
            .iter()
            // amcad-lint: allow(alloc-in-hot-loop) — the gather must own its lists: an abandoned straggler outlives every borrow of the engine's postings (see the fn doc), so copying out is the safety contract, not an oversight
            .map(|key| engine.retriever().key_candidates(key, per_key).to_vec())
            .collect();
        slot.deliver(replica, lists);
    };
    if delay.is_zero() {
        pool.spawn(gather);
    } else {
        // amcad-lint: allow(thread-discipline) — a fault-injected straggler parked in sleep() would occupy a resident PersistentPool worker and starve the very hedge it is supposed to lose to, so delayed gathers run on a throwaway thread (see the doc comment above)
        std::thread::spawn(gather);
    }
}

/// An ad corpus hash-partitioned across N replicated single-node engines,
/// served by fanning each request out to every shard (in parallel when
/// configured) and merging per-key candidate prefixes back into the
/// globally correct ranking (see the module docs for why the merge is
/// exact and how replication fails over).
///
/// The merged [`RetrievalStats`] describe the *logical* request — they
/// are identical to what a single whole-corpus engine would report, which
/// is what makes shard count, replica count and pool widths pure
/// deployment knobs. The one physical field is
/// [`RetrievalStats::served_by`]: the replica route this request actually
/// took, one entry per active shard. The raw cluster-wide work (each
/// shard scans its own first layer) is `active_shards()` times the
/// first-layer share of the counters.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<ReplicatedShard>,
    num_shards: usize,
    replicas: usize,
    index_config: IndexBuildConfig,
    retrieval: RetrievalConfig,
    fanout: FanoutExec,
    /// Configured fan-out width, reported truthfully even when hedging
    /// widened the shared pool (hedging needs width ≥ 2 for its
    /// background gathers).
    fanout_threads: usize,
    hedge: Option<HedgeRuntime>,
}

/// How a request's per-key shard gathers execute: inline on the calling
/// thread (width 1), or stolen by the deployment's persistent parked
/// pool. The enum keeps the width-1 path free of any queue interaction.
#[derive(Debug, Clone)]
enum FanoutExec {
    Inline,
    Pooled(Arc<PersistentPool>),
}

impl FanoutExec {
    fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self {
            FanoutExec::Inline => (0..jobs).map(f).collect(),
            FanoutExec::Pooled(pool) => pool.run(jobs, f),
        }
    }
}

impl ShardedEngine {
    /// Start building a sharded engine.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::default()
    }

    /// Assemble a serving engine around already-built (and possibly
    /// shared) per-shard engines, in active-shard order. This is how a
    /// delta publish constructs the next generation: shards the delta did
    /// not touch contribute the *same* [`Arc`] as the previous
    /// generation, so their index storage is reused rather than copied.
    /// Replica health marking starts fresh — a new generation's replicas
    /// all begin in rotation.
    pub(crate) fn from_shard_engines(
        engines: Vec<Arc<RetrievalEngine>>,
        topology: &ShardedEngineBuilder,
    ) -> ShardedEngine {
        debug_assert!(!engines.is_empty(), "callers reject all-empty builds");
        // the persistent pool arrives through the topology so every
        // generation of one deployment shares the same resident threads;
        // the unwrap_or_else covers callers that construct topologies by
        // hand without ensure_fanout_pool
        let fanout = if topology.fanout_threads > 1 {
            FanoutExec::Pooled(
                topology
                    .fanout_pool
                    .as_ref()
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::new(PersistentPool::new(topology.fanout_threads))),
            )
        } else {
            FanoutExec::Inline
        };
        let hedge = topology
            .hedge_delay
            .filter(|_| topology.replicas > 1)
            .map(|delay| HedgeRuntime {
                control: Arc::new(HedgeControl::new(delay)),
                pool: topology
                    .fanout_pool
                    .as_ref()
                    .map(Arc::clone)
                    .unwrap_or_else(|| Arc::new(PersistentPool::new(2))),
            });
        ShardedEngine {
            shards: engines
                .into_iter()
                .map(|engine| ReplicatedShard::new(engine, topology.replicas))
                .collect(),
            num_shards: topology.shards,
            replicas: topology.replicas,
            index_config: topology.index,
            retrieval: topology.retrieval,
            fanout,
            fanout_threads: topology.fanout_threads,
            hedge,
        }
    }

    /// The configured shard count (including shards skipped for emptiness).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of shards actually holding ads and serving.
    pub fn active_shards(&self) -> usize {
        self.shards.len()
    }

    /// Configured serving replicas per shard.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Threads each request's fan-out gathers run on (1 = inline).
    pub fn fanout_threads(&self) -> usize {
        self.fanout_threads
    }

    /// One shard's replica set, by active-shard index.
    pub fn shard(&self, shard: usize) -> &ReplicatedShard {
        &self.shards[shard]
    }

    /// The per-shard engines, in active-shard order (empty shards
    /// omitted; replicas of a shard share its engine).
    pub fn shard_engines(&self) -> impl Iterator<Item = &RetrievalEngine> + '_ {
        self.shards.iter().map(ReplicatedShard::engine)
    }

    /// Administratively kill one replica (active-shard index, replica
    /// index) — the failover test hook. Traffic reroutes to the shard's
    /// remaining replicas; rankings never change.
    pub fn fail_replica(&self, shard: usize, replica: usize) {
        self.shards[shard].fail_replica(replica);
    }

    /// Bring a killed (or poisoned) replica back into rotation.
    pub fn restore_replica(&self, shard: usize, replica: usize) {
        self.shards[shard].restore_replica(replica);
    }

    /// Test hook: the replica's next contact surfaces an internal error,
    /// which marks it down and fails the request over to a sibling.
    pub fn poison_replica(&self, shard: usize, replica: usize) {
        self.shards[shard].poison_replica(replica);
    }

    /// Requests served per replica per active shard — routing
    /// attribution for tests and operators.
    pub fn replica_serves(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(ReplicatedShard::serve_counts)
            .collect()
    }

    /// Set one replica's routing weight (0 drains it — see
    /// [`ReplicatedShard::set_replica_weight`]).
    pub fn set_replica_weight(&self, shard: usize, replica: usize, weight: u64) {
        self.shards[shard].set_replica_weight(replica, weight);
    }

    /// Routing weights per replica per active shard.
    pub fn replica_weights(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(ReplicatedShard::replica_weights)
            .collect()
    }

    /// Test hook: add artificial contact latency to one replica's hedged
    /// gathers (models a degraded machine).
    pub fn delay_replica(&self, shard: usize, replica: usize, delay: Duration) {
        self.shards[shard].delay_replica(replica, delay);
    }

    /// Start warming one replica: drain its routing weight so it stops
    /// taking fresh traffic while the next generation loads (see
    /// [`crate::runtime::warm_rollout`]).
    pub fn begin_warmup(&self, shard: usize, replica: usize) {
        self.shards[shard].begin_warmup(replica);
    }

    /// Finish warming one replica: label it with `generation` and restore
    /// its routing weight.
    pub fn finish_warmup(&self, shard: usize, replica: usize, generation: u64) {
        self.shards[shard].finish_warmup(replica, generation);
    }

    /// Per-replica generation labels per active shard (0 = unlabeled).
    pub fn replica_generations(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(ReplicatedShard::replica_generations)
            .collect()
    }

    /// Label every replica of every shard with `generation` (a freshly
    /// built or loaded deployment carries one generation everywhere).
    pub fn label_generations(&self, generation: u64) {
        for shard in &self.shards {
            shard.label_generations(generation);
        }
    }

    /// The hedging control surface, when hedged requests are enabled
    /// (requires [`ShardedEngineBuilder::hedge_delay`] and replicas ≥ 2).
    pub fn hedge_control(&self) -> Option<&Arc<HedgeControl>> {
        self.hedge.as_ref().map(|h| &h.control)
    }

    /// The index-construction configuration every shard was built with.
    pub fn index_config(&self) -> &IndexBuildConfig {
        &self.index_config
    }

    /// The two-layer retrieval configuration.
    pub fn config(&self) -> &RetrievalConfig {
        &self.retrieval
    }

    /// Choose the serving replica of every active shard for one request
    /// (round-robin with failover). `Err(ShardUnavailable)` when any
    /// shard has no healthy replica left — checked before any serving
    /// work, so a degraded cluster rejects requests instead of silently
    /// serving a corpus with a hole in it.
    fn route(&self) -> Result<Vec<ReplicaId>, RetrievalError> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                shard.pick(s).map(|replica| ReplicaId {
                    shard: s as u32,
                    replica,
                })
            })
            .collect()
    }

    /// The globally correct candidate prefix of one key: every shard's
    /// local prefix, merged in the index build's posting order (distance,
    /// then id — NaN distances were normalised to +inf at build time) and
    /// re-cut to the whole-corpus prefix length. A whole-corpus posting
    /// list is at most `top_k` long, so the global cut is
    /// `min(ads_per_key, top_k)`.
    fn merged_candidates(&self, key: &Key) -> Vec<(u32, f64)> {
        let per_key = self.retrieval.ads_per_key;
        let global_cut = per_key.min(self.index_config.top_k);
        let mut list: Vec<(u32, f64)> = Vec::new();
        for shard in &self.shards {
            list.extend_from_slice(shard.engine().retriever().key_candidates(key, per_key));
        }
        list.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        list.truncate(global_cut);
        list
    }

    /// Serve one request: route to one healthy replica per shard (or fail
    /// with [`RetrievalError::ShardUnavailable`]), expand keys once
    /// (first-layer indices are replicated, so any shard's expansion is
    /// *the* expansion), gather each key's merged whole-corpus candidate
    /// prefix — on the fan-out pool when one is configured — then score
    /// through the shared path. Scan counters are accumulated in key
    /// order after the gather, so the parallel fan-out reports exactly
    /// the sequential stats.
    pub fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        if let Some(hedge) = &self.hedge {
            return self.retrieve_hedged(request, hedge);
        }
        let route = self.route()?;
        let mut stats = RetrievalStats::default();
        let mut keys = Vec::new();
        self.shards[0].engine().retriever().expand_keys_into(
            request.query,
            &request.preclick_items,
            &mut stats,
            &mut keys,
        );
        let merged: Vec<Vec<(u32, f64)>> = self
            .fanout
            .run(keys.len(), |i| self.merged_candidates(&keys[i]));
        for list in &merged {
            stats.postings_scanned += list.len();
        }
        let candidates: Vec<&[(u32, f64)]> = merged.iter().map(Vec::as_slice).collect();
        let mut scratch = HashMap::new();
        let ads = score_candidates(
            &keys,
            &candidates,
            self.retrieval.final_top_n,
            &mut scratch,
            &mut stats,
        );
        stats.served_by = route;
        if ads.is_empty() {
            return Err(RetrievalError::NoCoverage {
                query: request.query,
                stats,
            });
        }
        Ok(RetrievalResponse { ads, stats })
    }

    /// The hedged serving path: per shard, contact one picked replica as
    /// a background gather on the persistent pool; if it has not
    /// answered within the hedge delay, re-issue the gather to a sibling
    /// replica and take whichever delivers first.
    /// [`RetrievalStats::served_by`] records the winner — the loser's
    /// gather finishes harmlessly in the background (it owns its data).
    ///
    /// The per-key merge re-implements [`ShardedEngine::merged_candidates`]
    /// over the gathered per-shard lists — same `(distance, id)` order,
    /// same global cut — so the hedged path is *logically* byte-identical
    /// to the unhedged one (parity-tested below): replicas serve
    /// identical data, so hedging can only change the route, never the
    /// ranking. Batches do not hedge: [`ShardedEngine::retrieve_batch`]
    /// amortises gathers across requests, which already bounds the
    /// per-request straggler cost hedging exists to cut.
    fn retrieve_hedged(
        &self,
        request: &Request,
        hedge: &HedgeRuntime,
    ) -> Result<RetrievalResponse, RetrievalError> {
        let mut stats = RetrievalStats::default();
        let mut keys = Vec::new();
        self.shards[0].engine().retriever().expand_keys_into(
            request.query,
            &request.preclick_items,
            &mut stats,
            &mut keys,
        );
        let keys = Arc::new(keys);
        let per_key = self.retrieval.ads_per_key;
        let global_cut = per_key.min(self.index_config.top_k);
        let mut route = Vec::with_capacity(self.shards.len());
        let mut per_shard: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter().enumerate() {
            let primary = shard.pick(s)?;
            let slot = Arc::new(GatherSlot::new());
            spawn_gather(&hedge.pool, shard, primary, &keys, per_key, &slot);
            let outcome = match slot.wait_for(hedge.control.delay()) {
                Some(outcome) => outcome,
                None => {
                    // the primary is straggling: hedge to a sibling and
                    // take the first response (no sibling → keep waiting)
                    if let Some(sibling) = shard.pick_sibling(primary) {
                        // monotonic telemetry counter — Relaxed
                        hedge.control.issued.fetch_add(1, Ordering::Relaxed);
                        spawn_gather(&hedge.pool, shard, sibling, &keys, per_key, &slot);
                    }
                    slot.wait()
                }
            };
            if outcome.replica != primary {
                // monotonic telemetry counter — Relaxed
                hedge.control.won.fetch_add(1, Ordering::Relaxed);
            }
            route.push(ReplicaId {
                shard: s as u32,
                replica: outcome.replica,
            });
            per_shard.push(outcome.lists);
        }
        let merged: Vec<Vec<(u32, f64)>> = (0..keys.len())
            .map(|k| {
                // amcad-lint: allow(alloc-in-hot-loop) — each merged list is an owned per-key output collected into `merged` and borrowed by scoring below; it cannot be a reused scratch buffer
                let mut list: Vec<(u32, f64)> = Vec::new();
                for lists in &per_shard {
                    list.extend_from_slice(&lists[k]);
                }
                list.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                list.truncate(global_cut);
                list
            })
            .collect();
        for list in &merged {
            stats.postings_scanned += list.len();
        }
        let candidates: Vec<&[(u32, f64)]> = merged.iter().map(Vec::as_slice).collect();
        let mut scratch = HashMap::new();
        let ads = score_candidates(
            &keys,
            &candidates,
            self.retrieval.final_top_n,
            &mut scratch,
            &mut stats,
        );
        stats.served_by = route;
        if ads.is_empty() {
            return Err(RetrievalError::NoCoverage {
                query: request.query,
                stats,
            });
        }
        Ok(RetrievalResponse { ads, stats })
    }

    /// Serve a batch with the same cross-request scan dedup as
    /// [`RetrievalEngine::retrieve_batch`]: the merged candidate prefix of
    /// each distinct `(layer, key)` is gathered from the shards once per
    /// batch — each request's *new* keys gathered on the fan-out pool —
    /// and attributed to the first request that needed it. Rankings and
    /// logical stats are identical to what the single-node batch path
    /// reports over the whole corpus — batching semantics are
    /// topology-invariant. Each request is routed (and can fail over)
    /// independently, so one request hitting a dead shard yields its own
    /// [`RetrievalError::ShardUnavailable`] without poisoning the batch.
    pub fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        let mut fetched: MergedCache = HashMap::new();
        // per-request scratch, pre-sized for the common fan-out (raw
        // query + expansions) and reused across the batch
        let mut keys: Vec<Key> = Vec::new();
        let mut missing: Vec<Key> =
            Vec::with_capacity(2 * (1 + self.retrieval.expansion_per_index));
        let mut scratch = HashMap::new();
        let mut out = Vec::with_capacity(requests.len());
        for (r, request) in requests.iter().enumerate() {
            let route = match self.route() {
                Ok(route) => route,
                Err(e) => {
                    out.push(Err(e));
                    continue;
                }
            };
            let mut stats = RetrievalStats::default();
            self.shards[0].engine().retriever().expand_keys_into(
                request.query,
                &request.preclick_items,
                &mut stats,
                &mut keys,
            );
            // gather pass: this request's not-yet-cached keys fan out on
            // the pool, then land in the cache in key order
            missing.clear();
            for key in &keys {
                let cached = fetched.contains_key(&(key.is_item, key.id));
                let queued = missing
                    .iter()
                    .any(|m| m.is_item == key.is_item && m.id == key.id);
                if !cached && !queued {
                    missing.push(*key);
                }
            }
            let gathered = self
                .fanout
                .run(missing.len(), |i| self.merged_candidates(&missing[i]));
            for (key, list) in missing.iter().zip(gathered) {
                fetched.insert((key.is_item, key.id), (r, list));
            }
            // count pass: scans of a key first gathered by this request
            // are attributed here (a repeat within the *same* request
            // re-counts, mirroring the single path)
            for key in &keys {
                let (first, list) = &fetched[&(key.is_item, key.id)];
                if *first == r {
                    stats.postings_scanned += list.len();
                }
            }
            // score pass: borrow the now-stable cache entries
            let candidates: Vec<&[(u32, f64)]> = keys
                .iter()
                .map(|key| fetched[&(key.is_item, key.id)].1.as_slice())
                .collect();
            let ads = score_candidates(
                &keys,
                &candidates,
                self.retrieval.final_top_n,
                &mut scratch,
                &mut stats,
            );
            stats.served_by = route;
            out.push(if ads.is_empty() {
                Err(RetrievalError::NoCoverage {
                    query: request.query,
                    stats,
                })
            } else {
                Ok(RetrievalResponse { ads, stats })
            });
        }
        out
    }
}

impl Retrieve for ShardedEngine {
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        ShardedEngine::retrieve(self, request)
    }

    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        ShardedEngine::retrieve_batch(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{random_points, shared_points, tiny_inputs};
    use amcad_mnn::{IndexBackend, IvfConfig, MixedPointSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn single_engine(inputs: &IndexBuildInputs, top_k: usize) -> RetrievalEngine {
        RetrievalEngine::builder()
            .top_k(top_k)
            .threads(1)
            .build(inputs)
            .unwrap()
    }

    fn sharded_engine(inputs: &IndexBuildInputs, shards: usize, top_k: usize) -> ShardedEngine {
        ShardedEngine::builder()
            .shards(shards)
            .top_k(top_k)
            .threads(1)
            .build_threads(1)
            .build(inputs)
            .unwrap()
    }

    /// The topology-invariant view of a served result: the physical
    /// `served_by` route is deployment attribution (single engines have
    /// none, sharded engines one entry per shard), so parity between
    /// topologies is asserted over everything else.
    fn logical(
        result: Result<RetrievalResponse, RetrievalError>,
    ) -> Result<RetrievalResponse, RetrievalError> {
        result
            .map(RetrievalResponse::logical)
            .map_err(RetrievalError::logical)
    }

    fn fixed_requests(n: u32) -> Vec<Request> {
        (0..n)
            .map(|q| Request {
                query: q % 10,
                preclick_items: vec![100 + (q % 10)],
            })
            .collect()
    }

    #[test]
    fn ad_shard_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for ad in (0..2000u32).step_by(13) {
                let s = ad_shard(ad, shards);
                assert!(s < shards);
                assert_eq!(s, ad_shard(ad, shards), "assignment must be stable");
            }
        }
        // the hash actually spreads ads (no degenerate single-shard pile-up)
        let mut counts = [0usize; 4];
        for ad in 0..1000u32 {
            counts[ad_shard(ad, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed split: {counts:?}");
    }

    #[test]
    fn shard_inputs_partition_ads_and_replicate_keys() {
        let inputs = tiny_inputs();
        let parts = shard_inputs(&inputs, 3);
        assert_eq!(parts.len(), 3);
        let total_qa: usize = parts.iter().map(|p| p.ads_qa.len()).sum();
        let total_ia: usize = parts.iter().map(|p| p.ads_ia.len()).sum();
        assert_eq!(total_qa, inputs.ads_qa.len());
        assert_eq!(total_ia, inputs.ads_ia.len());
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.queries_qq.ids(), inputs.queries_qq.ids());
            assert_eq!(part.items_ii.ids(), inputs.items_ii.ids());
            // the replication is an Arc bump: every shard's key-side
            // fields alias the caller's point sets, no copies
            assert!(Arc::ptr_eq(&part.queries_qq, &inputs.queries_qq));
            assert!(Arc::ptr_eq(&part.queries_qi, &inputs.queries_qi));
            assert!(Arc::ptr_eq(&part.items_qi, &inputs.items_qi));
            assert!(Arc::ptr_eq(&part.queries_qa, &inputs.queries_qa));
            assert!(Arc::ptr_eq(&part.items_ii, &inputs.items_ii));
            assert!(Arc::ptr_eq(&part.items_ia, &inputs.items_ia));
            // both ad spaces of one shard hold the same ad ids
            let mut qa: Vec<u32> = part.ads_qa.ids().to_vec();
            let mut ia: Vec<u32> = part.ads_ia.ids().to_vec();
            qa.sort_unstable();
            ia.sort_unstable();
            assert_eq!(qa, ia);
            for &ad in part.ads_qa.ids() {
                assert_eq!(ad_shard(ad, 3), s);
            }
        }
    }

    /// The topology-parity property: over random worlds and every shard
    /// count in {1, 2, 4}, the sharded engine returns exactly the single
    /// engine's response — ads, scores, logical stats and coverage — and
    /// exactly its errors.
    #[test]
    fn sharded_engine_matches_single_engine_for_any_inputs_and_shard_count() {
        let mut rng = StdRng::seed_from_u64(0x5ead);
        for case in 0..12u64 {
            let n_ads = 3 + (case as u32 % 20); // includes corpora smaller than the shard count
            let inputs = IndexBuildInputs {
                queries_qq: shared_points(0..10, 100 + case),
                queries_qi: shared_points(0..10, 200 + case),
                items_qi: shared_points(100..130, 300 + case),
                queries_qa: shared_points(0..10, 400 + case),
                ads_qa: random_points(200..200 + n_ads, 500 + case),
                items_ii: shared_points(100..130, 600 + case),
                items_ia: shared_points(100..130, 700 + case),
                ads_ia: random_points(200..200 + n_ads, 800 + case),
            };
            let top_k = 4 + (case as usize % 8);
            let single = single_engine(&inputs, top_k);
            for shards in [1usize, 2, 4] {
                let sharded = sharded_engine(&inputs, shards, top_k);
                for _ in 0..20 {
                    let request = Request {
                        query: rng.gen_range(0..12u32), // sometimes unknown
                        preclick_items: (0..rng.gen_range(0..3usize))
                            .map(|_| rng.gen_range(100..132u32))
                            .collect(),
                    };
                    let a = logical(single.retrieve(&request));
                    let b = logical(sharded.retrieve(&request));
                    assert_eq!(
                        a, b,
                        "parity failed: case {case}, {shards} shards, request {request:?}"
                    );
                }
            }
        }
    }

    /// The acceptance-criterion property for the worker pools: at shard
    /// counts 1 / 2 / 4 / 7, an engine built and served with parallel
    /// pools (several build threads, several fan-out threads, replicated
    /// shards) is **byte-identical** to the engine built and served
    /// sequentially — every response, every error, every stat including
    /// the physical replica route (round-robin advances identically).
    #[test]
    fn parallel_build_and_fanout_match_the_sequential_path_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0xfa0);
        for case in 0..4u64 {
            let n_ads = 5 + (case as u32 * 7);
            let inputs = IndexBuildInputs {
                queries_qq: shared_points(0..10, 10 + case),
                queries_qi: shared_points(0..10, 20 + case),
                items_qi: shared_points(100..130, 30 + case),
                queries_qa: shared_points(0..10, 40 + case),
                ads_qa: random_points(200..200 + n_ads, 50 + case),
                items_ii: shared_points(100..130, 60 + case),
                items_ia: shared_points(100..130, 70 + case),
                ads_ia: random_points(200..200 + n_ads, 80 + case),
            };
            for shards in [1usize, 2, 4, 7] {
                let build = |build_threads: usize, fanout_threads: usize| {
                    ShardedEngine::builder()
                        .shards(shards)
                        .replicas(2)
                        .top_k(8)
                        .threads(1)
                        .build_threads(build_threads)
                        .fanout_threads(fanout_threads)
                        .build(&inputs)
                        .unwrap()
                };
                let sequential = build(1, 1);
                let parallel = build(4, 4);
                assert_eq!(sequential.active_shards(), parallel.active_shards());
                // identical request sequences: single requests ...
                for _ in 0..12 {
                    let request = Request {
                        query: rng.gen_range(0..12u32),
                        preclick_items: (0..rng.gen_range(0..3usize))
                            .map(|_| rng.gen_range(100..132u32))
                            .collect(),
                    };
                    assert_eq!(
                        sequential.retrieve(&request),
                        parallel.retrieve(&request),
                        "case {case}, {shards} shards: parallel serving diverged"
                    );
                }
                // ... and a batch with repeats (exercises the shared cache)
                let mut requests = fixed_requests(6);
                requests.push(requests[0].clone());
                requests.push(requests[3].clone());
                assert_eq!(
                    sequential.retrieve_batch(&requests),
                    parallel.retrieve_batch(&requests),
                    "case {case}, {shards} shards: parallel batch diverged"
                );
            }
        }
    }

    #[test]
    fn full_probe_ivf_sharding_matches_the_single_ivf_engine() {
        let inputs = tiny_inputs();
        let backend = IndexBackend::Ivf(IvfConfig {
            num_clusters: 3,
            kmeans_iters: 4,
            nprobe: 3, // full probing: quantisation cannot hide candidates
            seed: 11,
        });
        let single = RetrievalEngine::builder()
            .backend(backend)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let sharded = ShardedEngine::builder()
            .shards(2)
            .backend(backend)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            assert_eq!(
                logical(single.retrieve(&request)),
                logical(sharded.retrieve(&request))
            );
        }
    }

    #[test]
    fn corpus_wide_rerank_quant_sharding_matches_the_single_quant_engine() {
        let inputs = tiny_inputs();
        let backend = IndexBackend::Quant(amcad_mnn::QuantConfig {
            ksub: 8,
            train_iters: 4,
            rerank_k: 64, // corpus-wide: quantisation cannot hide candidates
            seed: 11,
        });
        let single = RetrievalEngine::builder()
            .backend(backend)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::builder()
                .shards(shards)
                .backend(backend)
                .top_k(8)
                .threads(1)
                .build(&inputs)
                .unwrap();
            for q in 0..10u32 {
                let request = Request {
                    query: q,
                    preclick_items: vec![100 + q],
                };
                assert_eq!(
                    logical(single.retrieve(&request)),
                    logical(sharded.retrieve(&request)),
                    "{shards} shards"
                );
            }
        }
    }

    #[test]
    fn unknown_query_yields_the_single_engines_exact_no_coverage_error() {
        let inputs = tiny_inputs();
        let single = single_engine(&inputs, 8);
        let sharded = sharded_engine(&inputs, 4, 8);
        let request = Request {
            query: 9999,
            preclick_items: vec![],
        };
        let single_err = single.retrieve(&request).unwrap_err();
        let sharded_err = sharded.retrieve(&request).unwrap_err();
        assert!(matches!(
            sharded_err,
            RetrievalError::NoCoverage { query: 9999, .. }
        ));
        // the error still records the route that failed to cover
        let RetrievalError::NoCoverage { ref stats, .. } = sharded_err else {
            unreachable!()
        };
        assert_eq!(stats.served_by.len(), sharded.active_shards());
        assert_eq!(
            logical(Err(single_err)),
            logical(Err(sharded_err)),
            "logical stats in the error must match too"
        );
    }

    #[test]
    fn empty_shards_are_skipped_and_serving_still_covers_everything() {
        // one single ad: with 4 shards, three shards receive nothing
        let mut inputs = tiny_inputs();
        inputs.ads_qa = inputs.ads_qa.filtered(|ad| ad == 200);
        inputs.ads_ia = inputs.ads_ia.filtered(|ad| ad == 200);
        let sharded = sharded_engine(&inputs, 4, 8);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.active_shards(), 1);
        let single = single_engine(&inputs, 8);
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            assert_eq!(
                logical(single.retrieve(&request)),
                logical(sharded.retrieve(&request))
            );
        }
    }

    #[test]
    fn adless_inputs_and_zero_topology_knobs_fail_like_the_single_builder() {
        let manifold = tiny_inputs().ads_qa.manifold().clone();
        let empty = MixedPointSet::new(manifold);
        let mut no_ads = tiny_inputs();
        no_ads.ads_qa = empty.clone();
        no_ads.ads_ia = empty;
        assert_eq!(
            ShardedEngine::builder()
                .shards(4)
                .build(&no_ads)
                .unwrap_err(),
            RetrievalError::EmptyIndex { indices: "q2a+i2a" }
        );
        assert!(matches!(
            ShardedEngine::builder()
                .shards(0)
                .build(&tiny_inputs())
                .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
        assert!(matches!(
            ShardedEngine::builder()
                .shards(2)
                .replicas(0)
                .build(&tiny_inputs())
                .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
        // invalid per-shard configuration surfaces through the same path,
        // and the parallel build reports the same first error
        for build_threads in [1usize, 4] {
            assert!(matches!(
                ShardedEngine::builder()
                    .shards(2)
                    .top_k(0)
                    .build_threads(build_threads)
                    .build(&tiny_inputs())
                    .unwrap_err(),
                RetrievalError::InvalidConfig(_)
            ));
        }
    }

    #[test]
    fn batched_serving_is_topology_invariant_including_dedup_attribution() {
        // the sharded batch path must report exactly what the single-node
        // batch path reports — rankings AND deduplicated scan counts — so
        // batching semantics don't depend on the deployment topology
        let inputs = tiny_inputs();
        let single = single_engine(&inputs, 8);
        let sharded = sharded_engine(&inputs, 2, 8);
        let mut requests: Vec<Request> = (0..6u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q],
            })
            .collect();
        // repeats make the cross-request dedup actually fire
        requests.push(requests[0].clone());
        requests.push(requests[2].clone());
        let serving: &dyn Retrieve = &sharded;
        let sharded_batch: Vec<_> = serving
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        let single_batch: Vec<_> = single
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        assert_eq!(sharded_batch, single_batch);
        // and the dedup really saved scans on the repeated requests
        let scans = |r: &Result<RetrievalResponse, RetrievalError>| {
            r.as_ref().unwrap().stats.postings_scanned
        };
        assert!(scans(&sharded_batch[6]) < scans(&sharded_batch[0]));
    }

    #[test]
    fn round_robin_spreads_requests_across_replicas() {
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(3)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        let requests = fixed_requests(12);
        for (i, request) in requests.iter().enumerate() {
            let response = engine.retrieve(request).unwrap();
            assert_eq!(response.stats.served_by.len(), engine.active_shards());
            for (s, id) in response.stats.served_by.iter().enumerate() {
                assert_eq!(id.shard, s as u32, "route entries are in shard order");
                assert_eq!(
                    id.replica,
                    (i % 3) as u32,
                    "healthy round-robin rotates per request"
                );
            }
        }
        // attribution counters agree: 12 requests over 3 replicas = 4 each
        for shard_counts in engine.replica_serves() {
            assert_eq!(shard_counts, vec![4, 4, 4]);
        }
    }

    /// The acceptance-criterion failover property: kill each replica in
    /// turn — every served ranking, logical stat and coverage stays
    /// identical to the healthy cluster, and the route proves the killed
    /// replica received no traffic while its siblings absorbed it.
    #[test]
    fn killing_any_single_replica_never_changes_a_served_ranking() {
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(3)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        let requests = fixed_requests(9);
        let healthy: Vec<_> = requests
            .iter()
            .map(|r| logical(engine.retrieve(r)))
            .collect();
        assert!(healthy.iter().all(Result::is_ok));
        for shard in 0..engine.active_shards() {
            for replica in 0..engine.replicas() {
                engine.fail_replica(shard, replica);
                assert_eq!(engine.shard(shard).healthy_replicas(), 2);
                let before_serves = engine.replica_serves();
                for (request, expected) in requests.iter().zip(&healthy) {
                    let result = engine.retrieve(request);
                    // the killed replica got no traffic; a sibling served
                    let route = &result.as_ref().unwrap().stats.served_by;
                    assert_eq!(route.len(), engine.active_shards());
                    assert_ne!(
                        route[shard].replica, replica as u32,
                        "traffic must reroute away from the killed replica"
                    );
                    assert_eq!(&logical(result), expected, "failover changed a response");
                }
                let after_serves = engine.replica_serves();
                assert_eq!(
                    before_serves[shard][replica], after_serves[shard][replica],
                    "a killed replica must serve nothing"
                );
                let rerouted: u64 = after_serves[shard].iter().sum::<u64>()
                    - before_serves[shard].iter().sum::<u64>();
                assert_eq!(
                    rerouted,
                    requests.len() as u64,
                    "siblings must absorb the killed replica's share"
                );
                engine.restore_replica(shard, replica);
                assert_eq!(engine.shard(shard).healthy_replicas(), 3);
            }
        }
    }

    #[test]
    fn a_poisoned_replica_fails_over_on_first_contact_and_is_marked_down() {
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        let request = Request {
            query: 3,
            preclick_items: vec![103],
        };
        let expected = logical(engine.retrieve(&request));
        // fresh cursor position would pick replica 1 next on both shards;
        // poison it on shard 0 — the internal error must surface as a
        // transparent failover, not as a request failure
        engine.poison_replica(0, 1);
        let response = engine.retrieve(&request).unwrap();
        assert_eq!(
            response.stats.served_by[0].replica, 0,
            "contacting the poisoned replica must fail over to its sibling"
        );
        assert_eq!(
            engine.shard(0).healthy_replicas(),
            1,
            "the erroring replica is marked down"
        );
        assert_eq!(logical(Ok(response)), expected, "the ranking never changes");
        // restore clears both the fault and the down marking
        engine.restore_replica(0, 1);
        assert_eq!(engine.shard(0).healthy_replicas(), 2);
    }

    #[test]
    fn losing_every_replica_of_a_shard_is_a_typed_error_not_a_panic() {
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        engine.fail_replica(1, 0);
        engine.fail_replica(1, 1);
        let requests = fixed_requests(3);
        assert_eq!(
            engine.retrieve(&requests[0]).unwrap_err(),
            RetrievalError::ShardUnavailable {
                shard: 1,
                replicas: 2
            }
        );
        // the batch path degrades per request, it does not panic either
        for result in engine.retrieve_batch(&requests) {
            assert_eq!(
                result.unwrap_err(),
                RetrievalError::ShardUnavailable {
                    shard: 1,
                    replicas: 2
                }
            );
        }
        // one restored replica brings the whole cluster back
        engine.restore_replica(1, 0);
        assert!(engine.retrieve(&requests[0]).is_ok());
    }

    fn hedged_engine(inputs: &IndexBuildInputs, delay: Duration) -> ShardedEngine {
        ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build_threads(1)
            .hedge_delay(delay)
            .build(inputs)
            .unwrap()
    }

    /// Hedging is a latency tactic, not a ranking change: replicas serve
    /// identical data, so the hedged path must be logically identical to
    /// the unhedged one — responses, stats, and errors alike.
    #[test]
    fn hedged_serving_is_logically_identical_to_unhedged() {
        let inputs = tiny_inputs();
        let plain = sharded_engine(&inputs, 2, 8);
        // generous delay: hedges are not expected to fire, but a spurious
        // one must not change the logical outcome either
        let hedged = hedged_engine(&inputs, Duration::from_millis(50));
        assert!(hedged.hedge_control().is_some());
        assert!(plain.hedge_control().is_none());
        for request in fixed_requests(8) {
            assert_eq!(
                logical(plain.retrieve(&request)),
                logical(hedged.retrieve(&request)),
                "hedged serving diverged on {request:?}"
            );
        }
        // unknown queries surface the same typed error through both paths
        let unknown = Request {
            query: 9999,
            preclick_items: vec![],
        };
        assert_eq!(
            logical(plain.retrieve(&unknown)),
            logical(hedged.retrieve(&unknown))
        );
        // batches do not hedge, and stay topology-invariant regardless
        let mut requests = fixed_requests(5);
        requests.push(requests[1].clone());
        let a: Vec<_> = plain
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        let b: Vec<_> = hedged
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        assert_eq!(a, b);
    }

    /// The acceptance-criterion hedging property: with one replica
    /// degraded far past the hedge delay, every request hedges to the
    /// sibling, the sibling wins the race (the route proves it), and the
    /// ranking never changes.
    #[test]
    fn a_slow_replica_loses_the_hedge_race_to_its_sibling() {
        let inputs = tiny_inputs();
        let reference = sharded_engine(&inputs, 2, 8);
        let engine = hedged_engine(&inputs, Duration::from_millis(2));
        // shard 0, replica 0 turns into a straggler: every contact takes
        // 20x the hedge delay
        engine.delay_replica(0, 0, Duration::from_millis(40));
        let requests = fixed_requests(6);
        for request in &requests {
            let response = engine.retrieve(request).unwrap();
            assert_eq!(
                response.stats.served_by[0].replica, 1,
                "the hedged sibling must win against the degraded replica"
            );
            assert_eq!(
                logical(Ok(response)),
                logical(reference.retrieve(request)),
                "hedging changed a ranking"
            );
        }
        let control = engine.hedge_control().unwrap();
        assert!(
            control.issued() >= requests.len() as u64,
            "every shard-0 request must have hedged (issued {})",
            control.issued()
        );
        let wins = control.wins();
        assert!(wins >= 1, "the sibling must win at least once");
        assert!(wins <= control.issued(), "wins cannot exceed issues");
        // the hedge delay is a live knob
        control.set_delay(Duration::from_millis(7));
        assert_eq!(control.delay(), Duration::from_millis(7));
    }

    /// Fault tests for the hedged path: a poisoned replica fails over at
    /// pick time exactly like the unhedged router (and is marked down),
    /// and losing every replica of a shard stays the typed
    /// `ShardUnavailable` error.
    #[test]
    fn hedged_path_survives_poisoned_replicas_and_types_total_loss() {
        let inputs = tiny_inputs();
        let reference = sharded_engine(&inputs, 2, 8);
        let engine = hedged_engine(&inputs, Duration::from_millis(5));
        let request = Request {
            query: 3,
            preclick_items: vec![103],
        };
        let expected = logical(reference.retrieve(&request));
        // fresh cursor picks replica 0 first on shard 0 — poison it
        engine.poison_replica(0, 0);
        let response = engine.retrieve(&request).unwrap();
        assert_eq!(
            response.stats.served_by[0].replica, 1,
            "the poisoned primary must fail over before any gather"
        );
        assert_eq!(engine.shard(0).healthy_replicas(), 1);
        assert_eq!(
            logical(Ok(response)),
            expected,
            "failover changed a ranking"
        );
        // now lose the last replica of shard 0: a typed error, no panic,
        // no hang waiting on gathers that can never arrive
        engine.fail_replica(0, 1);
        assert_eq!(
            engine.retrieve(&request).unwrap_err(),
            RetrievalError::ShardUnavailable {
                shard: 0,
                replicas: 2
            }
        );
        // restoring any replica resumes identical serving
        engine.restore_replica(0, 0);
        assert_eq!(logical(engine.retrieve(&request)), expected);
    }

    /// Weighted routing: the cursor-driven inverse-CDF honours integer
    /// weights deterministically, degenerates to round-robin at equal
    /// weights (pinned by `round_robin_spreads_requests_across_replicas`),
    /// and weight changes never touch rankings — only routes.
    #[test]
    fn replica_weights_steer_traffic_without_changing_rankings() {
        let inputs = tiny_inputs();
        let reference = sharded_engine(&inputs, 2, 8);
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        engine.set_replica_weight(0, 0, 3);
        assert_eq!(engine.replica_weights()[0], vec![3, 1]);
        let requests = fixed_requests(8);
        for request in &requests {
            assert_eq!(
                logical(engine.retrieve(request)),
                logical(reference.retrieve(request)),
                "weights must never change a ranking"
            );
        }
        // weights 3:1 over a cursor of 8 requests = exactly 6:2
        assert_eq!(engine.replica_serves()[0], vec![6, 2]);
        // draining one replica (weight 0) sends everything to its sibling
        engine.set_replica_weight(0, 0, 0);
        for request in &requests {
            let response = engine.retrieve(request).unwrap();
            assert_eq!(
                response.stats.served_by[0].replica, 1,
                "a drained replica must receive no fresh traffic"
            );
        }
        // draining *every* replica: availability beats draining — plain
        // round-robin over the healthy set takes over
        engine.set_replica_weight(0, 1, 0);
        let before = engine.replica_serves()[0].clone();
        for request in &requests {
            assert!(engine.retrieve(request).is_ok());
        }
        let after = engine.replica_serves()[0].clone();
        assert_eq!(
            (after[0] - before[0]) + (after[1] - before[1]),
            requests.len() as u64,
            "an all-drained shard still serves every request"
        );
        assert!(after[0] > before[0] && after[1] > before[1]);
    }

    /// The warm-up drain protocol a generation rollout uses: draining a
    /// replica reroutes its traffic, finishing restores it and labels the
    /// generation it now carries — with serving identical throughout.
    #[test]
    fn warmup_drains_labels_and_restores_replicas() {
        let engine = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build(&tiny_inputs())
            .unwrap();
        let requests = fixed_requests(6);
        let healthy: Vec<_> = requests
            .iter()
            .map(|r| logical(engine.retrieve(r)))
            .collect();
        assert!(engine
            .replica_generations()
            .iter()
            .all(|shard| shard.iter().all(|&g| g == 0)));
        engine.begin_warmup(0, 1);
        assert_eq!(engine.replica_weights()[0], vec![1, 0]);
        for (request, expected) in requests.iter().zip(&healthy) {
            let result = engine.retrieve(request);
            assert_eq!(
                result.as_ref().unwrap().stats.served_by[0].replica,
                0,
                "traffic avoids the warming replica"
            );
            assert_eq!(&logical(result), expected, "warm-up changed a response");
        }
        engine.finish_warmup(0, 1, 7);
        assert_eq!(engine.replica_weights()[0], vec![1, 1]);
        assert_eq!(engine.replica_generations()[0], vec![0, 7]);
        assert_eq!(engine.replica_generations()[1], vec![0, 0]);
        // a whole-deployment label stamps every replica at once
        engine.label_generations(9);
        assert!(engine
            .replica_generations()
            .iter()
            .all(|shard| shard.iter().all(|&g| g == 9)));
        for (request, expected) in requests.iter().zip(&healthy) {
            assert_eq!(&logical(engine.retrieve(request)), expected);
        }
    }
}
