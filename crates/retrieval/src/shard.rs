//! Sharded serving: [`ShardedEngine`] partitions the ad corpus across N
//! shards and merges per-shard results into the globally correct ranking.
//!
//! The paper's production deployment (Fig. 9 / Table IX) spreads both the
//! offline MNN index build and the online iGraph serving layer across a
//! cluster; one monolithic [`RetrievalEngine`] cannot model that. Here the
//! [`IndexBuildInputs`] are split **by ad** with a deterministic hash
//! ([`ad_shard`]): each shard receives the full query / item point sets
//! (so every shard builds identical first-layer key indices and expands a
//! request to the same key set) but only its slice of the ads (so the
//! expensive second-layer Q2A / I2A builds and scans are divided N ways).
//!
//! ## Why the merge is exactly right, not approximately right
//!
//! Serving fans a request out to every shard and must return *precisely*
//! what a single engine over the whole corpus would return — otherwise
//! resharding would change ranking behaviour in production. The naive
//! merge (concatenate per-shard top-k responses, re-sort) is **wrong**:
//! each shard's per-key `ads_per_key` cut admits ads the global cut would
//! have rejected, and such an ad can sneak into the merged top-n. Instead
//! the merge happens one level lower, per expanded key: every shard
//! contributes its posting-list prefix for the key, the prefixes are
//! merged in the index build's `(distance, id)` order and re-cut to the
//! global prefix length, and only then does the shared scoring path run.
//! Because posting lists are the k smallest `(distance, id)` pairs and
//! shards partition the candidates, the merged prefix is bit-for-bit the
//! prefix a whole-corpus index would have produced — parity holds for the
//! ads, the scores, the stats and the coverage attribution alike (the
//! property test in this module asserts all four).
//!
//! With the (deterministic) exact backend this parity is unconditional.
//! With IVF it holds only under full probing: per-shard clustering is a
//! different quantisation than whole-corpus clustering, so partial probes
//! may recall different candidates per shard.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::engine::{Request, RetrievalEngine, RetrievalResponse, RetrievalStats, Retrieve};
use crate::error::RetrievalError;
use crate::index_set::{IndexBuildConfig, IndexBuildInputs};
use crate::retriever::{score_candidates, RetrievalConfig};

/// Batch-scope gather cache: `(is_item, key id)` → (index of the request
/// that first gathered it, the merged whole-corpus candidate prefix).
type MergedCache = HashMap<(bool, u32), (usize, Vec<(u32, f64)>)>;

/// Deterministic shard assignment for an ad id (Fibonacci hashing): the
/// same ad always lands on the same shard, independent of shard build
/// order, platform or process. Exposed so routers / delta-update tooling
/// can compute placements without an engine.
pub fn ad_shard(ad: u32, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    // multiplicative hash: the golden-ratio multiplier decorrelates
    // consecutive ids, and dropping the 7 low product bits (which barely
    // mix) before the mod keeps small shard counts from seeing patterns
    (ad.wrapping_mul(0x9E37_79B9) >> 7) as usize % shards
}

/// Split index-build inputs into per-shard inputs: ads hash-partitioned by
/// [`ad_shard`], queries and items replicated so every shard can expand
/// keys locally. A shard may end up with no ads at all (tiny corpora);
/// [`ShardedEngineBuilder::build`] skips such shards at build time.
pub fn shard_inputs(inputs: &IndexBuildInputs, shards: usize) -> Vec<IndexBuildInputs> {
    let ads_qa = inputs
        .ads_qa
        .partition_by(shards, |ad| ad_shard(ad, shards));
    let ads_ia = inputs
        .ads_ia
        .partition_by(shards, |ad| ad_shard(ad, shards));
    ads_qa
        .into_iter()
        .zip(ads_ia)
        .map(|(ads_qa, ads_ia)| IndexBuildInputs {
            queries_qq: inputs.queries_qq.clone(),
            queries_qi: inputs.queries_qi.clone(),
            items_qi: inputs.items_qi.clone(),
            queries_qa: inputs.queries_qa.clone(),
            ads_qa,
            items_ii: inputs.items_ii.clone(),
            items_ia: inputs.items_ia.clone(),
            ads_ia,
        })
        .collect()
}

/// Builder for [`ShardedEngine`] — the same knobs as
/// [`crate::RetrievalEngineBuilder`] plus the shard count.
#[derive(Debug, Clone)]
pub struct ShardedEngineBuilder {
    shards: usize,
    index: IndexBuildConfig,
    retrieval: RetrievalConfig,
}

impl Default for ShardedEngineBuilder {
    fn default() -> Self {
        ShardedEngineBuilder {
            shards: 1,
            index: IndexBuildConfig::default(),
            retrieval: RetrievalConfig::default(),
        }
    }
}

impl ShardedEngineBuilder {
    /// Number of shards the ad corpus is hash-partitioned into (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Select the ANN backend every shard builds its indices with.
    pub fn backend(mut self, backend: amcad_mnn::IndexBackend) -> Self {
        self.index.backend = backend;
        self
    }

    /// Posting-list length kept per key (default 20).
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.index.top_k = top_k;
        self
    }

    /// Worker threads per shard build (default 4).
    pub fn threads(mut self, threads: usize) -> Self {
        self.index.threads = threads;
        self
    }

    /// Replace the whole index-construction configuration.
    pub fn index(mut self, index: IndexBuildConfig) -> Self {
        self.index = index;
        self
    }

    /// Replace the two-layer retrieval configuration.
    pub fn retrieval(mut self, retrieval: RetrievalConfig) -> Self {
        self.retrieval = retrieval;
        self
    }

    /// Partition the inputs and build one [`RetrievalEngine`] per
    /// non-empty shard. Shards that receive no ads are skipped (their
    /// engines could never serve); if *every* shard is empty the build
    /// fails with the same [`RetrievalError::EmptyIndex`] a single engine
    /// over the whole inputs would report.
    pub fn build(self, inputs: &IndexBuildInputs) -> Result<ShardedEngine, RetrievalError> {
        if self.shards == 0 {
            return Err(RetrievalError::InvalidConfig(
                "shard count must be positive".into(),
            ));
        }
        let mut engines = Vec::with_capacity(self.shards);
        for shard_inputs in shard_inputs(inputs, self.shards) {
            if shard_inputs.ads_qa.is_empty() && shard_inputs.ads_ia.is_empty() {
                continue; // the hash left this shard adless — skip it
            }
            let engine = RetrievalEngine::builder()
                .index(self.index)
                .retrieval(self.retrieval)
                .build(&shard_inputs)?;
            engines.push(engine);
        }
        if engines.is_empty() {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(ShardedEngine {
            shards: engines,
            num_shards: self.shards,
            index_config: self.index,
            retrieval: self.retrieval,
        })
    }
}

/// An ad corpus hash-partitioned across N single-node engines, served by
/// fanning each request out to every shard and merging per-key candidate
/// prefixes back into the globally correct ranking (see the module docs
/// for why the merge is exact).
///
/// The merged [`RetrievalStats`] describe the *logical* request — they are
/// identical to what a single whole-corpus engine would report, which is
/// what makes shard count a pure deployment knob. The raw cluster-wide
/// work (each shard scans its own first layer) is `active_shards()` times
/// the first-layer share of the counters.
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<RetrievalEngine>,
    num_shards: usize,
    index_config: IndexBuildConfig,
    retrieval: RetrievalConfig,
}

impl ShardedEngine {
    /// Start building a sharded engine.
    pub fn builder() -> ShardedEngineBuilder {
        ShardedEngineBuilder::default()
    }

    /// The configured shard count (including shards skipped for emptiness).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of shards actually holding ads and serving.
    pub fn active_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engines, in shard order (empty shards omitted).
    pub fn shard_engines(&self) -> &[RetrievalEngine] {
        &self.shards
    }

    /// The index-construction configuration every shard was built with.
    pub fn index_config(&self) -> &IndexBuildConfig {
        &self.index_config
    }

    /// The two-layer retrieval configuration.
    pub fn config(&self) -> &RetrievalConfig {
        &self.retrieval
    }

    /// The globally correct candidate prefix of one key: every shard's
    /// local prefix, merged in the index build's posting order (distance,
    /// then id — NaN distances were normalised to +inf at build time) and
    /// re-cut to the whole-corpus prefix length. A whole-corpus posting
    /// list is at most `top_k` long, so the global cut is
    /// `min(ads_per_key, top_k)`.
    fn merged_candidates(&self, key: &crate::retriever::Key) -> Vec<(u32, f64)> {
        let per_key = self.retrieval.ads_per_key;
        let global_cut = per_key.min(self.index_config.top_k);
        let mut list: Vec<(u32, f64)> = Vec::new();
        for shard in &self.shards {
            list.extend_from_slice(shard.retriever().key_candidates(key, per_key));
        }
        list.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        list.truncate(global_cut);
        list
    }

    /// Serve one request: expand keys once (first-layer indices are
    /// replicated, so any shard's expansion is *the* expansion), gather
    /// each shard's per-key candidate prefix, merge and re-cut to the
    /// global prefix, then score through the shared path.
    pub fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        let mut stats = RetrievalStats::default();
        let mut keys = Vec::new();
        self.shards[0].retriever().expand_keys_into(
            request.query,
            &request.preclick_items,
            &mut stats,
            &mut keys,
        );
        let merged: Vec<Vec<(u32, f64)>> = keys
            .iter()
            .map(|key| {
                let list = self.merged_candidates(key);
                stats.postings_scanned += list.len();
                list
            })
            .collect();
        let candidates: Vec<&[(u32, f64)]> = merged.iter().map(Vec::as_slice).collect();
        let mut scratch = HashMap::new();
        let ads = score_candidates(
            &keys,
            &candidates,
            self.retrieval.final_top_n,
            &mut scratch,
            &mut stats,
        );
        if ads.is_empty() {
            return Err(RetrievalError::NoCoverage {
                query: request.query,
                stats,
            });
        }
        Ok(RetrievalResponse { ads, stats })
    }

    /// Serve a batch with the same cross-request scan dedup as
    /// [`RetrievalEngine::retrieve_batch`]: the merged candidate prefix of
    /// each distinct `(layer, key)` is gathered from the shards once per
    /// batch, attributed to the first request that needed it. Rankings and
    /// stats are identical to what the single-node batch path reports over
    /// the whole corpus — batching semantics are topology-invariant.
    pub fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        let mut fetched: MergedCache = HashMap::new();
        let mut keys = Vec::new();
        let mut scratch = HashMap::new();
        let mut out = Vec::with_capacity(requests.len());
        for (r, request) in requests.iter().enumerate() {
            let mut stats = RetrievalStats::default();
            self.shards[0].retriever().expand_keys_into(
                request.query,
                &request.preclick_items,
                &mut stats,
                &mut keys,
            );
            // gather pass: fill the cache and count scans (a repeat within
            // the *same* request re-counts, mirroring the single path)
            for key in &keys {
                match fetched.entry((key.is_item, key.id)) {
                    Entry::Occupied(e) => {
                        if e.get().0 == r {
                            stats.postings_scanned += e.get().1.len();
                        }
                    }
                    Entry::Vacant(v) => {
                        let list = self.merged_candidates(key);
                        stats.postings_scanned += list.len();
                        v.insert((r, list));
                    }
                }
            }
            // score pass: borrow the now-stable cache entries
            let candidates: Vec<&[(u32, f64)]> = keys
                .iter()
                .map(|key| fetched[&(key.is_item, key.id)].1.as_slice())
                .collect();
            let ads = score_candidates(
                &keys,
                &candidates,
                self.retrieval.final_top_n,
                &mut scratch,
                &mut stats,
            );
            out.push(if ads.is_empty() {
                Err(RetrievalError::NoCoverage {
                    query: request.query,
                    stats,
                })
            } else {
                Ok(RetrievalResponse { ads, stats })
            });
        }
        out
    }
}

impl Retrieve for ShardedEngine {
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        ShardedEngine::retrieve(self, request)
    }

    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        ShardedEngine::retrieve_batch(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{random_points, tiny_inputs};
    use amcad_mnn::{IndexBackend, IvfConfig, MixedPointSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn single_engine(inputs: &IndexBuildInputs, top_k: usize) -> RetrievalEngine {
        RetrievalEngine::builder()
            .top_k(top_k)
            .threads(1)
            .build(inputs)
            .unwrap()
    }

    fn sharded_engine(inputs: &IndexBuildInputs, shards: usize, top_k: usize) -> ShardedEngine {
        ShardedEngine::builder()
            .shards(shards)
            .top_k(top_k)
            .threads(1)
            .build(inputs)
            .unwrap()
    }

    #[test]
    fn ad_shard_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for ad in (0..2000u32).step_by(13) {
                let s = ad_shard(ad, shards);
                assert!(s < shards);
                assert_eq!(s, ad_shard(ad, shards), "assignment must be stable");
            }
        }
        // the hash actually spreads ads (no degenerate single-shard pile-up)
        let mut counts = [0usize; 4];
        for ad in 0..1000u32 {
            counts[ad_shard(ad, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed split: {counts:?}");
    }

    #[test]
    fn shard_inputs_partition_ads_and_replicate_keys() {
        let inputs = tiny_inputs();
        let parts = shard_inputs(&inputs, 3);
        assert_eq!(parts.len(), 3);
        let total_qa: usize = parts.iter().map(|p| p.ads_qa.len()).sum();
        let total_ia: usize = parts.iter().map(|p| p.ads_ia.len()).sum();
        assert_eq!(total_qa, inputs.ads_qa.len());
        assert_eq!(total_ia, inputs.ads_ia.len());
        for (s, part) in parts.iter().enumerate() {
            assert_eq!(part.queries_qq.ids(), inputs.queries_qq.ids());
            assert_eq!(part.items_ii.ids(), inputs.items_ii.ids());
            // both ad spaces of one shard hold the same ad ids
            let mut qa: Vec<u32> = part.ads_qa.ids().to_vec();
            let mut ia: Vec<u32> = part.ads_ia.ids().to_vec();
            qa.sort_unstable();
            ia.sort_unstable();
            assert_eq!(qa, ia);
            for &ad in part.ads_qa.ids() {
                assert_eq!(ad_shard(ad, 3), s);
            }
        }
    }

    /// The acceptance-criterion property: over random worlds and every
    /// shard count in {1, 2, 4}, the sharded engine returns exactly the
    /// single engine's response — ads, scores, stats and coverage — and
    /// exactly its errors.
    #[test]
    fn sharded_engine_matches_single_engine_for_any_inputs_and_shard_count() {
        let mut rng = StdRng::seed_from_u64(0x5ead);
        for case in 0..12u64 {
            let n_ads = 3 + (case as u32 % 20); // includes corpora smaller than the shard count
            let inputs = IndexBuildInputs {
                queries_qq: random_points(0..10, 100 + case),
                queries_qi: random_points(0..10, 200 + case),
                items_qi: random_points(100..130, 300 + case),
                queries_qa: random_points(0..10, 400 + case),
                ads_qa: random_points(200..200 + n_ads, 500 + case),
                items_ii: random_points(100..130, 600 + case),
                items_ia: random_points(100..130, 700 + case),
                ads_ia: random_points(200..200 + n_ads, 800 + case),
            };
            let top_k = 4 + (case as usize % 8);
            let single = single_engine(&inputs, top_k);
            for shards in [1usize, 2, 4] {
                let sharded = sharded_engine(&inputs, shards, top_k);
                for _ in 0..20 {
                    let request = Request {
                        query: rng.gen_range(0..12u32), // sometimes unknown
                        preclick_items: (0..rng.gen_range(0..3usize))
                            .map(|_| rng.gen_range(100..132u32))
                            .collect(),
                    };
                    let a = single.retrieve(&request);
                    let b = sharded.retrieve(&request);
                    assert_eq!(
                        a, b,
                        "parity failed: case {case}, {shards} shards, request {request:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_probe_ivf_sharding_matches_the_single_ivf_engine() {
        let inputs = tiny_inputs();
        let backend = IndexBackend::Ivf(IvfConfig {
            num_clusters: 3,
            kmeans_iters: 4,
            nprobe: 3, // full probing: quantisation cannot hide candidates
            seed: 11,
        });
        let single = RetrievalEngine::builder()
            .backend(backend)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let sharded = ShardedEngine::builder()
            .shards(2)
            .backend(backend)
            .top_k(8)
            .threads(1)
            .build(&inputs)
            .unwrap();
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            assert_eq!(single.retrieve(&request), sharded.retrieve(&request));
        }
    }

    #[test]
    fn unknown_query_yields_the_single_engines_exact_no_coverage_error() {
        let inputs = tiny_inputs();
        let single = single_engine(&inputs, 8);
        let sharded = sharded_engine(&inputs, 4, 8);
        let request = Request {
            query: 9999,
            preclick_items: vec![],
        };
        let single_err = single.retrieve(&request).unwrap_err();
        let sharded_err = sharded.retrieve(&request).unwrap_err();
        assert!(matches!(
            sharded_err,
            RetrievalError::NoCoverage { query: 9999, .. }
        ));
        assert_eq!(single_err, sharded_err, "stats in the error must match too");
    }

    #[test]
    fn empty_shards_are_skipped_and_serving_still_covers_everything() {
        // one single ad: with 4 shards, three shards receive nothing
        let mut inputs = tiny_inputs();
        inputs.ads_qa = inputs.ads_qa.filtered(|ad| ad == 200);
        inputs.ads_ia = inputs.ads_ia.filtered(|ad| ad == 200);
        let sharded = sharded_engine(&inputs, 4, 8);
        assert_eq!(sharded.num_shards(), 4);
        assert_eq!(sharded.active_shards(), 1);
        let single = single_engine(&inputs, 8);
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            assert_eq!(single.retrieve(&request), sharded.retrieve(&request));
        }
    }

    #[test]
    fn adless_inputs_and_zero_shards_fail_like_the_single_builder() {
        let manifold = tiny_inputs().ads_qa.manifold().clone();
        let empty = MixedPointSet::new(manifold);
        let mut no_ads = tiny_inputs();
        no_ads.ads_qa = empty.clone();
        no_ads.ads_ia = empty;
        assert_eq!(
            ShardedEngine::builder()
                .shards(4)
                .build(&no_ads)
                .unwrap_err(),
            RetrievalError::EmptyIndex { indices: "q2a+i2a" }
        );
        assert!(matches!(
            ShardedEngine::builder()
                .shards(0)
                .build(&tiny_inputs())
                .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
        // invalid per-shard configuration surfaces through the same path
        assert!(matches!(
            ShardedEngine::builder()
                .shards(2)
                .top_k(0)
                .build(&tiny_inputs())
                .unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
    }

    #[test]
    fn batched_serving_is_topology_invariant_including_dedup_attribution() {
        // the sharded batch path must report exactly what the single-node
        // batch path reports — rankings AND deduplicated scan counts — so
        // batching semantics don't depend on the deployment topology
        let inputs = tiny_inputs();
        let single = single_engine(&inputs, 8);
        let sharded = sharded_engine(&inputs, 2, 8);
        let mut requests: Vec<Request> = (0..6u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q],
            })
            .collect();
        // repeats make the cross-request dedup actually fire
        requests.push(requests[0].clone());
        requests.push(requests[2].clone());
        let serving: &dyn Retrieve = &sharded;
        let sharded_batch = serving.retrieve_batch(&requests);
        let single_batch = single.retrieve_batch(&requests);
        assert_eq!(sharded_batch, single_batch);
        // and the dedup really saved scans on the repeated requests
        let scans = |r: &Result<RetrievalResponse, RetrievalError>| {
            r.as_ref().unwrap().stats.postings_scanned
        };
        assert!(scans(&sharded_batch[6]) < scans(&sharded_batch[0]));
    }
}
