//! Delta publishes: incremental append/retire index updates between
//! serving generations.
//!
//! The paper's corpus churns daily while queries keep flowing; rebuilding
//! every index from scratch for a small daily delta wastes almost all of
//! the O(keys × ads) build work on ads that did not change. This module
//! maintains the ad-side indices *incrementally*:
//!
//! * [`IndexDelta`] describes one churn step — ads added (with their
//!   points in both ad edge spaces) and ads retired.
//! * [`DeltaBuilder`] owns one corpus's [`IndexBuildInputs`] and turns the
//!   previous generation's [`IndexSet`] plus a delta into the next
//!   generation's `IndexSet` without re-running the full neighbour build.
//! * [`ShardedDeltaBuilder`] runs one [`DeltaBuilder`] per shard and
//!   routes each delta only to the shards [`ad_shard`] assigns its ads
//!   to; untouched shards keep their [`Arc`]'d engines byte-identical
//!   (pointer-identical) across generations.
//! * [`crate::EngineHandle::publish_delta`] applies a delta through a
//!   builder and publishes the resulting generation with one snapshot
//!   swap — the zero-downtime incremental index update.
//!
//! ## Why the delta result is *exactly* a full rebuild
//!
//! A posting list is the `top_k` smallest `(distance, id)` pairs over the
//! candidate ads. For each key the delta path assembles three sorted
//! pieces and re-cuts to `top_k`:
//!
//! 1. **Filter** — the previous posting list minus retired ads. This is
//!    the exact top prefix over the surviving ads *unless* the old list
//!    was at the `top_k` cap and retirement removed entries from it: then
//!    survivors ranked `top_k + 1 ..` in the old corpus could now enter,
//!    and the prefix alone cannot know them.
//! 2. **Backfill** — exactly those boundary-broken keys are rescanned
//!    against the surviving ads (a small set for small deltas: only keys
//!    whose full lists actually contained a retired ad).
//! 3. **Append** — every key's top-`top_k` over the *added* ads only
//!    (O(keys × added), not O(keys × corpus)), computed with the same
//!    backend and distance kernel as a full build.
//!
//! Surviving and added ads partition the post-delta corpus, distances are
//! deterministic functions of the stored points, and both the build and
//! the merge order by `(distance, id)` with NaN normalised to +inf — so
//! the merged cut is bit-for-bit the posting list a from-scratch rebuild
//! would produce. The property tests in this module assert exactly that,
//! at the index level (posting ids *and* distances) and at the serving
//! level (rankings and [`crate::RetrievalStats::logical`] stats for shard
//! counts 1 / 2 / 4).
//!
//! With the deterministic exact backend this equivalence is
//! unconditional. With partial-probe IVF it is not: the delta path probes
//! the added ads under their own clustering, so results may differ from a
//! re-clustered full rebuild exactly as two IVF builds may differ —
//! full-probe IVF remains exact.
//!
//! The key-side indices (Q2Q, Q2I, I2Q, I2I) contain no ads; a delta
//! clones them from the previous generation untouched. Key churn still
//! requires a full rebuild — that is the daily retrain path, while delta
//! publishes cover the much more frequent corpus churn in between.

use std::collections::HashSet;
use std::sync::Arc;

use amcad_mnn::{InvertedIndex, MixedPointSet, Postings};

use crate::engine::RetrievalEngine;
use crate::error::RetrievalError;
use crate::index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
use crate::pool::WorkerPool;
use crate::shard::{ad_shard, shard_inputs, ShardedEngine, ShardedEngineBuilder};

/// One corpus churn step: ads entering and leaving the serving corpus
/// between two generations. Added ads carry their projected points (and
/// attention weights) in both ad edge spaces; retired ads are named by id.
///
/// An id may appear in `retired_ads` *and* in the added sets — that is an
/// in-place replacement (the ad's embedding changed): the old point is
/// retired first, the new one added.
#[derive(Debug, Clone)]
pub struct IndexDelta {
    /// Added ads projected into the Q-A edge space.
    pub added_ads_qa: MixedPointSet,
    /// Added ads projected into the I-A edge space (same ids as
    /// `added_ads_qa`).
    pub added_ads_ia: MixedPointSet,
    /// Ids of ads leaving the corpus.
    pub retired_ads: Vec<u32>,
}

impl IndexDelta {
    /// A retire-only delta: no added ads (empty added sets over the
    /// corpus's ad-space manifolds), `retired_ads` leaving.
    pub fn retire_only(inputs: &IndexBuildInputs, retired_ads: Vec<u32>) -> IndexDelta {
        IndexDelta {
            added_ads_qa: MixedPointSet::new(inputs.ads_qa.manifold().clone()),
            added_ads_ia: MixedPointSet::new(inputs.ads_ia.manifold().clone()),
            retired_ads,
        }
    }

    /// Whether this delta changes nothing (no adds, no retires).
    pub fn is_empty(&self) -> bool {
        self.added_ads_qa.is_empty() && self.added_ads_ia.is_empty() && self.retired_ads.is_empty()
    }

    /// Apply this delta's corpus change to plain build inputs: retire
    /// first, then append the added ads to both ad spaces (so a
    /// retire+add replacement lands the new points). This is the
    /// ground-truth transformation every delta-built index is tested
    /// against — a from-scratch [`IndexSet::build`] over the transformed
    /// inputs must equal the incrementally built set.
    pub fn apply_to(&self, inputs: &mut IndexBuildInputs) {
        let retired: HashSet<u32> = self.retired_ads.iter().copied().collect();
        inputs.ads_qa.retire(|id| retired.contains(&id));
        inputs.ads_ia.retire(|id| retired.contains(&id));
        inputs.ads_qa.append(&self.added_ads_qa);
        inputs.ads_ia.append(&self.added_ads_ia);
    }
}

/// Incremental index maintenance for one corpus (one engine, or one shard
/// of a sharded deployment): owns the current [`IndexBuildInputs`] and
/// produces each next generation's [`IndexSet`] from the previous one
/// plus an [`IndexDelta`] — see the module docs for the algorithm and the
/// exactness argument.
#[derive(Debug, Clone)]
pub struct DeltaBuilder {
    inputs: IndexBuildInputs,
    config: IndexBuildConfig,
}

impl DeltaBuilder {
    /// Track `inputs` (validated: duplicate ids are rejected) with the
    /// index configuration every generation is built under. The
    /// configuration must match the one the previous generation's
    /// `IndexSet` was built with — a different `top_k` would make the
    /// filter/backfill boundary analysis wrong.
    pub fn new(inputs: IndexBuildInputs, config: IndexBuildConfig) -> Result<Self, RetrievalError> {
        inputs.validate()?;
        Ok(DeltaBuilder { inputs, config })
    }

    /// The current (post-all-applied-deltas) build inputs. A from-scratch
    /// [`IndexSet::build`] over these is what every delta-built index is
    /// property-tested to equal.
    pub fn inputs(&self) -> &IndexBuildInputs {
        &self.inputs
    }

    /// The index configuration deltas are applied under.
    pub fn config(&self) -> IndexBuildConfig {
        self.config
    }

    /// Build the current generation from scratch (used to seed the first
    /// generation; every later generation should go through
    /// [`DeltaBuilder::apply`]).
    pub fn build(&self) -> Result<IndexSet, RetrievalError> {
        IndexSet::build(&self.inputs, self.config)
    }

    /// Produce the next generation's [`IndexSet`] from the previous
    /// generation's `prev` plus `delta`, updating the held inputs. `prev`
    /// must be the set built from this builder's current inputs under its
    /// configuration (the seed build or the previous `apply` result).
    ///
    /// Validation happens before any mutation, so on `Err` the builder is
    /// unchanged and still consistent with `prev`:
    /// [`RetrievalError::DuplicateId`] for duplicate added ids (within a
    /// space, or an added id the corpus already holds without retiring
    /// it), [`RetrievalError::UnknownAd`] for retiring an id the corpus
    /// does not contain, and [`RetrievalError::InvalidConfig`] when the
    /// two added spaces disagree on the added id set.
    ///
    /// Retiring *every* ad is valid at this level and yields empty ad
    /// indices (exactly like a full rebuild over an adless corpus);
    /// assembling an engine from that set then fails with the typed
    /// [`RetrievalError::EmptyIndex`] instead of panicking.
    pub fn apply(
        &mut self,
        prev: &IndexSet,
        delta: &IndexDelta,
    ) -> Result<IndexSet, RetrievalError> {
        self.validate_delta(delta)?;
        let retired: HashSet<u32> = delta.retired_ads.iter().copied().collect();
        // retire in place; the survivors are the backfill candidate set
        self.inputs.ads_qa.retire(|id| retired.contains(&id));
        self.inputs.ads_ia.retire(|id| retired.contains(&id));
        let q2a = delta_ad_index(
            &prev.q2a,
            &self.inputs.queries_qa,
            &self.inputs.ads_qa,
            &delta.added_ads_qa,
            &retired,
            self.config,
        );
        let i2a = delta_ad_index(
            &prev.i2a,
            &self.inputs.items_ia,
            &self.inputs.ads_ia,
            &delta.added_ads_ia,
            &retired,
            self.config,
        );
        self.inputs.ads_qa.append(&delta.added_ads_qa);
        self.inputs.ads_ia.append(&delta.added_ads_ia);
        // the key-side indices contain no ads: the next generation shares
        // them pointer-identically (an Arc bump, not four index copies)
        Ok(IndexSet {
            q2q: Arc::clone(&prev.q2q),
            q2i: Arc::clone(&prev.q2i),
            i2q: Arc::clone(&prev.i2q),
            i2i: Arc::clone(&prev.i2i),
            q2a,
            i2a,
        })
    }

    fn validate_delta(&self, delta: &IndexDelta) -> Result<(), RetrievalError> {
        validate_added_sets(delta)?;
        let retired: HashSet<u32> = delta.retired_ads.iter().copied().collect();
        for &ad in &delta.retired_ads {
            if !self.inputs.ads_qa.contains_id(ad) || !self.inputs.ads_ia.contains_id(ad) {
                return Err(RetrievalError::UnknownAd { ad });
            }
        }
        for &id in delta.added_ads_qa.ids() {
            if self.inputs.ads_qa.contains_id(id) && !retired.contains(&id) {
                return Err(RetrievalError::DuplicateId {
                    space: "delta added_ads (already in corpus)",
                    id,
                });
            }
        }
        Ok(())
    }
}

/// The delta checks that do not depend on the current corpus: each added
/// space is duplicate-free and both add the same id set.
fn validate_added_sets(delta: &IndexDelta) -> Result<(), RetrievalError> {
    if let Some(id) = delta.added_ads_qa.first_duplicate_id() {
        return Err(RetrievalError::DuplicateId {
            space: "delta added_ads_qa",
            id,
        });
    }
    if let Some(id) = delta.added_ads_ia.first_duplicate_id() {
        return Err(RetrievalError::DuplicateId {
            space: "delta added_ads_ia",
            id,
        });
    }
    let mut qa: Vec<u32> = delta.added_ads_qa.ids().to_vec();
    let mut ia: Vec<u32> = delta.added_ads_ia.ids().to_vec();
    qa.sort_unstable();
    ia.sort_unstable();
    if qa != ia {
        return Err(RetrievalError::InvalidConfig(
            "delta must add every ad to both ad spaces (added_ads_qa and added_ads_ia id sets differ)".into(),
        ));
    }
    Ok(())
}

/// The incremental update of one ad-side inverted index (Q2A or I2A):
/// filter retired ads out of the previous postings, backfill the keys
/// whose full lists lost entries by rescanning them against the surviving
/// ads, compute every key's postings over the added ads only, and merge —
/// see the module docs for why the result is bit-for-bit a full rebuild.
fn delta_ad_index(
    prev: &InvertedIndex,
    keys: &MixedPointSet,
    surviving: &MixedPointSet,
    added: &MixedPointSet,
    retired: &HashSet<u32>,
    config: IndexBuildConfig,
) -> InvertedIndex {
    let k = config.top_k;
    let mut next = InvertedIndex::default();
    if k == 0 || keys.is_empty() || (surviving.is_empty() && added.is_empty()) {
        // the contract full builds keep: no candidates → an EMPTY index,
        // not keys with empty posting lists
        return next;
    }
    // postings of every key over the added ads only: O(keys × added)
    let added_index = if added.is_empty() {
        None
    } else {
        Some(
            config
                .backend
                .build_index(keys, added, k, false, config.threads),
        )
    };
    // boundary-broken keys: the old list was at the top_k cap AND lost a
    // retired entry, so survivors past the old cut may now enter
    let rescan_ids: HashSet<u32> = keys
        .ids()
        .iter()
        .copied()
        .filter(|id| {
            prev.get(*id)
                .is_some_and(|old| old.len() == k && old.iter().any(|(ad, _)| retired.contains(ad)))
        })
        .collect();
    let rescan_index = if rescan_ids.is_empty() || surviving.is_empty() {
        None
    } else {
        let rescan_keys = keys.filtered(|id| rescan_ids.contains(&id));
        Some(
            config
                .backend
                .build_index(&rescan_keys, surviving, k, false, config.threads),
        )
    };
    for i in 0..keys.len() {
        let id = keys.id(i);
        let mut merged: Postings = match rescan_index.as_ref().and_then(|idx| idx.get(id)) {
            Some(rescanned) => rescanned.clone(),
            None => prev
                .get(id)
                .map(|old| {
                    old.iter()
                        .filter(|(ad, _)| !retired.contains(ad))
                        .copied()
                        .collect()
                })
                .unwrap_or_default(),
        };
        if let Some(postings) = added_index.as_ref().and_then(|idx| idx.get(id)) {
            merged.extend_from_slice(postings);
        }
        // the index build's posting order: (distance, id), NaNs already
        // normalised to +inf by the TopK kernel
        merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        next.insert(id, merged);
    }
    next
}

/// Per-shard delta state: the shard's [`DeltaBuilder`] plus exactly one
/// holder of the current generation's [`IndexSet`] — the serving engine
/// when the shard has ads (the engine owns its indices, so storing them
/// again would double every shard's resident index memory), or the bare
/// (ad-free, key-indices-only) set while the shard is adless.
#[derive(Debug, Clone)]
struct ShardSlot {
    builder: DeltaBuilder,
    adless_indexes: Option<IndexSet>,
    engine: Option<Arc<RetrievalEngine>>,
}

/// Incremental index maintenance for a sharded deployment: one
/// [`DeltaBuilder`] per configured shard, with each applied delta routed
/// only to the shards [`ad_shard`] assigns its added / retired ads to.
/// Shards a delta does not touch contribute the *same* [`Arc`]'d engine
/// to the next generation — their index storage is reused
/// pointer-identically, which is what makes a small delta cheap at any
/// shard count.
///
/// The produced [`ShardedEngine`] generations are drop-in publishes for a
/// [`crate::EngineHandle`] (see [`crate::EngineHandle::publish_delta`]).
/// A shard whose last ad is retired simply leaves the active set — like
/// an adless shard at build time — and can re-enter when a later delta
/// adds ads hashing to it; only retiring the *whole* corpus is refused,
/// with the typed [`RetrievalError::EmptyIndex`].
#[derive(Debug, Clone)]
pub struct ShardedDeltaBuilder {
    topology: ShardedEngineBuilder,
    slots: Vec<ShardSlot>,
}

impl ShardedDeltaBuilder {
    /// Split `inputs` across the topology's shards (validated: duplicate
    /// ids rejected, zero-sized topology knobs rejected) and seed every
    /// shard's first-generation index state, building the per-shard index
    /// sets in parallel on the topology's build pool. Unlike
    /// [`ShardedEngineBuilder::build`], adless shards still get their
    /// (ad-free) key indices built, so a later delta can populate them
    /// incrementally.
    pub fn new(
        inputs: &IndexBuildInputs,
        mut topology: ShardedEngineBuilder,
    ) -> Result<Self, RetrievalError> {
        topology.validate_topology()?;
        // one persistent fan-out pool for the whole deployment: every
        // generation this builder assembles serves on the same resident
        // threads instead of spawning a pool per publish
        topology.ensure_fanout_pool();
        inputs.validate()?;
        let parts = shard_inputs(inputs, topology.shards);
        let pool = if topology.build_threads == 0 {
            WorkerPool::sized_for(topology.shards)
        } else {
            WorkerPool::new(topology.build_threads)
        };
        let index = topology.index;
        let retrieval = topology.retrieval;
        let built: Vec<Result<ShardSlot, RetrievalError>> = pool.run(parts.len(), |s| {
            let part = parts[s].clone();
            let indexes = IndexSet::build(&part, index)?;
            let (adless_indexes, engine) = if indexes.q2a.is_empty() && indexes.i2a.is_empty() {
                (Some(indexes), None)
            } else {
                let engine = RetrievalEngine::builder()
                    .index(index)
                    .retrieval(retrieval)
                    .build_from_indexes(indexes)?;
                (None, Some(Arc::new(engine)))
            };
            Ok(ShardSlot {
                builder: DeltaBuilder::new(part, index)?,
                adless_indexes,
                engine,
            })
        });
        let mut slots = Vec::with_capacity(topology.shards);
        for result in built {
            slots.push(result?);
        }
        if slots.iter().all(|slot| slot.engine.is_none()) {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(ShardedDeltaBuilder { topology, slots })
    }

    /// The configured shard count.
    pub fn num_shards(&self) -> usize {
        self.topology.shards
    }

    /// The deployment topology every generation is assembled under —
    /// what the snapshot store persists so a reload reconstructs the
    /// identical cluster shape.
    pub(crate) fn topology(&self) -> &ShardedEngineBuilder {
        &self.topology
    }

    /// Every slot's current state in shard order — its post-delta build
    /// inputs and its current-generation [`IndexSet`] (served or adless).
    /// This is exactly what the snapshot writer persists per shard.
    pub(crate) fn slot_parts(&self) -> Vec<(&IndexBuildInputs, &IndexSet)> {
        self.slots
            .iter()
            .map(|slot| {
                let indexes = match &slot.engine {
                    Some(engine) => engine.indexes(),
                    None => slot
                        .adless_indexes
                        .as_ref()
                        .expect("a slot always holds its indices in exactly one place"),
                };
                (slot.builder.inputs(), indexes)
            })
            .collect()
    }

    /// Reassemble a builder from persisted per-shard state — the warm
    /// path [`crate::store`] reloads through: the expensive index
    /// construction is already done, so each slot only re-validates its
    /// inputs and wraps the decoded [`IndexSet`] in a serving engine.
    /// `parts` must be in shard order, one entry per configured shard
    /// (the snapshot writer guarantees both).
    pub(crate) fn from_slot_parts(
        mut topology: ShardedEngineBuilder,
        parts: Vec<(IndexBuildInputs, IndexSet)>,
    ) -> Result<Self, RetrievalError> {
        topology.validate_topology()?;
        topology.ensure_fanout_pool();
        debug_assert_eq!(parts.len(), topology.shards, "one slot part per shard");
        let index = topology.index;
        let retrieval = topology.retrieval;
        let mut slots = Vec::with_capacity(parts.len());
        for (inputs, indexes) in parts {
            let (adless_indexes, engine) = if indexes.q2a.is_empty() && indexes.i2a.is_empty() {
                (Some(indexes), None)
            } else {
                let engine = RetrievalEngine::builder()
                    .index(index)
                    .retrieval(retrieval)
                    .build_from_indexes(indexes)?;
                (None, Some(Arc::new(engine)))
            };
            slots.push(ShardSlot {
                builder: DeltaBuilder::new(inputs, index)?,
                adless_indexes,
                engine,
            });
        }
        if slots.iter().all(|slot| slot.engine.is_none()) {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(ShardedDeltaBuilder { topology, slots })
    }

    /// Total ads currently in the corpus (across all shards).
    pub fn corpus_len(&self) -> usize {
        self.slots
            .iter()
            .map(|slot| slot.builder.inputs().ads_qa.len())
            .sum()
    }

    /// Assemble the current generation's serving engine: one
    /// [`ShardedEngine`] over the per-shard [`Arc`]'d engines (active
    /// shards only, in shard order — exactly the builder's active-shard
    /// semantics).
    pub fn engine(&self) -> Result<ShardedEngine, RetrievalError> {
        let engines: Vec<Arc<RetrievalEngine>> = self
            .slots
            .iter()
            .filter_map(|slot| slot.engine.as_ref().map(Arc::clone))
            .collect();
        if engines.is_empty() {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(ShardedEngine::from_shard_engines(engines, &self.topology))
    }

    /// Apply one corpus delta and return the next generation's engine.
    /// The delta is split by [`ad_shard`]; only the shards it actually
    /// touches rebuild their ad-side indices (incrementally, through
    /// their [`DeltaBuilder`]), every other shard's engine [`Arc`] is
    /// reused unchanged.
    ///
    /// All validation — duplicate added ids, unknown retired ads,
    /// mismatched added spaces, and retiring the entire corpus
    /// ([`RetrievalError::EmptyIndex`]) — happens before any state
    /// changes, so on `Err` the builder (and the currently published
    /// generation) are untouched.
    pub fn apply(&mut self, delta: &IndexDelta) -> Result<ShardedEngine, RetrievalError> {
        validate_added_sets(delta)?;
        let shards = self.topology.shards;
        let retired: HashSet<u32> = delta.retired_ads.iter().copied().collect();
        for &ad in &delta.retired_ads {
            let slot = &self.slots[ad_shard(ad, shards)];
            if !slot.builder.inputs().ads_qa.contains_id(ad)
                || !slot.builder.inputs().ads_ia.contains_id(ad)
            {
                return Err(RetrievalError::UnknownAd { ad });
            }
        }
        for &id in delta.added_ads_qa.ids() {
            let slot = &self.slots[ad_shard(id, shards)];
            if slot.builder.inputs().ads_qa.contains_id(id) && !retired.contains(&id) {
                return Err(RetrievalError::DuplicateId {
                    space: "delta added_ads (already in corpus)",
                    id,
                });
            }
        }
        // refusing to retire the whole corpus keeps the failure atomic:
        // nothing below this point can fail, so no shard commits a delta
        // the others reject
        if self.corpus_len() - retired.len() + delta.added_ads_qa.len() == 0 {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        let added_qa = delta
            .added_ads_qa
            .partition_by(shards, |ad| ad_shard(ad, shards));
        let added_ia = delta
            .added_ads_ia
            .partition_by(shards, |ad| ad_shard(ad, shards));
        let mut retired_by_shard: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for &ad in &retired {
            retired_by_shard[ad_shard(ad, shards)].push(ad);
        }
        let index = self.topology.index;
        let retrieval = self.topology.retrieval;
        for (s, (added_ads_qa, added_ads_ia)) in added_qa.into_iter().zip(added_ia).enumerate() {
            let sub = IndexDelta {
                added_ads_qa,
                added_ads_ia,
                retired_ads: std::mem::take(&mut retired_by_shard[s]),
            };
            if sub.is_empty() {
                continue; // untouched shard: its Arc is reused verbatim
            }
            let slot = &mut self.slots[s];
            let prev = match &slot.engine {
                Some(engine) => engine.indexes(),
                None => slot
                    .adless_indexes
                    .as_ref()
                    .expect("a slot always holds its indices in exactly one place"),
            };
            let next = slot.builder.apply(prev, &sub)?;
            if next.q2a.is_empty() && next.i2a.is_empty() {
                // the delta retired the shard's last ad: leave rotation
                slot.adless_indexes = Some(next);
                slot.engine = None;
            } else {
                let engine = RetrievalEngine::builder()
                    .index(index)
                    .retrieval(retrieval)
                    .build_from_indexes(next)?;
                slot.engine = Some(Arc::new(engine));
                slot.adless_indexes = None;
            }
        }
        self.engine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Request, RetrievalResponse};
    use crate::test_fixtures::{random_points, shared_points, tiny_inputs};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn logical(
        result: Result<RetrievalResponse, RetrievalError>,
    ) -> Result<RetrievalResponse, RetrievalError> {
        result
            .map(RetrievalResponse::logical)
            .map_err(RetrievalError::logical)
    }

    /// A delta adding `ids` (fresh random points, deterministic per seed)
    /// and retiring `retired`.
    fn make_delta(ids: std::ops::Range<u32>, seed: u64, retired: Vec<u32>) -> IndexDelta {
        IndexDelta {
            added_ads_qa: random_points(ids.clone(), seed),
            added_ads_ia: random_points(ids, seed + 1),
            retired_ads: retired,
        }
    }

    fn assert_indices_identical(a: &InvertedIndex, b: &InvertedIndex, name: &str) {
        assert_eq!(a.len(), b.len(), "{name}: key counts differ");
        for (key, postings) in b.iter() {
            assert_eq!(
                a.get(*key),
                Some(postings),
                "{name}: postings of key {key} differ (ids or distances)"
            );
        }
    }

    #[test]
    fn delta_postings_are_bitwise_identical_to_a_full_rebuild() {
        let inputs = tiny_inputs();
        let config = IndexBuildConfig {
            top_k: 6,
            threads: 1,
            ..Default::default()
        };
        let prev = IndexSet::build(&inputs, config).unwrap();
        let mut builder = DeltaBuilder::new(inputs.clone(), config).unwrap();
        // retire ads that sit in many full posting lists (top_k 6 < 20
        // ads, so lists are at the cap and the backfill rescan must fire)
        let delta = make_delta(300..306, 41, vec![200, 203, 219]);
        let next = builder.apply(&prev, &delta).unwrap();
        let rebuilt = IndexSet::build(builder.inputs(), config).unwrap();
        assert_indices_identical(&next.q2a, &rebuilt.q2a, "q2a");
        assert_indices_identical(&next.i2a, &rebuilt.i2a, "i2a");
        // key-side indices ride along untouched
        assert_indices_identical(&next.q2q, &rebuilt.q2q, "q2q");
        assert_indices_identical(&next.i2i, &rebuilt.i2i, "i2i");
        // no retired ad survives anywhere
        for (_, postings) in next.q2a.iter().chain(next.i2a.iter()) {
            assert!(postings.iter().all(|(ad, _)| ![200, 203, 219].contains(ad)));
        }
        // and a second, chained delta stays exact (retire some of what
        // the first delta added)
        let delta2 = make_delta(310..313, 43, vec![301, 207]);
        let next2 = builder.apply(&next, &delta2).unwrap();
        let rebuilt2 = IndexSet::build(builder.inputs(), config).unwrap();
        assert_indices_identical(&next2.q2a, &rebuilt2.q2a, "q2a after chaining");
        assert_indices_identical(&next2.i2a, &rebuilt2.i2a, "i2a after chaining");
    }

    #[test]
    fn an_ad_can_be_replaced_by_retiring_and_adding_it_in_one_delta() {
        let inputs = tiny_inputs();
        let config = IndexBuildConfig {
            top_k: 5,
            threads: 1,
            ..Default::default()
        };
        let prev = IndexSet::build(&inputs, config).unwrap();
        let mut builder = DeltaBuilder::new(inputs, config).unwrap();
        // id 205 leaves and re-enters with new points in the same delta
        let delta = make_delta(205..206, 77, vec![205]);
        let next = builder.apply(&prev, &delta).unwrap();
        let rebuilt = IndexSet::build(builder.inputs(), config).unwrap();
        assert_indices_identical(&next.q2a, &rebuilt.q2a, "q2a");
        assert_indices_identical(&next.i2a, &rebuilt.i2a, "i2a");
        // the replacement genuinely moved the ad: its stored point changed
        let j = builder.inputs().ads_qa.index_of(205).unwrap();
        assert_ne!(
            builder.inputs().ads_qa.point(j),
            tiny_inputs()
                .ads_qa
                .point(tiny_inputs().ads_qa.index_of(205).unwrap()),
        );
    }

    /// The tentpole acceptance property: over random worlds, shard counts
    /// 1 / 2 / 4 and chained deltas, the delta-built engine serves
    /// rankings (and logical stats) exactly equal to a from-scratch
    /// rebuild of the post-delta corpus — both as a single engine and as
    /// a freshly built sharded engine.
    #[test]
    fn delta_built_rankings_match_a_from_scratch_rebuild_at_shard_counts_1_2_4() {
        let mut rng = StdRng::seed_from_u64(0xde17a);
        for case in 0..3u64 {
            let n_ads = 12 + case as u32 * 5;
            let inputs = IndexBuildInputs {
                queries_qq: shared_points(0..10, 100 + case),
                queries_qi: shared_points(0..10, 200 + case),
                items_qi: shared_points(100..130, 300 + case),
                queries_qa: shared_points(0..10, 400 + case),
                ads_qa: random_points(200..200 + n_ads, 500 + case),
                items_ii: shared_points(100..130, 600 + case),
                items_ia: shared_points(100..130, 700 + case),
                ads_ia: random_points(200..200 + n_ads, 800 + case),
            };
            let top_k = 5 + (case as usize % 4);
            for shards in [1usize, 2, 4] {
                let topology = ShardedEngine::builder()
                    .shards(shards)
                    .top_k(top_k)
                    .threads(1)
                    .build_threads(1);
                let mut builder = ShardedDeltaBuilder::new(&inputs, topology).unwrap();
                let mut truth = inputs.clone();
                for step in 0..2u32 {
                    // retire roughly a quarter of the current corpus,
                    // including (on step 1) ads the previous delta added
                    let retired: Vec<u32> = truth
                        .ads_qa
                        .ids()
                        .iter()
                        .copied()
                        .filter(|id| (id + case as u32 + step).is_multiple_of(4))
                        .collect();
                    let added_base = 300 + step * 50;
                    let delta = make_delta(
                        added_base..added_base + 4 + step,
                        900 + case * 10 + step as u64,
                        retired,
                    );
                    let engine = builder.apply(&delta).unwrap();
                    delta.apply_to(&mut truth);
                    let fresh_single = RetrievalEngine::builder()
                        .top_k(top_k)
                        .threads(1)
                        .build(&truth)
                        .unwrap();
                    let fresh_sharded = ShardedEngine::builder()
                        .shards(shards)
                        .top_k(top_k)
                        .threads(1)
                        .build_threads(1)
                        .build(&truth)
                        .unwrap();
                    assert_eq!(engine.active_shards(), fresh_sharded.active_shards());
                    for _ in 0..15 {
                        let request = Request {
                            query: rng.gen_range(0..12u32), // sometimes unknown
                            preclick_items: (0..rng.gen_range(0..3usize))
                                .map(|_| rng.gen_range(100..132u32))
                                .collect(),
                        };
                        let via_delta = logical(engine.retrieve(&request));
                        assert_eq!(
                            via_delta,
                            logical(fresh_single.retrieve(&request)),
                            "case {case}, {shards} shards, step {step}: delta diverged from the single rebuild"
                        );
                        assert_eq!(
                            via_delta,
                            logical(fresh_sharded.retrieve(&request)),
                            "case {case}, {shards} shards, step {step}: delta diverged from the sharded rebuild"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn untouched_shards_reuse_their_arc_storage_across_generations() {
        let inputs = IndexBuildInputs {
            ads_qa: random_points(200..230, 5),
            ads_ia: random_points(200..230, 8),
            ..tiny_inputs()
        };
        let shards = 4usize;
        let mut builder = ShardedDeltaBuilder::new(
            &inputs,
            ShardedEngine::builder().shards(shards).top_k(8).threads(1),
        )
        .unwrap();
        let gen1 = builder.engine().unwrap();
        assert_eq!(
            gen1.active_shards(),
            shards,
            "precondition: 30 ads must populate all 4 shards"
        );
        // a delta confined to one shard: retire one of its ads, add ads
        // that hash to the same shard
        let target = ad_shard(200, shards);
        let added: Vec<u32> = (300..400)
            .filter(|&id| ad_shard(id, shards) == target)
            .take(2)
            .collect();
        let mut added_qa = MixedPointSet::new(inputs.ads_qa.manifold().clone());
        let mut added_ia = MixedPointSet::new(inputs.ads_ia.manifold().clone());
        let points = random_points(0..2, 99);
        for (i, &id) in added.iter().enumerate() {
            added_qa.push(id, points.point(i), points.weight(i));
            added_ia.push(id, points.point(i), points.weight(i));
        }
        let delta = IndexDelta {
            added_ads_qa: added_qa,
            added_ads_ia: added_ia,
            retired_ads: vec![200],
        };
        let gen2 = builder.apply(&delta).unwrap();
        assert_eq!(gen2.active_shards(), shards);
        for s in 0..shards {
            let reused = Arc::ptr_eq(gen1.shard(s).engine_shared(), gen2.shard(s).engine_shared());
            if s == target {
                assert!(!reused, "the touched shard must rebuild its indices");
            } else {
                assert!(reused, "untouched shard {s} must reuse its Arc storage");
            }
        }
        // an empty delta reuses every shard
        let gen3 = builder
            .apply(&IndexDelta::retire_only(&inputs, Vec::new()))
            .unwrap();
        for s in 0..shards {
            assert!(Arc::ptr_eq(
                gen2.shard(s).engine_shared(),
                gen3.shard(s).engine_shared(),
            ));
        }
    }

    /// The Arc-sharing property: the unchanging key side rides through
    /// shards and delta generations as reference-count bumps, never as
    /// copies — pointer identity proves it.
    #[test]
    fn key_side_indices_and_point_sets_are_shared_not_cloned() {
        let inputs = tiny_inputs();
        let config = IndexBuildConfig {
            top_k: 6,
            threads: 1,
            ..Default::default()
        };
        // single-corpus delta: the next generation's key-side indices are
        // the previous generation's, pointer-identically
        let prev = IndexSet::build(&inputs, config).unwrap();
        let mut builder = DeltaBuilder::new(inputs.clone(), config).unwrap();
        let delta = make_delta(300..304, 11, vec![201]);
        let next = builder.apply(&prev, &delta).unwrap();
        assert!(Arc::ptr_eq(&prev.q2q, &next.q2q), "q2q must be shared");
        assert!(Arc::ptr_eq(&prev.q2i, &next.q2i), "q2i must be shared");
        assert!(Arc::ptr_eq(&prev.i2q, &next.i2q), "i2q must be shared");
        assert!(Arc::ptr_eq(&prev.i2i, &next.i2i), "i2i must be shared");
        // ... while the builder's key-side point sets still are the
        // caller's (retire/append only touched the ad side)
        assert!(Arc::ptr_eq(
            &inputs.queries_qq,
            &builder.inputs().queries_qq
        ));
        assert!(Arc::ptr_eq(&inputs.items_ia, &builder.inputs().items_ia));

        // sharded: every shard's delta state points at the same key-side
        // point sets — one copy per deployment, not one per shard
        let shards = 4usize;
        let mut sharded = ShardedDeltaBuilder::new(
            &inputs,
            ShardedEngine::builder().shards(shards).top_k(6).threads(1),
        )
        .unwrap();
        for slot in &sharded.slots {
            assert!(
                Arc::ptr_eq(&inputs.queries_qq, &slot.builder.inputs().queries_qq),
                "every shard must share the deployment's key point sets"
            );
            assert!(Arc::ptr_eq(
                &inputs.items_ii,
                &slot.builder.inputs().items_ii
            ));
        }
        // ... and a delta keeps it that way on the shards it touches
        let delta = make_delta(310..314, 13, Vec::new());
        sharded.apply(&delta).unwrap();
        for slot in &sharded.slots {
            assert!(Arc::ptr_eq(
                &inputs.queries_qa,
                &slot.builder.inputs().queries_qa
            ));
        }
    }

    /// The HNSW acceptance property: at its saturation point the graph
    /// search is exhaustive, so an HNSW-backed deployment serves
    /// byte-identically (logical view) through a single engine, sharded
    /// engines at 1 / 2 / 4 shards, a delta-published generation — and
    /// all of them equal the exact backend.
    #[test]
    fn saturated_hnsw_serves_identically_single_sharded_and_delta_published() {
        let inputs = tiny_inputs();
        // 20 seed ads + 6 added: saturate well above the final corpus size
        let backend = amcad_mnn::IndexBackend::Hnsw(amcad_mnn::HnswConfig::saturated(64));
        let top_k = 6;
        let exact = RetrievalEngine::builder()
            .top_k(top_k)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let single = RetrievalEngine::builder()
            .backend(backend)
            .top_k(top_k)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let delta = make_delta(300..306, 55, vec![200, 207]);
        let mut truth = inputs.clone();
        delta.apply_to(&mut truth);
        let requests: Vec<Request> = (0..12u32)
            .map(|q| Request {
                query: q % 10,
                preclick_items: vec![100 + q, 110 + (q % 5)],
            })
            .collect();
        for shards in [1usize, 2, 4] {
            let topology = || {
                ShardedEngine::builder()
                    .shards(shards)
                    .backend(backend)
                    .top_k(top_k)
                    .threads(1)
                    .build_threads(1)
            };
            let sharded = topology().build(&inputs).unwrap();
            let mut builder = ShardedDeltaBuilder::new(&inputs, topology()).unwrap();
            let published = builder.apply(&delta).unwrap();
            // post-delta ground truths, exact and HNSW
            let exact_post = RetrievalEngine::builder()
                .top_k(top_k)
                .threads(1)
                .build(&truth)
                .unwrap();
            let hnsw_post = RetrievalEngine::builder()
                .backend(backend)
                .top_k(top_k)
                .threads(1)
                .build(&truth)
                .unwrap();
            for request in &requests {
                // pre-delta: single == sharded == exact
                let want = logical(exact.retrieve(request));
                assert_eq!(logical(single.retrieve(request)), want, "{shards} shards");
                assert_eq!(logical(sharded.retrieve(request)), want, "{shards} shards");
                // post-delta: the delta-published HNSW generation equals
                // both from-scratch rebuilds
                let want_post = logical(exact_post.retrieve(request));
                assert_eq!(
                    logical(published.retrieve(request)),
                    want_post,
                    "{shards} shards: delta-published HNSW diverged from exact"
                );
                assert_eq!(logical(hnsw_post.retrieve(request)), want_post);
            }
        }
    }

    /// The quant acceptance property, mirroring the HNSW one: at its
    /// saturation point (corpus-wide `rerank_k`) every candidate reaches
    /// the exact rerank, so a quant-backed deployment serves byte-
    /// identically (logical view) through a single engine, sharded engines
    /// at 1 / 2 / 4 shards, and a delta-published generation — even though
    /// the delta path encodes new ads against *frozen* codebooks while a
    /// from-scratch rebuild retrains them.
    #[test]
    fn corpus_wide_rerank_quant_serves_identically_single_sharded_and_delta_published() {
        let inputs = tiny_inputs();
        // 20 seed ads + 6 added: rerank well above the final corpus size
        let backend = amcad_mnn::IndexBackend::Quant(amcad_mnn::QuantConfig {
            ksub: 8,
            train_iters: 4,
            rerank_k: 64,
            seed: 9,
        });
        let top_k = 6;
        let exact = RetrievalEngine::builder()
            .top_k(top_k)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let single = RetrievalEngine::builder()
            .backend(backend)
            .top_k(top_k)
            .threads(1)
            .build(&inputs)
            .unwrap();
        let delta = make_delta(300..306, 55, vec![200, 207]);
        let mut truth = inputs.clone();
        delta.apply_to(&mut truth);
        let requests: Vec<Request> = (0..12u32)
            .map(|q| Request {
                query: q % 10,
                preclick_items: vec![100 + q, 110 + (q % 5)],
            })
            .collect();
        for shards in [1usize, 2, 4] {
            let topology = || {
                ShardedEngine::builder()
                    .shards(shards)
                    .backend(backend)
                    .top_k(top_k)
                    .threads(1)
                    .build_threads(1)
            };
            let sharded = topology().build(&inputs).unwrap();
            let mut builder = ShardedDeltaBuilder::new(&inputs, topology()).unwrap();
            let published = builder.apply(&delta).unwrap();
            // post-delta ground truths, exact and quant
            let exact_post = RetrievalEngine::builder()
                .top_k(top_k)
                .threads(1)
                .build(&truth)
                .unwrap();
            let quant_post = RetrievalEngine::builder()
                .backend(backend)
                .top_k(top_k)
                .threads(1)
                .build(&truth)
                .unwrap();
            for request in &requests {
                // pre-delta: single == sharded == exact
                let want = logical(exact.retrieve(request));
                assert_eq!(logical(single.retrieve(request)), want, "{shards} shards");
                assert_eq!(logical(sharded.retrieve(request)), want, "{shards} shards");
                // post-delta: the delta-published quant generation equals
                // both from-scratch rebuilds
                let want_post = logical(exact_post.retrieve(request));
                assert_eq!(
                    logical(published.retrieve(request)),
                    want_post,
                    "{shards} shards: delta-published quant diverged from exact"
                );
                assert_eq!(logical(quant_post.retrieve(request)), want_post);
            }
        }
    }

    #[test]
    fn delta_validation_rejects_duplicates_unknowns_and_mismatched_spaces() {
        let inputs = tiny_inputs();
        let config = IndexBuildConfig {
            top_k: 6,
            threads: 1,
            ..Default::default()
        };
        let prev = IndexSet::build(&inputs, config).unwrap();
        let mut builder = DeltaBuilder::new(inputs.clone(), config).unwrap();
        // duplicate id within one added space
        let mut dup = make_delta(300..302, 1, Vec::new());
        let extra = random_points(300..301, 2);
        dup.added_ads_qa.push(300, extra.point(0), extra.weight(0));
        dup.added_ads_ia.push(300, extra.point(0), extra.weight(0));
        assert!(matches!(
            builder.apply(&prev, &dup).unwrap_err(),
            RetrievalError::DuplicateId {
                space: "delta added_ads_qa",
                id: 300
            }
        ));
        // adding an id the corpus already holds (without retiring it)
        let clash = make_delta(205..206, 3, Vec::new());
        assert!(matches!(
            builder.apply(&prev, &clash).unwrap_err(),
            RetrievalError::DuplicateId { id: 205, .. }
        ));
        // retiring an unknown ad
        let unknown = IndexDelta::retire_only(&inputs, vec![9000]);
        assert_eq!(
            builder.apply(&prev, &unknown).unwrap_err(),
            RetrievalError::UnknownAd { ad: 9000 }
        );
        // the two added spaces must agree on the id set
        let mut skewed = make_delta(300..302, 4, Vec::new());
        skewed.added_ads_ia = random_points(300..301, 5);
        assert!(matches!(
            builder.apply(&prev, &skewed).unwrap_err(),
            RetrievalError::InvalidConfig(_)
        ));
        // every rejection left the builder untouched: a valid apply still
        // matches the from-scratch rebuild exactly
        let valid = make_delta(300..303, 6, vec![201]);
        let next = builder.apply(&prev, &valid).unwrap();
        let rebuilt = IndexSet::build(builder.inputs(), config).unwrap();
        assert_indices_identical(&next.q2a, &rebuilt.q2a, "q2a after rejections");
        // ... and the sharded builder rejects with the same errors
        let mut sharded =
            ShardedDeltaBuilder::new(&inputs, ShardedEngine::builder().shards(2).threads(1))
                .unwrap();
        assert_eq!(
            sharded.apply(&unknown).unwrap_err(),
            RetrievalError::UnknownAd { ad: 9000 }
        );
        assert!(matches!(
            sharded.apply(&clash).unwrap_err(),
            RetrievalError::DuplicateId { id: 205, .. }
        ));
    }

    /// The empty-after-delta regression tests: retiring every ad must
    /// degrade to the typed `EmptyIndex` / `ShardUnavailable` path — for
    /// the single-corpus builder, the sharded builder, and a partially
    /// emptied sharded deployment — never to a panic.
    #[test]
    fn retiring_every_ad_degrades_to_typed_errors_not_panics() {
        let inputs = tiny_inputs();
        let all_ads: Vec<u32> = inputs.ads_qa.ids().to_vec();
        let config = IndexBuildConfig {
            top_k: 6,
            threads: 1,
            ..Default::default()
        };
        // index level: an all-retired corpus builds EMPTY ad indices
        // (exactly like a full rebuild over no ads) and the engine
        // assembly turns that into the typed EmptyIndex error
        let prev = IndexSet::build(&inputs, config).unwrap();
        let mut builder = DeltaBuilder::new(inputs.clone(), config).unwrap();
        let wipe = IndexDelta::retire_only(&inputs, all_ads.clone());
        let emptied = builder.apply(&prev, &wipe).unwrap();
        assert!(emptied.q2a.is_empty() && emptied.i2a.is_empty());
        assert_eq!(
            RetrievalEngine::builder()
                .index(config)
                .build_from_indexes(emptied)
                .unwrap_err(),
            RetrievalError::EmptyIndex { indices: "q2a+i2a" }
        );
        // engine level, single (1 shard) and sharded: refused atomically
        for shards in [1usize, 4] {
            let mut sharded = ShardedDeltaBuilder::new(
                &inputs,
                ShardedEngine::builder().shards(shards).top_k(6).threads(1),
            )
            .unwrap();
            assert_eq!(
                sharded.apply(&wipe).unwrap_err(),
                RetrievalError::EmptyIndex { indices: "q2a+i2a" },
                "{shards} shard(s): wiping the corpus must be a typed error"
            );
            // the refusal was atomic: the current generation still serves
            let engine = sharded.engine().unwrap();
            assert!(engine
                .retrieve(&Request {
                    query: 3,
                    preclick_items: vec![103],
                })
                .is_ok());
        }
        // emptying ONE shard is fine: it leaves the rotation and serving
        // matches a fresh rebuild of the reduced corpus
        let shards = 4usize;
        let mut sharded = ShardedDeltaBuilder::new(
            &inputs,
            ShardedEngine::builder().shards(shards).top_k(6).threads(1),
        )
        .unwrap();
        let before = sharded.engine().unwrap().active_shards();
        let target = ad_shard(all_ads[0], shards);
        let shard_ads: Vec<u32> = all_ads
            .iter()
            .copied()
            .filter(|&ad| ad_shard(ad, shards) == target)
            .collect();
        let drop_shard = IndexDelta::retire_only(&inputs, shard_ads.clone());
        let engine = sharded.apply(&drop_shard).unwrap();
        assert_eq!(engine.active_shards(), before - 1);
        let mut truth = inputs.clone();
        drop_shard.apply_to(&mut truth);
        let fresh = RetrievalEngine::builder()
            .top_k(6)
            .threads(1)
            .build(&truth)
            .unwrap();
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            assert_eq!(
                logical(engine.retrieve(&request)),
                logical(fresh.retrieve(&request))
            );
        }
        // a later delta can repopulate the emptied shard
        let back: Vec<u32> = (500..700)
            .filter(|&id| ad_shard(id, shards) == target)
            .take(2)
            .collect();
        let mut added_qa = MixedPointSet::new(inputs.ads_qa.manifold().clone());
        let mut added_ia = MixedPointSet::new(inputs.ads_ia.manifold().clone());
        let points = random_points(0..2, 123);
        for (i, &id) in back.iter().enumerate() {
            added_qa.push(id, points.point(i), points.weight(i));
            added_ia.push(id, points.point(i), points.weight(i));
        }
        let engine = sharded
            .apply(&IndexDelta {
                added_ads_qa: added_qa,
                added_ads_ia: added_ia,
                retired_ads: Vec::new(),
            })
            .unwrap();
        assert_eq!(engine.active_shards(), before, "the shard re-entered");
        // and the replica-loss path on a delta-built generation stays the
        // familiar typed ShardUnavailable error
        engine.fail_replica(0, 0);
        assert!(matches!(
            engine
                .retrieve(&Request {
                    query: 3,
                    preclick_items: vec![103],
                })
                .unwrap_err(),
            RetrievalError::ShardUnavailable { shard: 0, .. }
        ));
    }
}
