//! The six inverted indices used by online ad retrieval (Section IV-C.1).
//!
//! The paper builds Q2Q, Q2I, I2Q, I2I, Q2A and I2A indices offline with the
//! MNN module and ships them to the serving engine.  [`IndexSet`] holds the
//! six indices; [`IndexBuildInputs`] carries the per-edge-space point sets
//! (queries / items / ads projected into the Q-Q, Q-I, Q-A, I-I and I-A
//! spaces with their precomputed attention weights).

use amcad_mnn::{IndexBackend, InvertedIndex, MixedPointSet};

/// Point sets needed to build all six indices.  Indices that swap key and
/// candidate (Q2I / I2Q) share the same underlying edge space, so queries
/// and items each appear once per space.
#[derive(Debug, Clone)]
pub struct IndexBuildInputs {
    /// Queries projected into the Q-Q edge space.
    pub queries_qq: MixedPointSet,
    /// Queries projected into the Q-I edge space.
    pub queries_qi: MixedPointSet,
    /// Items projected into the Q-I edge space.
    pub items_qi: MixedPointSet,
    /// Queries projected into the Q-A edge space.
    pub queries_qa: MixedPointSet,
    /// Ads projected into the Q-A edge space.
    pub ads_qa: MixedPointSet,
    /// Items projected into the I-I edge space.
    pub items_ii: MixedPointSet,
    /// Items projected into the I-A edge space.
    pub items_ia: MixedPointSet,
    /// Ads projected into the I-A edge space.
    pub ads_ia: MixedPointSet,
}

/// Configuration of offline index construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexBuildConfig {
    /// Posting-list length (nearest K kept per key).
    pub top_k: usize,
    /// Worker threads for backends with a parallel bulk path.
    pub threads: usize,
    /// ANN backend used to build every index (exact scan or IVF).
    pub backend: IndexBackend,
}

impl Default for IndexBuildConfig {
    fn default() -> Self {
        IndexBuildConfig {
            top_k: 20,
            threads: 4,
            backend: IndexBackend::Exact,
        }
    }
}

/// The six inverted indices of the two-layer online retrieval system.
#[derive(Debug, Clone)]
pub struct IndexSet {
    /// Query → related queries.
    pub q2q: InvertedIndex,
    /// Query → related items.
    pub q2i: InvertedIndex,
    /// Item → related queries.
    pub i2q: InvertedIndex,
    /// Item → related items.
    pub i2i: InvertedIndex,
    /// Query → candidate ads.
    pub q2a: InvertedIndex,
    /// Item → candidate ads.
    pub i2a: InvertedIndex,
}

impl IndexSet {
    /// Build all six indices with the configured ANN backend (exact
    /// multi-threaded MNN scan by default, IVF when selected).
    pub fn build(inputs: &IndexBuildInputs, config: IndexBuildConfig) -> IndexSet {
        let k = config.top_k;
        let t = config.threads;
        let build = |keys: &MixedPointSet, candidates: &MixedPointSet, exclude_same: bool| {
            config
                .backend
                .build_index(keys, candidates, k, exclude_same, t)
        };
        IndexSet {
            q2q: build(&inputs.queries_qq, &inputs.queries_qq, true),
            q2i: build(&inputs.queries_qi, &inputs.items_qi, false),
            i2q: build(&inputs.items_qi, &inputs.queries_qi, false),
            i2i: build(&inputs.items_ii, &inputs.items_ii, true),
            q2a: build(&inputs.queries_qa, &inputs.ads_qa, false),
            i2a: build(&inputs.items_ia, &inputs.ads_ia, false),
        }
    }

    /// Total number of posting lists across the six indices.
    pub fn total_keys(&self) -> usize {
        self.q2q.len()
            + self.q2i.len()
            + self.i2q.len()
            + self.i2i.len()
            + self.q2a.len()
            + self.i2a.len()
    }

    /// Total number of postings across the six indices.
    pub fn total_postings(&self) -> usize {
        [
            &self.q2q, &self.q2i, &self.i2q, &self.i2i, &self.q2a, &self.i2a,
        ]
        .iter()
        .map(|idx| idx.iter().map(|(_, p)| p.len()).sum::<usize>())
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_inputs;

    #[test]
    fn build_produces_all_six_indices_with_expected_key_counts() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(set.q2q.len(), 10);
        assert_eq!(set.q2i.len(), 10);
        assert_eq!(set.i2q.len(), 40);
        assert_eq!(set.i2i.len(), 40);
        assert_eq!(set.q2a.len(), 10);
        assert_eq!(set.i2a.len(), 40);
        assert_eq!(set.total_keys(), 150);
        assert!(set.total_postings() > 0);
    }

    #[test]
    fn self_indices_exclude_the_key_itself() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        );
        for (key, postings) in set.q2q.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
        for (key, postings) in set.i2i.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
    }

    #[test]
    fn ivf_backend_builds_all_six_indices_and_full_probe_matches_exact() {
        use amcad_mnn::IvfConfig;
        let inputs = tiny_inputs();
        let exact = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        );
        let ivf = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                backend: IndexBackend::Ivf(IvfConfig {
                    num_clusters: 4,
                    kmeans_iters: 4,
                    nprobe: 4, // probe everything: must match the exact scan
                    seed: 7,
                }),
            },
        );
        assert_eq!(exact.total_keys(), ivf.total_keys());
        for (key, postings) in exact.q2a.iter() {
            let other = ivf.q2a.get(*key).unwrap();
            let ids = |p: &amcad_mnn::Postings| p.iter().map(|(id, _)| *id).collect::<Vec<_>>();
            assert_eq!(ids(postings), ids(other));
        }
    }

    #[test]
    fn cross_indices_point_at_the_candidate_id_range() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        );
        for (_, postings) in set.q2a.iter() {
            assert!(postings.iter().all(|(c, _)| (200..220).contains(c)));
        }
        for (_, postings) in set.q2i.iter() {
            assert!(postings.iter().all(|(c, _)| (100..140).contains(c)));
        }
    }
}
