//! The six inverted indices used by online ad retrieval (Section IV-C.1).
//!
//! The paper builds Q2Q, Q2I, I2Q, I2I, Q2A and I2A indices offline with the
//! MNN module and ships them to the serving engine.  [`IndexSet`] holds the
//! six indices; [`IndexBuildInputs`] carries the per-edge-space point sets
//! (queries / items / ads projected into the Q-Q, Q-I, Q-A, I-I and I-A
//! spaces with their precomputed attention weights).

use std::sync::Arc;

use amcad_mnn::{IndexBackend, InvertedIndex, MixedPointSet};

use crate::error::RetrievalError;

/// Point sets needed to build all six indices.  Indices that swap key and
/// candidate (Q2I / I2Q) share the same underlying edge space, so queries
/// and items each appear once per space.
///
/// The key-side sets (queries and items) are behind [`Arc`]s because they
/// are *replicated, not partitioned*, by every scale-out mechanism in the
/// serving stack: a sharded build hands every shard the same key sets
/// (only the ads split), and a delta publish never touches them at all.
/// Cloning these inputs — per shard, per delta generation — therefore
/// bumps six reference counts instead of copying six point sets. The
/// ad-side sets stay plain: they are genuinely partitioned by
/// [`crate::shard::shard_inputs`] and mutated in place by the delta
/// append/retire lifecycle.
#[derive(Debug, Clone)]
pub struct IndexBuildInputs {
    /// Queries projected into the Q-Q edge space.
    pub queries_qq: Arc<MixedPointSet>,
    /// Queries projected into the Q-I edge space.
    pub queries_qi: Arc<MixedPointSet>,
    /// Items projected into the Q-I edge space.
    pub items_qi: Arc<MixedPointSet>,
    /// Queries projected into the Q-A edge space.
    pub queries_qa: Arc<MixedPointSet>,
    /// Ads projected into the Q-A edge space.
    pub ads_qa: MixedPointSet,
    /// Items projected into the I-I edge space.
    pub items_ii: Arc<MixedPointSet>,
    /// Items projected into the I-A edge space.
    pub items_ia: Arc<MixedPointSet>,
    /// Ads projected into the I-A edge space.
    pub ads_ia: MixedPointSet,
}

impl IndexBuildInputs {
    /// The eight point sets with their space names, in declaration order.
    pub(crate) fn spaces(&self) -> [(&'static str, &MixedPointSet); 8] {
        [
            ("queries_qq", &*self.queries_qq),
            ("queries_qi", &*self.queries_qi),
            ("items_qi", &*self.items_qi),
            ("queries_qa", &*self.queries_qa),
            ("ads_qa", &self.ads_qa),
            ("items_ii", &*self.items_ii),
            ("items_ia", &*self.items_ia),
            ("ads_ia", &self.ads_ia),
        ]
    }

    /// Reject inputs that would corrupt index construction: a duplicate
    /// id within any point set silently overwrites that key's posting
    /// list (and duplicates candidate postings), and would corrupt delta
    /// merges downstream. Surfaced as [`RetrievalError::DuplicateId`].
    pub fn validate(&self) -> Result<(), RetrievalError> {
        for (space, set) in self.spaces() {
            if let Some(id) = set.first_duplicate_id() {
                return Err(RetrievalError::DuplicateId { space, id });
            }
        }
        Ok(())
    }
}

/// Configuration of offline index construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexBuildConfig {
    /// Posting-list length (nearest K kept per key).
    pub top_k: usize,
    /// Worker threads for backends with a parallel bulk path.
    pub threads: usize,
    /// ANN backend used to build every index (exact scan, IVF or HNSW).
    pub backend: IndexBackend,
}

impl Default for IndexBuildConfig {
    fn default() -> Self {
        IndexBuildConfig {
            top_k: 20,
            threads: 4,
            backend: IndexBackend::Exact,
        }
    }
}

/// The six inverted indices of the two-layer online retrieval system.
///
/// The four key-side indices (Q2Q, Q2I, I2Q, I2I) contain no ads, so a
/// delta publish carries them across generations untouched — they are
/// behind [`Arc`]s so "carries across" is a reference-count bump, not a
/// deep copy of four inverted indices per touched shard per delta (the
/// pointer identity is asserted by the delta test suite). The ad-side
/// indices (Q2A, I2A) are the ones deltas genuinely rewrite and stay
/// plain.
#[derive(Debug, Clone)]
pub struct IndexSet {
    /// Query → related queries.
    pub q2q: Arc<InvertedIndex>,
    /// Query → related items.
    pub q2i: Arc<InvertedIndex>,
    /// Item → related queries.
    pub i2q: Arc<InvertedIndex>,
    /// Item → related items.
    pub i2i: Arc<InvertedIndex>,
    /// Query → candidate ads.
    pub q2a: InvertedIndex,
    /// Item → candidate ads.
    pub i2a: InvertedIndex,
}

impl IndexSet {
    /// Build all six indices with the configured ANN backend (exact
    /// multi-threaded MNN scan by default, IVF or HNSW when selected).
    /// Inputs are
    /// validated first: duplicate ids within any point set — which would
    /// silently overwrite posting lists and corrupt delta merges — are
    /// rejected as [`RetrievalError::DuplicateId`].
    pub fn build(
        inputs: &IndexBuildInputs,
        config: IndexBuildConfig,
    ) -> Result<IndexSet, RetrievalError> {
        inputs.validate()?;
        let k = config.top_k;
        let t = config.threads;
        let build = |keys: &MixedPointSet, candidates: &MixedPointSet, exclude_same: bool| {
            config
                .backend
                .build_index(keys, candidates, k, exclude_same, t)
        };
        Ok(IndexSet {
            q2q: Arc::new(build(&inputs.queries_qq, &inputs.queries_qq, true)),
            q2i: Arc::new(build(&inputs.queries_qi, &inputs.items_qi, false)),
            i2q: Arc::new(build(&inputs.items_qi, &inputs.queries_qi, false)),
            i2i: Arc::new(build(&inputs.items_ii, &inputs.items_ii, true)),
            q2a: build(&inputs.queries_qa, &inputs.ads_qa, false),
            i2a: build(&inputs.items_ia, &inputs.ads_ia, false),
        })
    }

    /// Total number of posting lists across the six indices.
    pub fn total_keys(&self) -> usize {
        self.q2q.len()
            + self.q2i.len()
            + self.i2q.len()
            + self.i2i.len()
            + self.q2a.len()
            + self.i2a.len()
    }

    /// Total number of postings across the six indices.
    pub fn total_postings(&self) -> usize {
        [
            &*self.q2q, &*self.q2i, &*self.i2q, &*self.i2i, &self.q2a, &self.i2a,
        ]
        .iter()
        .map(|idx| idx.iter().map(|(_, p)| p.len()).sum::<usize>())
        .sum()
    }

    /// Mean recall@`k` of this set's ad-side posting lists (Q2A and I2A)
    /// against a reference set's — the quality axis of the approximate
    /// backends' recall/latency frontier. An exact-backend set scores 1.0
    /// against itself; approximate backends trade this number for build
    /// (IVF, HNSW) and — via `ef_search` / `nprobe` — search work. Keys
    /// are weighted equally across both indices.
    pub fn ad_recall_against(&self, reference: &IndexSet, k: usize) -> f64 {
        let (qn, inn) = (reference.q2a.len(), reference.i2a.len());
        if qn + inn == 0 {
            return 0.0;
        }
        let q = amcad_mnn::recall_at_k(&self.q2a, &reference.q2a, k);
        let i = amcad_mnn::recall_at_k(&self.i2a, &reference.i2a, k);
        (q * qn as f64 + i * inn as f64) / (qn + inn) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_inputs;

    #[test]
    fn build_produces_all_six_indices_with_expected_key_counts() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(set.q2q.len(), 10);
        assert_eq!(set.q2i.len(), 10);
        assert_eq!(set.i2q.len(), 40);
        assert_eq!(set.i2i.len(), 40);
        assert_eq!(set.q2a.len(), 10);
        assert_eq!(set.i2a.len(), 40);
        assert_eq!(set.total_keys(), 150);
        assert!(set.total_postings() > 0);
    }

    #[test]
    fn self_indices_exclude_the_key_itself() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (key, postings) in set.q2q.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
        for (key, postings) in set.i2i.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
    }

    #[test]
    fn ivf_backend_builds_all_six_indices_and_full_probe_matches_exact() {
        use amcad_mnn::IvfConfig;
        let inputs = tiny_inputs();
        let exact = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let ivf = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                backend: IndexBackend::Ivf(IvfConfig {
                    num_clusters: 4,
                    kmeans_iters: 4,
                    nprobe: 4, // probe everything: must match the exact scan
                    seed: 7,
                }),
            },
        )
        .unwrap();
        assert_eq!(exact.total_keys(), ivf.total_keys());
        for (key, postings) in exact.q2a.iter() {
            let other = ivf.q2a.get(*key).unwrap();
            let ids = |p: &amcad_mnn::Postings| p.iter().map(|(id, _)| *id).collect::<Vec<_>>();
            assert_eq!(ids(postings), ids(other));
        }
    }

    #[test]
    fn hnsw_backend_builds_all_six_indices_and_saturated_matches_exact() {
        use amcad_mnn::HnswConfig;
        let inputs = tiny_inputs();
        let exact = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let hnsw = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                // saturate beyond the largest candidate set (40 items)
                backend: IndexBackend::Hnsw(HnswConfig::saturated(64)),
            },
        )
        .unwrap();
        assert_eq!(exact.total_keys(), hnsw.total_keys());
        for (key, postings) in exact.q2a.iter() {
            assert_eq!(hnsw.q2a.get(*key), Some(postings));
        }
        for (key, postings) in exact.i2i.iter() {
            assert_eq!(hnsw.i2i.get(*key), Some(postings));
        }
        // saturated ad-side recall is exactly 1; exact against itself too
        assert!((hnsw.ad_recall_against(&exact, 5) - 1.0).abs() < 1e-12);
        assert!((exact.ad_recall_against(&exact, 5) - 1.0).abs() < 1e-12);
        // a narrow-beam build is a genuine approximation but stays usable
        let narrow = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                backend: IndexBackend::Hnsw(HnswConfig {
                    m: 4,
                    ef_construction: 8,
                    ef_search: 6,
                    seed: 3,
                }),
            },
        )
        .unwrap();
        let recall = narrow.ad_recall_against(&exact, 5);
        assert!((0.0..=1.0 + 1e-12).contains(&recall));
    }

    #[test]
    fn quant_backend_builds_all_six_indices_and_corpus_wide_rerank_matches_exact() {
        use amcad_mnn::QuantConfig;
        let inputs = tiny_inputs();
        let exact = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let quant = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                backend: IndexBackend::Quant(QuantConfig {
                    ksub: 8,
                    train_iters: 4,
                    // rerank beyond the largest candidate set (40 items):
                    // every posting list must match the exact scan
                    rerank_k: 64,
                    seed: 7,
                }),
            },
        )
        .unwrap();
        assert_eq!(exact.total_keys(), quant.total_keys());
        for (key, postings) in exact.q2a.iter() {
            assert_eq!(quant.q2a.get(*key), Some(postings));
        }
        for (key, postings) in exact.i2i.iter() {
            assert_eq!(quant.i2i.get(*key), Some(postings));
        }
        assert!((quant.ad_recall_against(&exact, 5) - 1.0).abs() < 1e-12);
        // a partial rerank is a genuine approximation but stays usable
        let partial = IndexSet::build(
            &inputs,
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                backend: IndexBackend::Quant(QuantConfig {
                    ksub: 8,
                    train_iters: 4,
                    rerank_k: 12,
                    seed: 3,
                }),
            },
        )
        .unwrap();
        let recall = partial.ad_recall_against(&exact, 5);
        assert!((0.0..=1.0 + 1e-12).contains(&recall));
    }

    #[test]
    fn duplicate_ids_in_any_input_space_are_rejected_with_a_typed_error() {
        // a duplicate ad id would corrupt postings merges (and delta
        // merges): the build must fail fast, naming the space and the id
        let mut inputs = tiny_inputs();
        let i = inputs.ads_qa.index_of(205).unwrap();
        let (point, weight) = (
            inputs.ads_qa.point(i).to_vec(),
            inputs.ads_qa.weight(i).to_vec(),
        );
        inputs.ads_qa.push(205, &point, &weight);
        assert_eq!(
            IndexSet::build(&inputs, IndexBuildConfig::default()).unwrap_err(),
            RetrievalError::DuplicateId {
                space: "ads_qa",
                id: 205
            }
        );
        // a duplicate key id silently overwrites a posting list — equally
        // rejected, in whichever space it appears (key-side sets are
        // shared, so the corruption is written through make_mut)
        let mut inputs = tiny_inputs();
        let i = inputs.queries_qq.index_of(3).unwrap();
        let (point, weight) = (
            inputs.queries_qq.point(i).to_vec(),
            inputs.queries_qq.weight(i).to_vec(),
        );
        Arc::make_mut(&mut inputs.queries_qq).push(3, &point, &weight);
        assert_eq!(
            IndexSet::build(&inputs, IndexBuildConfig::default()).unwrap_err(),
            RetrievalError::DuplicateId {
                space: "queries_qq",
                id: 3
            }
        );
        // clean inputs still build
        assert!(IndexSet::build(&tiny_inputs(), IndexBuildConfig::default()).is_ok());
    }

    #[test]
    fn cross_indices_point_at_the_candidate_id_range() {
        let set = IndexSet::build(
            &tiny_inputs(),
            IndexBuildConfig {
                top_k: 5,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        for (_, postings) in set.q2a.iter() {
            assert!(postings.iter().all(|(c, _)| (200..220).contains(c)));
        }
        for (_, postings) in set.q2i.iter() {
            assert!(postings.iter().all(|(c, _)| (100..140).contains(c)));
        }
    }
}
