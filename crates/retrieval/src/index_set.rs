//! The six inverted indices used by online ad retrieval (Section IV-C.1).
//!
//! The paper builds Q2Q, Q2I, I2Q, I2I, Q2A and I2A indices offline with the
//! MNN module and ships them to the serving engine.  [`IndexSet`] holds the
//! six indices; [`IndexBuildInputs`] carries the per-edge-space point sets
//! (queries / items / ads projected into the Q-Q, Q-I, Q-A, I-I and I-A
//! spaces with their precomputed attention weights).

use amcad_mnn::{build_exact_index, InvertedIndex, MixedPointSet};

/// Point sets needed to build all six indices.  Indices that swap key and
/// candidate (Q2I / I2Q) share the same underlying edge space, so queries
/// and items each appear once per space.
#[derive(Debug, Clone)]
pub struct IndexBuildInputs {
    /// Queries projected into the Q-Q edge space.
    pub queries_qq: MixedPointSet,
    /// Queries projected into the Q-I edge space.
    pub queries_qi: MixedPointSet,
    /// Items projected into the Q-I edge space.
    pub items_qi: MixedPointSet,
    /// Queries projected into the Q-A edge space.
    pub queries_qa: MixedPointSet,
    /// Ads projected into the Q-A edge space.
    pub ads_qa: MixedPointSet,
    /// Items projected into the I-I edge space.
    pub items_ii: MixedPointSet,
    /// Items projected into the I-A edge space.
    pub items_ia: MixedPointSet,
    /// Ads projected into the I-A edge space.
    pub ads_ia: MixedPointSet,
}

/// Configuration of offline index construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexBuildConfig {
    /// Posting-list length (nearest K kept per key).
    pub top_k: usize,
    /// Worker threads for the exact scan.
    pub threads: usize,
}

impl Default for IndexBuildConfig {
    fn default() -> Self {
        IndexBuildConfig { top_k: 20, threads: 4 }
    }
}

/// The six inverted indices of the two-layer online retrieval system.
#[derive(Debug, Clone)]
pub struct IndexSet {
    /// Query → related queries.
    pub q2q: InvertedIndex,
    /// Query → related items.
    pub q2i: InvertedIndex,
    /// Item → related queries.
    pub i2q: InvertedIndex,
    /// Item → related items.
    pub i2i: InvertedIndex,
    /// Query → candidate ads.
    pub q2a: InvertedIndex,
    /// Item → candidate ads.
    pub i2a: InvertedIndex,
}

impl IndexSet {
    /// Build all six indices with the exact multi-threaded MNN scan.
    pub fn build(inputs: &IndexBuildInputs, config: IndexBuildConfig) -> IndexSet {
        let k = config.top_k;
        let t = config.threads;
        IndexSet {
            q2q: build_exact_index(&inputs.queries_qq, &inputs.queries_qq, k, true, t),
            q2i: build_exact_index(&inputs.queries_qi, &inputs.items_qi, k, false, t),
            i2q: build_exact_index(&inputs.items_qi, &inputs.queries_qi, k, false, t),
            i2i: build_exact_index(&inputs.items_ii, &inputs.items_ii, k, true, t),
            q2a: build_exact_index(&inputs.queries_qa, &inputs.ads_qa, k, false, t),
            i2a: build_exact_index(&inputs.items_ia, &inputs.ads_ia, k, false, t),
        }
    }

    /// Total number of posting lists across the six indices.
    pub fn total_keys(&self) -> usize {
        self.q2q.len() + self.q2i.len() + self.i2q.len() + self.i2i.len() + self.q2a.len() + self.i2a.len()
    }

    /// Total number of postings across the six indices.
    pub fn total_postings(&self) -> usize {
        [&self.q2q, &self.q2i, &self.i2q, &self.i2i, &self.q2a, &self.i2a]
            .iter()
            .map(|idx| idx.iter().map(|(_, p)| p.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(ids: std::ops::Range<u32>, seed: u64) -> MixedPointSet {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let tangent: Vec<f64> = (0..4).map(|_| rng.gen_range(-0.3..0.3)).collect();
            set.push(id, &manifold.exp0(&tangent), &[0.5, 0.5]);
        }
        set
    }

    pub(crate) fn tiny_inputs() -> IndexBuildInputs {
        IndexBuildInputs {
            queries_qq: random_points(0..10, 1),
            queries_qi: random_points(0..10, 2),
            items_qi: random_points(100..140, 3),
            queries_qa: random_points(0..10, 4),
            ads_qa: random_points(200..220, 5),
            items_ii: random_points(100..140, 6),
            items_ia: random_points(100..140, 7),
            ads_ia: random_points(200..220, 8),
        }
    }

    #[test]
    fn build_produces_all_six_indices_with_expected_key_counts() {
        let set = IndexSet::build(&tiny_inputs(), IndexBuildConfig { top_k: 5, threads: 2 });
        assert_eq!(set.q2q.len(), 10);
        assert_eq!(set.q2i.len(), 10);
        assert_eq!(set.i2q.len(), 40);
        assert_eq!(set.i2i.len(), 40);
        assert_eq!(set.q2a.len(), 10);
        assert_eq!(set.i2a.len(), 40);
        assert_eq!(set.total_keys(), 150);
        assert!(set.total_postings() > 0);
    }

    #[test]
    fn self_indices_exclude_the_key_itself() {
        let set = IndexSet::build(&tiny_inputs(), IndexBuildConfig { top_k: 5, threads: 1 });
        for (key, postings) in set.q2q.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
        for (key, postings) in set.i2i.iter() {
            assert!(postings.iter().all(|(c, _)| c != key));
        }
    }

    #[test]
    fn cross_indices_point_at_the_candidate_id_range() {
        let set = IndexSet::build(&tiny_inputs(), IndexBuildConfig { top_k: 5, threads: 1 });
        for (_, postings) in set.q2a.iter() {
            assert!(postings.iter().all(|(c, _)| (200..220).contains(c)));
        }
        for (_, postings) in set.q2i.iter() {
            assert!(postings.iter().all(|(c, _)| (100..140).contains(c)));
        }
    }
}
