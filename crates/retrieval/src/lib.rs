//! # amcad-retrieval
//!
//! The two-layer online advertisement retrieval framework of AMCAD
//! (Section IV-C) behind a sharded, hot-swappable serving API, plus a
//! serving-load simulator.
//!
//! ## The serving triad
//!
//! Callers program against the object-safe [`Retrieve`] trait; the three
//! implementations form the deployment ladder of the paper's production
//! cluster:
//!
//! * [`RetrievalEngine`] — one node over the whole corpus: built through a
//!   builder with a pluggable ANN backend, serving single requests and
//!   scan-deduplicated batches with typed errors ([`RetrievalError`]) and
//!   per-request [`RetrievalStats`],
//! * [`ShardedEngine`] — the corpus hash-partitioned **by ad** across N
//!   shards ([`shard::ad_shard`]), each shard built concurrently on a
//!   scoped [`WorkerPool`] and served by R replicas ([`ReplicatedShard`]:
//!   round-robin with health marking and failover, degrading to the typed
//!   [`RetrievalError::ShardUnavailable`] only when a shard loses every
//!   replica); requests fan out to every shard — in parallel when
//!   configured — and the per-key candidate prefixes are merged back into
//!   *exactly* the ranking a whole-corpus engine would return, so shard
//!   count, replica count and pool widths are pure deployment knobs
//!   (every response records its physical route in
//!   [`RetrievalStats::served_by`]),
//! * [`EngineHandle`] — either of the above behind an atomically
//!   swappable [`EngineSnapshot`]: [`EngineHandle::publish`] installs a
//!   freshly rebuilt index with one pointer swap while worker threads
//!   keep serving, each response attributable to exactly one snapshot
//!   generation — the zero-downtime index update of Section V-C.
//!
//! Between full rebuilds, **delta publishes** keep the corpus fresh
//! incrementally: [`IndexDelta`] names the ads entering and leaving,
//! [`DeltaBuilder`] / [`ShardedDeltaBuilder`] update only the ad-side
//! indices of only the touched shards (untouched shards reuse their
//! `Arc`'d storage pointer-identically), and
//! [`EngineHandle::publish_delta`] swaps the result in as the next
//! generation. Delta-built rankings are property-tested bit-identical to
//! a from-scratch rebuild of the post-delta corpus — see the [`delta`]
//! module docs for the algorithm and the exactness argument.
//!
//! The whole serving state is also **durable**: the [`store`] module
//! persists a deployment to a versioned, checksummed snapshot file
//! ([`EngineHandle::save_snapshot`]), and a restarted process reloads it
//! ([`EngineHandle::load`], or [`ShardedEngineBuilder::from_snapshot`]
//! for a cold start without delta tracking) and catches up by replaying
//! the deltas published after the snapshot's generation — skipping the
//! index rebuild entirely and serving byte-identically to a process
//! that never restarted. See the [`store`] module docs for the
//! save → restart → catch-up lifecycle.
//!
//! Below the triad sit the building blocks: [`IndexSet`] (the six
//! inverted indices Q2Q, Q2I, I2Q, I2I, Q2A, I2A built offline with any
//! [`amcad_mnn::AnnIndex`] backend — exact scan, IVF, HNSW or quantised
//! postings; duplicate
//! input ids are rejected with the typed
//! [`RetrievalError::DuplicateId`]), [`TwoLayerRetriever`] (the bare
//! layer logic), and [`ServingSimulator`] (an open-loop load generator
//! measuring response time versus offered QPS, Fig. 9, over any
//! [`Retrieve`] implementation). See `src/README.md` for the backend
//! taxonomy (when to pick which, tuning knobs, incremental-insert
//! support). The unchanging key side is `Arc`-shared everywhere it is
//! replicated: [`IndexBuildInputs`] hands every shard the same key
//! point sets, and [`IndexSet`] carries its key-side indices across
//! delta generations pointer-identically.
//!
//! In front of it all sits the **persistent serving runtime** (the
//! [`runtime`] module): all serving fan-out runs on long-lived
//! condvar-parked [`PersistentPool`] workers instead of per-request
//! thread spawns, and [`ServingRuntime`] adds a bounded admission queue
//! with per-request deadlines — overload sheds with the typed
//! [`RetrievalError::Overloaded`] instead of queueing without bound,
//! queued neighbours batch into one scan-deduplicated `retrieve_batch`,
//! and with [`ShardedEngineBuilder::hedge_delay`] a straggling shard
//! gather is hedged to a sibling replica, first response winning.
//! Per-replica weights ([`ShardedEngine::set_replica_weight`]) and the
//! [`warm_rollout`] helper drain, warm and relabel one replica at a
//! time from a snapshot, so a deployment keeps serving generation G
//! while G+1 warms. [`Scenario`] traffic (flash crowds, Zipf-skewed
//! sustained load) drives it open-loop through
//! [`ServingRuntime::run_scenario`], extending [`LoadReport`] with
//! shed / timeout / hedge counters and goodput.
//!
//! ## Serving with shards, replicas and zero-downtime updates
//!
//! ```no_run
//! use amcad_retrieval::{
//!     EngineHandle, Retrieve, Request, RetrievalConfig, ShardedEngine,
//! };
//! use amcad_mnn::IndexBackend;
//! # fn index_inputs() -> amcad_retrieval::IndexBuildInputs { unimplemented!() }
//!
//! // build: ads hash-partitioned across 4 shards (built concurrently on
//! // 4 threads), 2 serving replicas per shard, parallel request fan-out
//! let sharded = ShardedEngine::builder()
//!     .shards(4)
//!     .replicas(2)
//!     .build_threads(4)
//!     .fanout_threads(2)
//!     .backend(IndexBackend::Exact)
//!     .top_k(20)
//!     .retrieval(RetrievalConfig::default())
//!     .build(&index_inputs())?;
//!
//! // serve: workers hold the handle, each request pins one snapshot
//! let handle = EngineHandle::new(sharded.clone());
//! let response = handle.retrieve(&Request { query: 42, preclick_items: vec![7, 9] })?;
//! println!("coverage: {:?}, postings scanned: {}, route: {:?}",
//!     response.stats.coverage, response.stats.postings_scanned,
//!     response.stats.served_by);
//!
//! // availability: a lost replica reroutes traffic, rankings unchanged;
//! // only a shard with zero replicas left degrades to a typed error
//! sharded.fail_replica(0, 1);
//! assert_eq!(sharded.shard(0).healthy_replicas(), 1);
//!
//! // update: rebuild offline, then swap — zero downtime
//! let rebuilt = ShardedEngine::builder().shards(4).build(&index_inputs())?;
//! let generation = handle.publish(rebuilt);
//! println!("now serving generation {generation}");
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```
//!
//! ## Incremental freshness: delta publishes between rebuilds
//!
//! ```no_run
//! use amcad_retrieval::{EngineHandle, IndexDelta, ShardedDeltaBuilder, ShardedEngine};
//! # fn index_inputs() -> amcad_retrieval::IndexBuildInputs { unimplemented!() }
//! # fn todays_new_ads() -> (amcad_mnn::MixedPointSet, amcad_mnn::MixedPointSet) { unimplemented!() }
//!
//! let inputs = index_inputs();
//! let mut builder = ShardedDeltaBuilder::new(
//!     &inputs,
//!     ShardedEngine::builder().shards(4).replicas(2),
//! )?;
//! let handle = EngineHandle::new(builder.engine()?);
//!
//! // corpus churn: a few ads in, a few ads out — no O(corpus²) rebuild
//! let (added_qa, added_ia) = todays_new_ads();
//! let delta = IndexDelta {
//!     added_ads_qa: added_qa,
//!     added_ads_ia: added_ia,
//!     retired_ads: vec![1371, 1398],
//! };
//! let generation = handle.publish_delta(&mut builder, &delta)?;
//! println!("generation {generation}: rankings identical to a full rebuild");
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```

pub mod delta;
pub mod engine;
pub mod error;
pub mod index_set;
pub mod pool;
pub mod retriever;
pub mod runtime;
pub mod serving;
pub mod shard;
pub mod snapshot;
pub mod store;

pub use delta::{DeltaBuilder, IndexDelta, ShardedDeltaBuilder};
pub use engine::{
    CoverageSource, ReplicaId, Request, RetrievalEngine, RetrievalEngineBuilder, RetrievalResponse,
    RetrievalStats, Retrieve,
};
pub use error::RetrievalError;
pub use index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
pub use pool::WorkerPool;
pub use retriever::{RetrievalConfig, RetrievedAd, TwoLayerRetriever};
pub use runtime::park_pool::PersistentPool;
pub use runtime::{warm_rollout, RuntimeConfig, RuntimeStats, ServingRuntime, Ticket};
pub use serving::{
    LoadReport, Scenario, ScenarioPhase, ServingConfig, ServingSimulator, TrafficPattern,
};
pub use shard::{
    ad_shard, shard_inputs, HedgeControl, ReplicatedShard, ShardedEngine, ShardedEngineBuilder,
};
pub use snapshot::{EngineHandle, EngineSnapshot};
pub use store::{load_backend_state, save_backend_state, SnapshotManifest, FORMAT_VERSION};

/// Shared fixtures for this crate's test modules: one tiny deterministic
/// world (queries 0..10, items 100..140, ads 200..220).
#[cfg(test)]
pub(crate) mod test_fixtures {
    use crate::index_set::IndexBuildInputs;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use amcad_mnn::MixedPointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn random_points(ids: std::ops::Range<u32>, seed: u64) -> MixedPointSet {
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let tangent: Vec<f64> = (0..4).map(|_| rng.gen_range(-0.3..0.3)).collect();
            set.push(id, &manifold.exp0(&tangent), &[0.5, 0.5]);
        }
        set
    }

    /// [`random_points`] wrapped for the shared key-side input fields.
    pub(crate) fn shared_points(
        ids: std::ops::Range<u32>,
        seed: u64,
    ) -> std::sync::Arc<MixedPointSet> {
        std::sync::Arc::new(random_points(ids, seed))
    }

    pub(crate) fn tiny_inputs() -> IndexBuildInputs {
        IndexBuildInputs {
            queries_qq: shared_points(0..10, 1),
            queries_qi: shared_points(0..10, 2),
            items_qi: shared_points(100..140, 3),
            queries_qa: shared_points(0..10, 4),
            ads_qa: random_points(200..220, 5),
            items_ii: shared_points(100..140, 6),
            items_ia: shared_points(100..140, 7),
            ads_ia: random_points(200..220, 8),
        }
    }
}
