//! # amcad-retrieval
//!
//! The two-layer online advertisement retrieval framework of AMCAD
//! (Section IV-C) and a serving-load simulator.
//!
//! * [`IndexSet`] — the six inverted indices (Q2Q, Q2I, I2Q, I2I, Q2A, I2A)
//!   built offline with the MNN module,
//! * [`TwoLayerRetriever`] — layer 1 expands the raw query and pre-click
//!   items into related queries/items, layer 2 retrieves and merges ads,
//! * [`ServingSimulator`] — an open-loop load generator measuring response
//!   time versus offered QPS (Fig. 9).

pub mod index_set;
pub mod retriever;
pub mod serving;

pub use index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
pub use retriever::{RetrievalConfig, RetrievedAd, TwoLayerRetriever};
pub use serving::{LoadReport, Request, ServingConfig, ServingSimulator};
