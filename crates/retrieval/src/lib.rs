//! # amcad-retrieval
//!
//! The two-layer online advertisement retrieval framework of AMCAD
//! (Section IV-C) and a serving-load simulator.
//!
//! * [`RetrievalEngine`] — the production entry point: built through a
//!   builder with a pluggable ANN backend, it serves single requests and
//!   batches with typed errors ([`RetrievalError`]) and per-request
//!   [`RetrievalStats`],
//! * [`IndexSet`] — the six inverted indices (Q2Q, Q2I, I2Q, I2I, Q2A, I2A)
//!   built offline with any [`amcad_mnn::AnnIndex`] backend,
//! * [`TwoLayerRetriever`] — the bare layer logic: layer 1 expands the raw
//!   query and pre-click items into related queries/items, layer 2
//!   retrieves and merges ads,
//! * [`ServingSimulator`] — an open-loop load generator measuring response
//!   time versus offered QPS (Fig. 9) over an engine.
//!
//! ## Building an engine
//!
//! ```no_run
//! use amcad_retrieval::{RetrievalEngine, RetrievalConfig, Request};
//! use amcad_mnn::{IndexBackend, IvfConfig};
//! # fn index_inputs() -> amcad_retrieval::IndexBuildInputs { unimplemented!() }
//!
//! let engine = RetrievalEngine::builder()
//!     .backend(IndexBackend::Ivf(IvfConfig::default())) // or IndexBackend::Exact
//!     .top_k(20)
//!     .retrieval(RetrievalConfig::default())
//!     .build(&index_inputs())?;
//!
//! let response = engine.retrieve(&Request { query: 42, preclick_items: vec![7, 9] })?;
//! for ad in &response.ads {
//!     println!("ad {} score {:.3}", ad.ad, ad.score);
//! }
//! println!("coverage: {:?}, postings scanned: {}",
//!     response.stats.coverage, response.stats.postings_scanned);
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```

pub mod engine;
pub mod error;
pub mod index_set;
pub mod retriever;
pub mod serving;

pub use engine::{
    CoverageSource, Request, RetrievalEngine, RetrievalEngineBuilder, RetrievalResponse,
    RetrievalStats,
};
pub use error::RetrievalError;
pub use index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
pub use retriever::{RetrievalConfig, RetrievedAd, TwoLayerRetriever};
pub use serving::{LoadReport, ServingConfig, ServingSimulator};

/// Shared fixtures for this crate's test modules: one tiny deterministic
/// world (queries 0..10, items 100..140, ads 200..220).
#[cfg(test)]
pub(crate) mod test_fixtures {
    use crate::index_set::IndexBuildInputs;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use amcad_mnn::MixedPointSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn random_points(ids: std::ops::Range<u32>, seed: u64) -> MixedPointSet {
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for id in ids {
            let tangent: Vec<f64> = (0..4).map(|_| rng.gen_range(-0.3..0.3)).collect();
            set.push(id, &manifold.exp0(&tangent), &[0.5, 0.5]);
        }
        set
    }

    pub(crate) fn tiny_inputs() -> IndexBuildInputs {
        IndexBuildInputs {
            queries_qq: random_points(0..10, 1),
            queries_qi: random_points(0..10, 2),
            items_qi: random_points(100..140, 3),
            queries_qa: random_points(0..10, 4),
            ads_qa: random_points(200..220, 5),
            items_ii: random_points(100..140, 6),
            items_ia: random_points(100..140, 7),
            ads_ia: random_points(200..220, 8),
        }
    }
}
