//! The serving API: the [`Retrieve`] trait and its single-node
//! implementation, [`RetrievalEngine`].
//!
//! Production callers program against the object-safe [`Retrieve`]
//! interface; three implementations cover the deployment ladder:
//!
//! * [`RetrievalEngine`] (this module) — one node holding all six inverted
//!   indices, built through a builder with a pluggable ANN backend,
//! * [`crate::ShardedEngine`] — the same inputs hash-partitioned by ad
//!   across N shards, fanned out per request and merged back into the
//!   globally correct ranking,
//! * [`crate::EngineHandle`] — either of the above behind an atomically
//!   swappable snapshot, so a rebuilt index can be published with zero
//!   downtime while worker threads keep serving.
//!
//! ```no_run
//! use amcad_retrieval::{IndexBuildInputs, Retrieve, RetrievalEngine, Request};
//! use amcad_mnn::{IndexBackend, IvfConfig};
//! # fn inputs() -> IndexBuildInputs { unimplemented!() }
//!
//! let engine = RetrievalEngine::builder()
//!     .backend(IndexBackend::Ivf(IvfConfig::default()))
//!     .top_k(20)
//!     .build(&inputs())?;
//! // `engine` can be used directly or behind `&dyn Retrieve`
//! let serving: &dyn Retrieve = &engine;
//! let response = serving.retrieve(&Request { query: 7, preclick_items: vec![101] })?;
//! println!("{} ads via {:?}", response.ads.len(), response.stats.coverage);
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```
//!
//! Compared to calling the bare retriever the engine adds: backend
//! selection (exact, IVF or HNSW — any [`amcad_mnn::AnnIndex`]), typed errors
//! instead of silent empty results, a batched
//! [`RetrievalEngine::retrieve_batch`] entry point that deduplicates
//! second-layer index scans across the batch, and per-request
//! [`RetrievalStats`].

use amcad_mnn::IndexBackend;

use crate::error::RetrievalError;
use crate::index_set::{IndexBuildConfig, IndexBuildInputs, IndexSet};
use crate::retriever::{RetrievalConfig, RetrievedAd, TwoLayerRetriever};

/// One online request: the posed query plus recently clicked items.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Request {
    /// Query node id.
    pub query: u32,
    /// Recently clicked item node ids.
    pub preclick_items: Vec<u32>,
}

/// Which retrieval channel covered the request, by precedence over the
/// candidates scanned in the second layer: it answers "would this request
/// be covered without the expansion / pre-click channels?", not which
/// channel's ads won the final ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverageSource {
    /// No channel produced any candidate (surfaced as
    /// [`RetrievalError::NoCoverage`]).
    #[default]
    None,
    /// The raw query's own Q2A posting list contributed candidates (the
    /// final ranking may still be dominated by other channels).
    DirectQuery,
    /// Q2Q / Q2I expansions of the raw query contributed candidates and
    /// the raw query itself did not (pre-click channels may also have
    /// contributed).
    ExpandedKeys,
    /// Only pre-click items (or their expansions) contributed candidates
    /// — the second layer's coverage win for unseen queries.
    PreclickItems,
}

/// One physical serving assignment of a sharded deployment: which replica
/// of which shard answered the fan-out gathers of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId {
    /// Active shard index (shards emptied by the hash split are skipped
    /// at build time and never appear here).
    pub shard: u32,
    /// Replica index within that shard's replica set.
    pub replica: u32,
}

/// Per-request work and provenance counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RetrievalStats {
    /// First-layer keys used (raw query + raw pre-clicks + expansions).
    pub keys_expanded: usize,
    /// Posting-list entries examined across both layers.
    pub postings_scanned: usize,
    /// Channel that covered the request (see [`CoverageSource`] for the
    /// exact attribution semantics).
    pub coverage: CoverageSource,
    /// Physical fan-out route: for every active shard gathered during this
    /// request, the serving replica that answered — one entry per shard,
    /// in shard order. Empty on single-node engines. This is deployment
    /// attribution, not logical work: resharding, replication and failover
    /// all change the route while leaving every other field (and the
    /// ranking) untouched, which is what [`RetrievalStats::logical`]
    /// exists to compare.
    pub served_by: Vec<ReplicaId>,
}

impl RetrievalStats {
    /// The topology-invariant view of the stats: every field except the
    /// physical `served_by` route. Two deployments of the same corpus —
    /// any shard count, any replica count, any dead replicas short of a
    /// whole shard — report identical logical stats for a request; the
    /// parity and failover tests compare through this view.
    pub fn logical(&self) -> RetrievalStats {
        RetrievalStats {
            served_by: Vec::new(),
            ..self.clone()
        }
    }
}

/// A served request: ranked ads plus the stats behind them.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalResponse {
    /// Ranked ads, best first.
    pub ads: Vec<RetrievedAd>,
    /// Work and provenance counters for this request.
    pub stats: RetrievalStats,
}

impl RetrievalResponse {
    /// The topology-invariant view of the response: identical ads, stats
    /// reduced through [`RetrievalStats::logical`]. Pair with
    /// [`crate::RetrievalError::logical`] to compare full served results
    /// across deployment topologies.
    pub fn logical(mut self) -> Self {
        self.stats = self.stats.logical();
        self
    }
}

/// The object-safe serving interface every engine flavour implements:
/// single-node [`RetrievalEngine`], fan-out [`crate::ShardedEngine`], and
/// the hot-swappable [`crate::EngineHandle`] / [`crate::EngineSnapshot`].
///
/// Callers (the serving simulator, benchmark binaries, transport layers)
/// hold `&dyn Retrieve` and stay oblivious to the deployment topology
/// behind it. `Send + Sync` is part of the contract: serving fans requests
/// across worker threads.
pub trait Retrieve: Send + Sync {
    /// Serve one request. `Err(NoCoverage)` replaces a silent empty result
    /// when neither the query nor its pre-click context reaches any ad.
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError>;

    /// Serve a batch of requests in one call — the entry point for
    /// transport-level batching. Each request gets its own result so
    /// partial coverage failures don't poison the batch. The default
    /// implementation serves request by request; implementations override
    /// it when a batch can be served cheaper than N singles.
    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        requests.iter().map(|r| self.retrieve(r)).collect()
    }
}

/// The engine: built indices + two-layer logic + the backend that built
/// them.
#[derive(Debug, Clone)]
pub struct RetrievalEngine {
    retriever: TwoLayerRetriever,
    index_config: IndexBuildConfig,
}

/// Builder for [`RetrievalEngine`] — see the module docs for the shape.
#[derive(Debug, Clone, Default)]
pub struct RetrievalEngineBuilder {
    index: IndexBuildConfig,
    retrieval: RetrievalConfig,
}

impl RetrievalEngineBuilder {
    /// Select the ANN backend used to build all six indices.
    pub fn backend(mut self, backend: IndexBackend) -> Self {
        self.index.backend = backend;
        self
    }

    /// Posting-list length kept per key (default 20).
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.index.top_k = top_k;
        self
    }

    /// Worker threads for bulk index construction (default 4).
    pub fn threads(mut self, threads: usize) -> Self {
        self.index.threads = threads;
        self
    }

    /// Replace the whole index-construction configuration.
    pub fn index(mut self, index: IndexBuildConfig) -> Self {
        self.index = index;
        self
    }

    /// Replace the two-layer retrieval configuration.
    pub fn retrieval(mut self, retrieval: RetrievalConfig) -> Self {
        self.retrieval = retrieval;
        self
    }

    fn validate(&self) -> Result<(), RetrievalError> {
        if self.index.top_k == 0 {
            return Err(RetrievalError::InvalidConfig(
                "index top_k must be positive".into(),
            ));
        }
        if self.index.threads == 0 {
            return Err(RetrievalError::InvalidConfig(
                "index build threads must be positive".into(),
            ));
        }
        if self.retrieval.ads_per_key == 0 || self.retrieval.final_top_n == 0 {
            return Err(RetrievalError::InvalidConfig(
                "ads_per_key and final_top_n must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Build the six indices from the point sets and assemble the engine.
    /// Inputs with duplicate ids are rejected as
    /// [`RetrievalError::DuplicateId`] before any index work happens.
    pub fn build(self, inputs: &IndexBuildInputs) -> Result<RetrievalEngine, RetrievalError> {
        self.validate()?;
        let indexes = IndexSet::build(inputs, self.index)?;
        self.assemble(indexes)
    }

    /// Assemble the engine around already-built indices (used when the
    /// same `IndexSet` is shared between experiments).
    ///
    /// The engine's [`RetrievalEngine::backend`] / `index_config` report
    /// *this builder's* configuration — when the indices were built
    /// elsewhere, set the builder's backend/top_k to match so labels and
    /// stats stay truthful.
    pub fn build_from_indexes(self, indexes: IndexSet) -> Result<RetrievalEngine, RetrievalError> {
        self.validate()?;
        self.assemble(indexes)
    }

    fn assemble(self, indexes: IndexSet) -> Result<RetrievalEngine, RetrievalError> {
        if indexes.q2a.is_empty() && indexes.i2a.is_empty() {
            return Err(RetrievalError::EmptyIndex { indices: "q2a+i2a" });
        }
        Ok(RetrievalEngine {
            retriever: TwoLayerRetriever::new(indexes, self.retrieval),
            index_config: self.index,
        })
    }
}

impl RetrievalEngine {
    /// Start building an engine.
    pub fn builder() -> RetrievalEngineBuilder {
        RetrievalEngineBuilder::default()
    }

    /// The backend the indices were built with.
    pub fn backend(&self) -> IndexBackend {
        self.index_config.backend
    }

    /// The index-construction configuration.
    pub fn index_config(&self) -> &IndexBuildConfig {
        &self.index_config
    }

    /// The two-layer retrieval configuration.
    pub fn config(&self) -> &RetrievalConfig {
        self.retriever.config()
    }

    /// The six inverted indices.
    pub fn indexes(&self) -> &IndexSet {
        self.retriever.indexes()
    }

    /// The bare two-layer retriever — crate-visible so the sharded engine
    /// can expand keys once and merge per-shard candidate prefixes.
    pub(crate) fn retriever(&self) -> &TwoLayerRetriever {
        &self.retriever
    }

    /// Serve one request. `Err(NoCoverage)` replaces the old silent empty
    /// result when neither the query nor its pre-click context reaches any
    /// ad.
    pub fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        let (ads, stats) = self
            .retriever
            .retrieve_with_stats(request.query, &request.preclick_items);
        if ads.is_empty() {
            return Err(RetrievalError::NoCoverage {
                query: request.query,
                stats,
            });
        }
        Ok(RetrievalResponse { ads, stats })
    }

    /// Serve a batch of requests in one call — the entry point for
    /// transport-level batching (a server that collects requests and
    /// flushes responses together). Second-layer index scans are
    /// deduplicated across the batch: when several requests expand to the
    /// same key, its posting-list prefix is fetched once, so a batch is
    /// measurably cheaper than N single [`RetrievalEngine::retrieve`]
    /// calls. Rankings are identical to the single path; a shared scan is
    /// attributed to the first request that needed it. Each request gets
    /// its own result so partial coverage failures don't poison the batch.
    /// Note that [`crate::ServingSimulator`] serves per request to keep its
    /// latency measurement faithful; it batches only the queue draining.
    pub fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        self.retriever
            .retrieve_batch_with_stats(requests)
            .into_iter()
            .zip(requests)
            .map(|((ads, stats), request)| {
                if ads.is_empty() {
                    Err(RetrievalError::NoCoverage {
                        query: request.query,
                        stats,
                    })
                } else {
                    Ok(RetrievalResponse { ads, stats })
                }
            })
            .collect()
    }

    /// Single-layer baseline (raw query's Q2A only) — kept for coverage
    /// comparisons against the two-layer path.
    pub fn retrieve_single_layer(&self, query: u32) -> Vec<RetrievedAd> {
        self.retriever.retrieve_single_layer(query)
    }
}

impl Retrieve for RetrievalEngine {
    fn retrieve(&self, request: &Request) -> Result<RetrievalResponse, RetrievalError> {
        RetrievalEngine::retrieve(self, request)
    }

    fn retrieve_batch(
        &self,
        requests: &[Request],
    ) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        RetrievalEngine::retrieve_batch(self, requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::tiny_inputs as inputs;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use amcad_mnn::{IvfConfig, MixedPointSet};

    #[test]
    fn builder_builds_and_serves_with_the_default_backend() {
        let engine = RetrievalEngine::builder()
            .top_k(8)
            .threads(1)
            .build(&inputs())
            .unwrap();
        assert_eq!(engine.backend(), IndexBackend::Exact);
        let response = engine
            .retrieve(&Request {
                query: 3,
                preclick_items: vec![101, 115],
            })
            .unwrap();
        assert!(!response.ads.is_empty());
        assert!(response.stats.keys_expanded >= 3);
        assert_eq!(response.stats.coverage, CoverageSource::DirectQuery);
    }

    #[test]
    fn ivf_backend_threads_through_the_builder() {
        let engine = RetrievalEngine::builder()
            .backend(IndexBackend::Ivf(IvfConfig {
                num_clusters: 4,
                kmeans_iters: 4,
                nprobe: 4,
                seed: 9,
            }))
            .top_k(8)
            .build(&inputs())
            .unwrap();
        assert_eq!(engine.backend().label(), "ivf");
        let response = engine
            .retrieve(&Request {
                query: 1,
                preclick_items: vec![120],
            })
            .unwrap();
        assert!(!response.ads.is_empty());
        assert!(response.ads.iter().all(|a| (200..220).contains(&a.ad)));
    }

    #[test]
    fn full_probe_ivf_engine_serves_the_same_ads_as_exact() {
        let exact = RetrievalEngine::builder()
            .top_k(8)
            .build(&inputs())
            .unwrap();
        let ivf = RetrievalEngine::builder()
            .backend(IndexBackend::Ivf(IvfConfig {
                num_clusters: 6,
                kmeans_iters: 5,
                nprobe: 6,
                seed: 3,
            }))
            .top_k(8)
            .build(&inputs())
            .unwrap();
        for q in 0..10u32 {
            let request = Request {
                query: q,
                preclick_items: vec![100 + q],
            };
            let a = exact.retrieve(&request).unwrap();
            let b = ivf.retrieve(&request).unwrap();
            let ids = |r: &RetrievalResponse| r.ads.iter().map(|a| a.ad).collect::<Vec<_>>();
            assert_eq!(
                ids(&a),
                ids(&b),
                "full probing must match exact for query {q}"
            );
        }
    }

    #[test]
    fn no_coverage_is_a_typed_error_not_an_empty_list() {
        let engine = RetrievalEngine::builder()
            .top_k(8)
            .build(&inputs())
            .unwrap();
        let err = engine
            .retrieve(&Request {
                query: 9999,
                preclick_items: vec![],
            })
            .unwrap_err();
        assert!(
            matches!(err, RetrievalError::NoCoverage { query: 9999, .. }),
            "got {err:?}"
        );
        // the error still reports the work the request performed
        let RetrievalError::NoCoverage { stats, .. } = err else {
            unreachable!()
        };
        assert_eq!(stats.keys_expanded, 1, "only the raw unknown query key");
    }

    #[test]
    fn invalid_configs_fail_at_build_time() {
        assert!(matches!(
            RetrievalEngine::builder().top_k(0).build(&inputs()),
            Err(RetrievalError::InvalidConfig(_))
        ));
        assert!(matches!(
            RetrievalEngine::builder().threads(0).build(&inputs()),
            Err(RetrievalError::InvalidConfig(_))
        ));
        let bad_retrieval = RetrievalConfig {
            final_top_n: 0,
            ..Default::default()
        };
        assert!(matches!(
            RetrievalEngine::builder()
                .retrieval(bad_retrieval)
                .build(&inputs()),
            Err(RetrievalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn engine_without_any_ad_index_is_rejected_for_every_backend() {
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let empty = MixedPointSet::new(manifold);
        let mut no_ads = inputs();
        no_ads.ads_qa = empty.clone();
        no_ads.ads_ia = empty;
        for backend in [IndexBackend::Exact, IndexBackend::Ivf(IvfConfig::default())] {
            assert_eq!(
                RetrievalEngine::builder()
                    .backend(backend)
                    .build(&no_ads)
                    .unwrap_err(),
                RetrievalError::EmptyIndex { indices: "q2a+i2a" },
                "{} backend must fail fast on empty ad indices",
                backend.label()
            );
        }
    }

    #[test]
    fn duplicate_input_ids_fail_the_engine_build_with_a_typed_error() {
        let mut bad = inputs();
        let i = bad.ads_ia.index_of(210).unwrap();
        let (point, weight) = (bad.ads_ia.point(i).to_vec(), bad.ads_ia.weight(i).to_vec());
        bad.ads_ia.push(210, &point, &weight);
        assert_eq!(
            RetrievalEngine::builder().build(&bad).unwrap_err(),
            RetrievalError::DuplicateId {
                space: "ads_ia",
                id: 210
            }
        );
    }

    #[test]
    fn build_from_indexes_shares_a_prebuilt_index_set() {
        let indexes = IndexSet::build(
            &inputs(),
            IndexBuildConfig {
                top_k: 8,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let engine = RetrievalEngine::builder()
            .top_k(8)
            .build_from_indexes(indexes.clone())
            .unwrap();
        assert_eq!(engine.indexes().total_keys(), indexes.total_keys());
        assert!(engine
            .retrieve(&Request {
                query: 3,
                preclick_items: vec![101],
            })
            .is_ok());
        // an all-empty index set is still rejected through this path
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let empty = MixedPointSet::new(manifold);
        let mut no_ads = inputs();
        no_ads.ads_qa = empty.clone();
        no_ads.ads_ia = empty;
        let empty_set = IndexSet::build(
            &no_ads,
            IndexBuildConfig {
                top_k: 8,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            RetrievalEngine::builder()
                .build_from_indexes(empty_set)
                .unwrap_err(),
            RetrievalError::EmptyIndex { indices: "q2a+i2a" }
        );
    }

    #[test]
    fn batch_results_are_per_request() {
        let engine = RetrievalEngine::builder()
            .top_k(8)
            .build(&inputs())
            .unwrap();
        let requests = vec![
            Request {
                query: 2,
                preclick_items: vec![101],
            },
            Request {
                query: 9999, // uncovered
                preclick_items: vec![],
            },
            Request {
                query: 5,
                preclick_items: vec![],
            },
        ];
        let results = engine.retrieve_batch(&requests);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(RetrievalError::NoCoverage { query: 9999, .. })
        ));
        assert!(results[2].is_ok());
        // batch results match single-request results exactly
        let single = engine.retrieve(&requests[0]).unwrap();
        assert_eq!(results[0].as_ref().unwrap(), &single);
    }
}
