//! A small scoped worker pool: run N independent jobs on T threads and
//! collect their results **in job order**.
//!
//! This is the *build-side* pool: every shard's index build is
//! independent of its siblings but borrows local state (the shard
//! inputs), so a `'static` thread pool would force clones. [`WorkerPool`]
//! instead spawns *scoped* threads per [`WorkerPool::run`] call (via the
//! `crossbeam` scope, which delegates to `std::thread::scope`): workers
//! claim job indices from a shared atomic counter and stash `(index,
//! result)` pairs locally, and the results are re-assembled into index
//! order afterwards. Work-stealing by index keeps long jobs from
//! serialising behind a static partition, and the index-ordered
//! re-assembly is what makes the parallel output **byte-identical** to the
//! sequential loop — the property the sharded-engine tests pin for shard
//! counts 1 / 2 / 4 / 7.
//!
//! Per-call thread spawns are fine for builds, where the spawn cost is
//! noise next to the O(keys × ads) work. The *serving* hot paths — shard
//! fan-out and batch scan-dedup — do not use this pool: they run on the
//! long-lived, condvar-parked
//! [`PersistentPool`](crate::runtime::park_pool::PersistentPool), which
//! keeps the same work-stealing, index-ordered (hence byte-identical)
//! protocol without a spawn per request.
//!
//! With one thread (or at most one job) `run` executes inline on the
//! caller's thread: no spawn, no synchronisation, exactly the sequential
//! code path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable scoped worker pool (see the module docs). Holding one is
/// free — threads are spawned per [`WorkerPool::run`] call and joined
/// before it returns, so the pool itself is just the thread-count knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A sequential pool (one thread): parallelism is opt-in.
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

impl WorkerPool {
    /// Create a pool that runs jobs on up to `threads` worker threads
    /// (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine: `available_parallelism`, capped at
    /// `cap` (use the job count to avoid idle workers).
    pub fn sized_for(cap: usize) -> Self {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(hw.min(cap.max(1)))
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `jobs` independent jobs — `f(0)`, `f(1)`, … `f(jobs - 1)` —
    /// and return their results in job order, exactly as the sequential
    /// `(0..jobs).map(f).collect()` would. Runs inline when the pool has
    /// one thread or there is at most one job; a panicking job propagates
    /// the panic to the caller either way.
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || jobs <= 1 {
            return (0..jobs).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(jobs);
        let per_worker: Vec<Vec<(usize, T)>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let f = &f;
                    scope.spawn(move |_| {
                        // amcad-lint: allow(alloc-in-hot-loop) — one scratch Vec per worker per batch; build-phase pool, hot only via the .run(..) name collision with PersistentPool
                        let mut local = Vec::new();
                        loop {
                            // index claim only: RMW atomicity hands out each
                            // index exactly once; the scope join publishes
                            // the results — no extra edge needed, so Relaxed
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs {
                                break;
                            }
                            // amcad-lint: allow(alloc-in-hot-loop) — push into the per-worker scratch above, amortized over the worker's share of the batch
                            local.push((i, f(i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
        for (i, value) in per_worker.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "job {i} claimed twice");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every job index is claimed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_come_back_in_job_order_for_any_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 7] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.run(97, |i| i * 3 + 1), expected, "{threads} threads");
        }
    }

    #[test]
    fn zero_jobs_and_zero_threads_are_harmless() {
        assert_eq!(WorkerPool::new(0).threads(), 1, "thread count is clamped");
        assert!(WorkerPool::new(4).run(0, |i| i).is_empty());
        assert_eq!(WorkerPool::default().threads(), 1);
        assert!(WorkerPool::sized_for(8).threads() >= 1);
        assert_eq!(WorkerPool::sized_for(0).threads(), 1);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let results = WorkerPool::new(3).run(50, |i| {
            assert!(seen.lock().unwrap().insert(i), "job {i} ran twice");
            i
        });
        assert_eq!(results.len(), 50);
        assert_eq!(seen.lock().unwrap().len(), 50);
    }

    #[test]
    fn a_panicking_job_propagates_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(2).run(8, |i| {
                if i == 5 {
                    panic!("job 5 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "the pool must not swallow job panics");
    }

    #[test]
    fn borrowed_state_is_visible_to_workers() {
        // the whole point of the scoped design: jobs borrow the caller's
        // locals without cloning or 'static bounds
        let inputs: Vec<String> = (0..20).map(|i| format!("item-{i}")).collect();
        let lens = WorkerPool::new(4).run(inputs.len(), |i| inputs[i].len());
        assert_eq!(lens, inputs.iter().map(String::len).collect::<Vec<_>>());
    }
}
