//! Typed errors for engine construction and retrieval.
//!
//! The original entry points silently returned empty ad lists (or panicked
//! on NaN sorts); the engine API surfaces those situations as values so the
//! serving layer can count, log and shed them explicitly.

use std::fmt;
use std::time::Duration;

use crate::engine::RetrievalStats;

/// Everything that can go wrong building or querying a
/// [`crate::RetrievalEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetrievalError {
    /// A configuration value makes the engine unusable (zero `top_k`,
    /// zero workers, ...). Carries a human-readable reason.
    InvalidConfig(String),
    /// Index construction produced an engine that can never serve an ad
    /// (both ad-side indices are empty). Carries the offending index
    /// names.
    EmptyIndex {
        /// Which indices were empty (e.g. `"q2a+i2a"`).
        indices: &'static str,
    },
    /// A request produced no ads: the query is unknown to every index and
    /// no pre-click item provided coverage.
    NoCoverage {
        /// The query node id of the uncovered request.
        query: u32,
        /// The work the request still performed — tells an operator
        /// whether the query expanded to no keys at all or to keys with
        /// empty ad posting lists.
        stats: RetrievalStats,
    },
    /// An index-build input (or delta) carries the same id twice where
    /// ids must be unique. Duplicate key ids silently overwrite posting
    /// lists and duplicate candidate ids corrupt postings merges (and
    /// would corrupt delta merges), so builds and delta applications
    /// reject them up front.
    DuplicateId {
        /// The point set (or delta field) holding the duplicate.
        space: &'static str,
        /// The offending id.
        id: u32,
    },
    /// A delta retired an ad id the current corpus does not contain —
    /// applying it would silently diverge the delta-maintained corpus
    /// from the intended one.
    UnknownAd {
        /// The ad id the delta tried to retire.
        ad: u32,
    },
    /// A sharded deployment lost *every* serving replica of one shard, so
    /// the fan-out can no longer assemble the globally correct ranking.
    /// Requests degrade to this typed error instead of panicking or
    /// silently serving a corpus with a hole in it; as long as each shard
    /// keeps at least one healthy replica, failover reroutes traffic and
    /// this error never surfaces.
    ShardUnavailable {
        /// Index of the dead shard among the actively serving shards
        /// (shards emptied by the hash split are skipped at build time).
        shard: usize,
        /// The shard's replica count — all of them are marked down.
        replicas: usize,
    },
    /// The serving runtime shed this request: the admission queue was at
    /// its configured depth when the request arrived, or the request
    /// aged past its deadline while queued. Shedding bounds queueing
    /// delay — under overload the runtime answers a subset of requests
    /// inside the SLO instead of answering all of them arbitrarily late.
    Overloaded {
        /// The configured admission-queue depth of the runtime that shed
        /// the request (the configured bound, not the instantaneous
        /// length, so the error is deterministic under test).
        queue_depth: usize,
        /// The per-request deadline the runtime enforces.
        deadline: Duration,
    },
    /// A snapshot file is unreadable or fails integrity validation:
    /// truncated, wrong magic, checksum mismatch, or internally
    /// inconsistent (counts pointing past the payload, backend state
    /// referencing out-of-range slots, ...). The decoder never panics on
    /// bad bytes — every malformed input surfaces here.
    SnapshotCorrupt {
        /// What the decoder rejected, for the operator's log line.
        detail: String,
    },
    /// A snapshot was written by an incompatible format version. The file
    /// is intact (magic and checksum verified) — it just postdates or
    /// predates this binary's codec.
    SnapshotVersion {
        /// The version recorded in the file header.
        found: u32,
        /// The version this binary reads and writes.
        supported: u32,
    },
}

impl RetrievalError {
    /// The topology-invariant view of the error: carried stats are
    /// reduced through [`RetrievalStats::logical`], other variants pass
    /// through unchanged. Pair with
    /// [`crate::RetrievalResponse::logical`] to compare full served
    /// results across deployment topologies.
    pub fn logical(self) -> Self {
        match self {
            RetrievalError::NoCoverage { query, stats } => RetrievalError::NoCoverage {
                query,
                stats: stats.logical(),
            },
            other => other,
        }
    }
}

impl fmt::Display for RetrievalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalError::InvalidConfig(reason) => {
                write!(f, "invalid retrieval configuration: {reason}")
            }
            RetrievalError::EmptyIndex { indices } => {
                write!(f, "index build produced empty ad indices ({indices}); the engine could never serve an ad")
            }
            RetrievalError::NoCoverage { query, stats } => {
                write!(
                    f,
                    "no coverage for query {query}: {} keys expanded, {} postings scanned, no ad reached",
                    stats.keys_expanded, stats.postings_scanned
                )
            }
            RetrievalError::DuplicateId { space, id } => {
                write!(
                    f,
                    "duplicate id {id} in {space}: index-build inputs must have unique ids per point set"
                )
            }
            RetrievalError::UnknownAd { ad } => {
                write!(
                    f,
                    "delta retires ad {ad}, which the current corpus does not contain"
                )
            }
            RetrievalError::ShardUnavailable { shard, replicas } => {
                write!(
                    f,
                    "shard {shard} is unavailable: all {replicas} serving replicas are marked down"
                )
            }
            RetrievalError::Overloaded {
                queue_depth,
                deadline,
            } => {
                write!(
                    f,
                    "serving runtime overloaded: admission queue at depth {queue_depth}, request shed against a {deadline:?} deadline"
                )
            }
            RetrievalError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot is corrupt: {detail}")
            }
            RetrievalError::SnapshotVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is unsupported (this binary reads version {supported})"
                )
            }
        }
    }
}

impl std::error::Error for RetrievalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        let e = RetrievalError::NoCoverage {
            query: 42,
            stats: RetrievalStats::default(),
        };
        assert!(e.to_string().contains("42"));
        let e = RetrievalError::InvalidConfig("top_k must be positive".into());
        assert!(e.to_string().contains("top_k"));
        let e = RetrievalError::EmptyIndex { indices: "q2a+i2a" };
        assert!(e.to_string().contains("q2a+i2a"));
        let e = RetrievalError::ShardUnavailable {
            shard: 3,
            replicas: 2,
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("2 serving replicas"));
        let e = RetrievalError::DuplicateId {
            space: "ads_qa",
            id: 207,
        };
        assert!(e.to_string().contains("207"));
        assert!(e.to_string().contains("ads_qa"));
        let e = RetrievalError::UnknownAd { ad: 9000 };
        assert!(e.to_string().contains("9000"));
        let e = RetrievalError::Overloaded {
            queue_depth: 128,
            deadline: Duration::from_millis(25),
        };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("25ms"));
        let e = RetrievalError::SnapshotCorrupt {
            detail: "payload checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum"));
        let e = RetrievalError::SnapshotVersion {
            found: 7,
            supported: 1,
        };
        assert!(e.to_string().contains("version 7"));
        assert!(e.to_string().contains("version 1"));
    }
}
