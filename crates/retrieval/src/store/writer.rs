//! Serialising a live deployment (or a standalone resident ANN backend)
//! into the on-disk format.
//!
//! The writer persists a [`ShardedDeltaBuilder`]'s full serving state:
//! manifest first, then the six Arc-shared key-side point sets and the
//! four key-side indices **once per deployment** (every shard's copies
//! are pointer-identical, so writing them per shard would multiply the
//! file by the shard count for identical bytes), then each shard's ad
//! slices and ad-side indices in shard order. Adless shards are written
//! too — their key indices are what lets a later delta repopulate them
//! after a restart.

use std::path::Path;

use amcad_mnn::AnnBackendState;

use crate::delta::ShardedDeltaBuilder;
use crate::error::RetrievalError;

use super::format::{
    encode_backend_state, encode_index, encode_point_set, seal, Encoder, MAGIC_BACKEND,
    MAGIC_SNAPSHOT,
};
use super::manifest::SnapshotManifest;

/// The sealed bytes of a deployment snapshot at `generation`.
pub(crate) fn snapshot_bytes(
    builder: &ShardedDeltaBuilder,
    generation: u64,
) -> Result<Vec<u8>, RetrievalError> {
    let manifest = SnapshotManifest::for_builder(builder, generation);
    let parts = builder.slot_parts();
    let mut enc = Encoder::new();
    manifest.encode(&mut enc);
    // key-side state once per deployment: every shard holds the same
    // Arc'd sets and builds identical key indices from them
    let Some((inputs, indexes)) = parts.first() else {
        return Err(RetrievalError::SnapshotCorrupt {
            detail: "deployment has zero shards, nothing to snapshot".to_string(),
        });
    };
    encode_point_set(&mut enc, &inputs.queries_qq);
    encode_point_set(&mut enc, &inputs.queries_qi);
    encode_point_set(&mut enc, &inputs.items_qi);
    encode_point_set(&mut enc, &inputs.queries_qa);
    encode_point_set(&mut enc, &inputs.items_ii);
    encode_point_set(&mut enc, &inputs.items_ia);
    encode_index(&mut enc, &indexes.q2q);
    encode_index(&mut enc, &indexes.q2i);
    encode_index(&mut enc, &indexes.i2q);
    encode_index(&mut enc, &indexes.i2i);
    // per-shard state in shard order: the ad slices and their indices
    for (inputs, indexes) in &parts {
        encode_point_set(&mut enc, &inputs.ads_qa);
        encode_point_set(&mut enc, &inputs.ads_ia);
        encode_index(&mut enc, &indexes.q2a);
        encode_index(&mut enc, &indexes.i2a);
    }
    Ok(seal(MAGIC_SNAPSHOT, enc.into_bytes()))
}

/// Write a deployment snapshot of `builder` at `generation` to `path`.
pub(crate) fn write_snapshot(
    path: &Path,
    builder: &ShardedDeltaBuilder,
    generation: u64,
) -> Result<(), RetrievalError> {
    std::fs::write(path, snapshot_bytes(builder, generation)?).map_err(|e| {
        RetrievalError::SnapshotCorrupt {
            detail: format!("cannot write {}: {e}", path.display()),
        }
    })
}

/// Persist a standalone resident ANN backend — an exported
/// [`AnnBackendState`] — in the same envelope (own magic, same version
/// and checksum discipline). The counterpart of
/// [`crate::store::load_backend_state`]: a restored backend searches,
/// and keeps inserting, exactly like the saved one.
pub fn save_backend_state(
    path: impl AsRef<Path>,
    state: &AnnBackendState,
) -> Result<(), RetrievalError> {
    let path = path.as_ref();
    let mut enc = Encoder::new();
    encode_backend_state(&mut enc, state);
    std::fs::write(path, seal(MAGIC_BACKEND, enc.into_bytes())).map_err(|e| {
        RetrievalError::SnapshotCorrupt {
            detail: format!("cannot write {}: {e}", path.display()),
        }
    })
}
