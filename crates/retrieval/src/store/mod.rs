//! Durable snapshot store: versioned on-disk persistence of the full
//! serving state, with generation-aware warm restart and delta catch-up.
//!
//! Everything the cluster serves is otherwise process-lifetime: a
//! restart at production corpus sizes means re-running the full
//! O(keys × ads) index build, which defeats the zero-downtime publish
//! machinery. This module makes restarts I/O-bound instead of
//! rebuild-bound:
//!
//! * [`format`](self) — a versioned, checksummed, little-endian binary
//!   envelope with hand-rolled encode/decode (the compat `serde` derive
//!   is a no-op stub; nothing here touches serde). `f64`s are stored as
//!   bit patterns, so distances reproduce bit-for-bit.
//! * [`SnapshotManifest`] — generation metadata plus the sharded
//!   deployment's shape, readable without decoding the index payload.
//! * writer/reader — persist a [`crate::ShardedDeltaBuilder`]'s full
//!   state: the Arc-shared key-side point sets and key-side indices
//!   **once per deployment**, each shard's ad slices and ad-side
//!   indices, and the topology + backend + retrieval configuration.
//!   Standalone resident ANN backends round-trip through the same
//!   envelope via [`save_backend_state`] / [`load_backend_state`] —
//!   including IVF's frozen quantisation and HNSW's links, levels and
//!   RNG state, so post-restart `insert`s stay deterministic.
//!
//! ## Lifecycle: save → restart → catch up
//!
//! ```no_run
//! use amcad_retrieval::{EngineHandle, ShardedDeltaBuilder, ShardedEngine};
//! # fn deltas_since(g: u64) -> Vec<amcad_retrieval::IndexDelta> { vec![] }
//! # let inputs = unimplemented!();
//! let mut builder = ShardedDeltaBuilder::new(&inputs, ShardedEngine::builder().shards(4))?;
//! let handle = EngineHandle::new(builder.engine()?);
//! // ... serve, publish deltas ... then persist the current generation:
//! let generation = handle.save_snapshot(&builder, "/var/amcad/serving.snap")?;
//!
//! // after a crash or planned restart — no index rebuild:
//! let (handle, mut builder) = EngineHandle::load("/var/amcad/serving.snap")?;
//! assert_eq!(handle.generation(), generation);
//! for delta in deltas_since(generation) {
//!     handle.publish_delta(&mut builder, &delta)?; // catch up
//! }
//! # Ok::<(), amcad_retrieval::RetrievalError>(())
//! ```
//!
//! The restarted process is **byte-identical** to one that never
//! restarted: rankings, logical stats and generation numbers alike,
//! property-tested across all four ANN backends and shard counts
//! 1 / 2 / 4 in this module's test suite. Corrupt files — truncated,
//! bit-flipped, wrong magic — surface as the typed
//! [`crate::RetrievalError::SnapshotCorrupt`] /
//! [`crate::RetrievalError::SnapshotVersion`] errors, never as panics.

mod format;
mod manifest;
mod reader;
mod writer;

pub use format::FORMAT_VERSION;
pub use manifest::SnapshotManifest;
pub use reader::load_backend_state;
pub use writer::save_backend_state;

pub(crate) use reader::read_snapshot;
pub(crate) use writer::write_snapshot;

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::Arc;

    use amcad_mnn::{AnnIndex, HnswBackend, HnswConfig, IndexBackend, IvfConfig, QuantConfig};

    use super::*;
    use crate::engine::{Request, RetrievalResponse};
    use crate::error::RetrievalError;
    use crate::test_fixtures::{random_points, tiny_inputs};
    use crate::{
        EngineHandle, IndexDelta, Retrieve, ShardedDeltaBuilder, ShardedEngine,
        ShardedEngineBuilder,
    };

    /// A scratch file that cleans up after itself (no tempfile crate).
    struct TmpFile(PathBuf);

    impl TmpFile {
        fn new(name: &str) -> Self {
            TmpFile(
                std::env::temp_dir()
                    .join(format!("amcad-store-{}-{name}.snap", std::process::id())),
            )
        }

        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }

    impl Drop for TmpFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// All four backends, deliberately *not* at their exact-equivalent
    /// saturation points: restart parity must hold for genuinely
    /// approximate configurations too, because the restarted process
    /// re-runs the same deterministic computation on the same state.
    fn backends() -> [IndexBackend; 4] {
        [
            IndexBackend::Exact,
            IndexBackend::Ivf(IvfConfig {
                num_clusters: 4,
                kmeans_iters: 3,
                nprobe: 2,
                seed: 7,
            }),
            IndexBackend::Hnsw(HnswConfig {
                m: 4,
                ef_construction: 12,
                ef_search: 8,
                seed: 3,
            }),
            IndexBackend::Quant(QuantConfig {
                ksub: 8,
                train_iters: 4,
                rerank_k: 10,
                seed: 5,
            }),
        ]
    }

    fn make_delta(ids: std::ops::Range<u32>, seed: u64, retired: Vec<u32>) -> IndexDelta {
        IndexDelta {
            added_ads_qa: random_points(ids.clone(), seed),
            added_ads_ia: random_points(ids, seed + 1),
            retired_ads: retired,
        }
    }

    fn requests() -> Vec<Request> {
        (0..10u32)
            .map(|q| Request {
                query: q,
                preclick_items: vec![100 + q, 110 + q],
            })
            .collect()
    }

    fn serve_all(engine: &dyn Retrieve) -> Vec<Result<RetrievalResponse, RetrievalError>> {
        requests().iter().map(|r| engine.retrieve(r)).collect()
    }

    /// The acceptance-criterion property: a sharded deployment saved to
    /// disk, reloaded in fresh process state, and caught up via the
    /// deltas published after the snapshot serves **byte-identically**
    /// to the never-restarted deployment — rankings, full stats and
    /// generation numbers — across all three backends and shard counts
    /// 1 / 2 / 4.
    #[test]
    fn warm_restart_plus_delta_catch_up_is_byte_identical_to_never_restarting() {
        for backend in backends() {
            for shards in [1usize, 2, 4] {
                let file = TmpFile::new(&format!("restart-{}-{shards}", backend.label()));
                let topology = ShardedEngine::builder()
                    .shards(shards)
                    .top_k(6)
                    .threads(1)
                    .build_threads(1)
                    .backend(backend);
                let mut live = ShardedDeltaBuilder::new(&tiny_inputs(), topology).unwrap();
                let handle = EngineHandle::new(live.engine().unwrap());
                // generations 2 and 3: corpus churn before the snapshot
                handle
                    .publish_delta(&mut live, &make_delta(300..305, 11, vec![200, 207]))
                    .unwrap();
                handle
                    .publish_delta(&mut live, &make_delta(310..313, 21, vec![301, 215]))
                    .unwrap();
                let saved = handle.save_snapshot(&live, file.path()).unwrap();
                assert_eq!(saved, 3, "snapshot records the current generation");
                // generations 4 and 5: the deltas a restarted process
                // must catch up on (one exercises the retire backfill)
                let catch_up = [
                    make_delta(320..326, 31, vec![304, 210]),
                    make_delta(330..332, 41, vec![320, 202, 219]),
                ];
                for delta in &catch_up {
                    handle.publish_delta(&mut live, delta).unwrap();
                }
                // the restarted process: fresh state from disk + replay
                let (restarted, mut rebuilt) = EngineHandle::load(file.path()).unwrap();
                assert_eq!(
                    restarted.generation(),
                    saved,
                    "the restored handle resumes at the snapshot generation"
                );
                for delta in &catch_up {
                    restarted.publish_delta(&mut rebuilt, delta).unwrap();
                }
                assert_eq!(restarted.generation(), handle.generation());
                assert_eq!(
                    serve_all(&restarted),
                    serve_all(&handle),
                    "{} backend, {shards} shards: restart diverged",
                    backend.label()
                );
                // and the rebuilt builder keeps tracking: one more delta
                // applied to both sides stays identical
                let more = make_delta(340..343, 51, vec![330]);
                handle.publish_delta(&mut live, &more).unwrap();
                restarted.publish_delta(&mut rebuilt, &more).unwrap();
                assert_eq!(serve_all(&restarted), serve_all(&handle));
            }
        }
    }

    /// Crash-recovery flavour: snapshot at generation G, lose the
    /// process, reload, apply deltas G+1..G+k — the recovered engine
    /// serves exactly what a process that never crashed would, and a
    /// cold [`ShardedEngineBuilder::from_snapshot`] start (no delta
    /// tracking) matches the snapshot-time engine.
    #[test]
    fn cold_start_from_snapshot_serves_the_snapshot_generation_exactly() {
        let file = TmpFile::new("cold-start");
        let topology = ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .top_k(8)
            .threads(1)
            .build_threads(1);
        let mut live = ShardedDeltaBuilder::new(&tiny_inputs(), topology).unwrap();
        let handle = EngineHandle::new(live.engine().unwrap());
        handle
            .publish_delta(&mut live, &make_delta(400..404, 9, vec![211]))
            .unwrap();
        let before = serve_all(&handle);
        handle.save_snapshot(&live, file.path()).unwrap();
        let cold = ShardedEngineBuilder::from_snapshot(file.path()).unwrap();
        assert_eq!(cold.num_shards(), 2);
        assert_eq!(cold.replicas(), 2);
        assert_eq!(serve_all(&cold), before);
    }

    /// The reader must re-establish the Arc sharing the writer
    /// collapsed: key-side point sets and key-side indices are decoded
    /// once and shared by every reconstructed shard, not duplicated per
    /// shard.
    #[test]
    fn reload_shares_key_side_state_across_shards_instead_of_duplicating_it() {
        let file = TmpFile::new("arc-sharing");
        let live = ShardedDeltaBuilder::new(
            &tiny_inputs(),
            ShardedEngine::builder().shards(4).top_k(6).threads(1),
        )
        .unwrap();
        let handle = EngineHandle::new(live.engine().unwrap());
        handle.save_snapshot(&live, file.path()).unwrap();
        let (_, rebuilt) = EngineHandle::load(file.path()).unwrap();
        let parts = rebuilt.slot_parts();
        assert_eq!(parts.len(), 4);
        let (first_inputs, first_indexes) = &parts[0];
        for (inputs, indexes) in &parts[1..] {
            assert!(Arc::ptr_eq(&inputs.queries_qq, &first_inputs.queries_qq));
            assert!(Arc::ptr_eq(&inputs.queries_qa, &first_inputs.queries_qa));
            assert!(Arc::ptr_eq(&inputs.items_ia, &first_inputs.items_ia));
            assert!(Arc::ptr_eq(&indexes.q2q, &first_indexes.q2q));
            assert!(Arc::ptr_eq(&indexes.i2i, &first_indexes.i2i));
        }
    }

    #[test]
    fn the_manifest_describes_the_deployment_without_decoding_indices() {
        let file = TmpFile::new("manifest");
        let mut live = ShardedDeltaBuilder::new(
            &tiny_inputs(),
            ShardedEngine::builder()
                .shards(4)
                .replicas(3)
                .top_k(6)
                .threads(1),
        )
        .unwrap();
        let handle = EngineHandle::new(live.engine().unwrap());
        handle
            .publish_delta(&mut live, &make_delta(500..503, 5, vec![204]))
            .unwrap();
        handle.save_snapshot(&live, file.path()).unwrap();
        let manifest = SnapshotManifest::read(file.path()).unwrap();
        assert_eq!(manifest.format_version, FORMAT_VERSION);
        assert_eq!(manifest.generation, 2);
        assert_eq!(manifest.shards, 4);
        assert_eq!(manifest.replicas, 3);
        assert_eq!(manifest.backend(), "exact");
        assert_eq!(manifest.queries, 10);
        assert_eq!(manifest.items, 40);
        // 20 seed ads - 1 retired + 3 added, spread over the shards
        assert_eq!(manifest.total_ads(), 22);
        assert_eq!(manifest.ads_per_shard.len(), 4);
    }

    /// Decoder safety through the public entry points: truncated files,
    /// bit flips, foreign magic and foreign versions all surface as the
    /// typed snapshot errors — never as a panic.
    #[test]
    fn corrupt_snapshot_files_yield_typed_errors_never_panics() {
        let file = TmpFile::new("corrupt");
        let live = ShardedDeltaBuilder::new(
            &tiny_inputs(),
            ShardedEngine::builder().shards(2).top_k(6).threads(1),
        )
        .unwrap();
        let handle = EngineHandle::new(live.engine().unwrap());
        handle.save_snapshot(&live, file.path()).unwrap();
        let good = std::fs::read(file.path()).unwrap();

        let expect_corrupt = |bytes: &[u8], what: &str| {
            std::fs::write(file.path(), bytes).unwrap();
            for err in [
                EngineHandle::load(file.path()).unwrap_err(),
                ShardedEngineBuilder::from_snapshot(file.path()).unwrap_err(),
                SnapshotManifest::read(file.path()).unwrap_err(),
            ] {
                assert!(
                    matches!(
                        err,
                        RetrievalError::SnapshotCorrupt { .. }
                            | RetrievalError::SnapshotVersion { .. }
                    ),
                    "{what}: expected a typed snapshot error, got {err}"
                );
            }
        };

        // truncation at a spread of cut points, including mid-envelope
        for cut in [0, 7, 19, good.len() / 3, good.len() / 2, good.len() - 1] {
            expect_corrupt(&good[..cut], "truncated");
        }
        // single bit flips across the payload break the checksum
        for byte in [24, good.len() / 2, good.len() - 9] {
            let mut flipped = good.clone();
            flipped[byte] ^= 0x10;
            expect_corrupt(&flipped, "bit-flipped");
        }
        // wrong magic
        let mut foreign = good.clone();
        foreign[..8].copy_from_slice(b"NOTASNAP");
        expect_corrupt(&foreign, "wrong magic");
        // future format version (intact otherwise) is its own error
        let mut future = good.clone();
        future[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(file.path(), &future).unwrap();
        assert_eq!(
            EngineHandle::load(file.path()).unwrap_err(),
            RetrievalError::SnapshotVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
        // a missing file is reported, not panicked on
        let gone = TmpFile::new("never-written");
        assert!(matches!(
            EngineHandle::load(gone.path()).unwrap_err(),
            RetrievalError::SnapshotCorrupt { .. }
        ));
        // and the intact bytes still load after all that abuse
        std::fs::write(file.path(), &good).unwrap();
        assert!(EngineHandle::load(file.path()).is_ok());
    }

    /// Standalone resident backends round-trip through their own file
    /// envelope, and — the HNSW case — keep inserting deterministically
    /// after the reload because the RNG state travelled with the graph.
    #[test]
    fn resident_backend_state_files_round_trip_and_resume_inserts() {
        let file = TmpFile::new("backend-state");
        let base = random_points(0..30, 13);
        let keys = random_points(500..510, 14);
        let config = HnswConfig {
            m: 5,
            ef_construction: 16,
            ef_search: 10,
            seed: 99,
        };
        let mut live = HnswBackend::new(base.clone(), config);
        save_backend_state(file.path(), &live.export_state()).unwrap();
        let mut revived = load_backend_state(file.path()).unwrap().instantiate();
        assert_eq!(revived.len(), live.len());
        // post-reload inserts extend both graphs identically: the level
        // RNG resumed mid-stream instead of restarting from the seed
        let growth = random_points(30..42, 13);
        assert!(revived.insert(&growth));
        assert!(live.insert(&growth));
        for i in 0..keys.len() {
            assert_eq!(
                revived.search(keys.point(i), keys.weight(i), 5, None),
                live.search(keys.point(i), keys.weight(i), 5, None),
                "post-reload insert diverged at key {i}"
            );
        }
        // a backend-state file is not a deployment snapshot (and vice
        // versa): the magic check keeps the two apart
        assert!(matches!(
            EngineHandle::load(file.path()).unwrap_err(),
            RetrievalError::SnapshotCorrupt { .. }
        ));

        // the quant case: codebooks and code lanes travel with the file,
        // so post-reload inserts encode against the same frozen codebooks
        let quant_file = TmpFile::new("quant-backend-state");
        let mut quant_live = amcad_mnn::QuantBackend::new(
            base,
            QuantConfig {
                ksub: 8,
                train_iters: 4,
                rerank_k: 12, // partial rerank: the lanes themselves must match
                seed: 31,
            },
        );
        save_backend_state(quant_file.path(), &quant_live.export_state()).unwrap();
        let mut quant_revived = load_backend_state(quant_file.path()).unwrap().instantiate();
        let growth = random_points(30..42, 13);
        assert!(quant_revived.insert(&growth));
        assert!(quant_live.insert(&growth));
        for i in 0..keys.len() {
            assert_eq!(
                quant_revived.search(keys.point(i), keys.weight(i), 5, None),
                quant_live.search(keys.point(i), keys.weight(i), 5, None),
                "post-reload quant insert diverged at key {i}"
            );
        }
    }
}
