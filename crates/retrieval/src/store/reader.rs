//! Reconstructing a deployment (or a standalone resident ANN backend)
//! from snapshot bytes.
//!
//! The reader is the warm-restart path: it decodes the key-side state
//! once, re-establishes the [`Arc`] sharing the writer collapsed (every
//! reconstructed shard's key sets and key indices point at the *same*
//! allocations, exactly like a fresh [`crate::shard::shard_inputs`]
//! split would arrange), and hands the per-shard parts to
//! [`ShardedDeltaBuilder::from_slot_parts`] — which only re-wraps the
//! decoded indices in serving engines, skipping the O(keys × ads)
//! neighbour build entirely. That skip is what makes a restart I/O-bound
//! instead of rebuild-bound.

use std::path::Path;
use std::sync::Arc;

use amcad_mnn::AnnBackendState;

use crate::delta::ShardedDeltaBuilder;
use crate::error::RetrievalError;
use crate::index_set::{IndexBuildInputs, IndexSet};
use crate::shard::{ad_shard, ShardedEngineBuilder};

use super::format::{
    decode_backend_state, decode_index, decode_point_set, unseal, Decoder, MAGIC_BACKEND,
    MAGIC_SNAPSHOT,
};
use super::manifest::SnapshotManifest;

fn read_file(path: &Path) -> Result<Vec<u8>, RetrievalError> {
    std::fs::read(path).map_err(|e| RetrievalError::SnapshotCorrupt {
        detail: format!("cannot read {}: {e}", path.display()),
    })
}

/// Read a deployment snapshot: the generation it was taken at plus the
/// reconstructed [`ShardedDeltaBuilder`], ready to serve and to apply
/// newer deltas.
pub(crate) fn read_snapshot(path: &Path) -> Result<(u64, ShardedDeltaBuilder), RetrievalError> {
    decode_snapshot(&read_file(path)?)
}

/// Decode a full deployment snapshot from sealed bytes.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<(u64, ShardedDeltaBuilder), RetrievalError> {
    let payload = unseal(MAGIC_SNAPSHOT, bytes)?;
    let mut dec = Decoder::new(payload);
    let manifest = SnapshotManifest::decode(&mut dec)?;
    // key-side state, decoded once and Arc-shared across every shard
    let queries_qq = Arc::new(decode_point_set(&mut dec)?);
    let queries_qi = Arc::new(decode_point_set(&mut dec)?);
    let items_qi = Arc::new(decode_point_set(&mut dec)?);
    let queries_qa = Arc::new(decode_point_set(&mut dec)?);
    let items_ii = Arc::new(decode_point_set(&mut dec)?);
    let items_ia = Arc::new(decode_point_set(&mut dec)?);
    let q2q = Arc::new(decode_index(&mut dec)?);
    let q2i = Arc::new(decode_index(&mut dec)?);
    let i2q = Arc::new(decode_index(&mut dec)?);
    let i2i = Arc::new(decode_index(&mut dec)?);
    let mut parts: Vec<(IndexBuildInputs, IndexSet)> = Vec::with_capacity(manifest.shards);
    for s in 0..manifest.shards {
        let ads_qa = decode_point_set(&mut dec)?;
        let ads_ia = decode_point_set(&mut dec)?;
        let q2a = decode_index(&mut dec)?;
        let i2a = decode_index(&mut dec)?;
        // placement integrity: every ad of this slice must hash to this
        // shard, or later deltas would route updates to the wrong slot
        for &ad in ads_qa.ids().iter().chain(ads_ia.ids()) {
            let home = ad_shard(ad, manifest.shards);
            if home != s {
                return Err(RetrievalError::SnapshotCorrupt {
                    detail: format!(
                        "ad {ad} is stored on shard {s} but hashes to shard {home} of {}",
                        manifest.shards
                    ),
                });
            }
        }
        let recorded = manifest.ads_per_shard.get(s).copied().ok_or_else(|| {
            RetrievalError::SnapshotCorrupt {
                detail: format!(
                    "manifest records {} per-shard ad counts but declares {} shards",
                    manifest.ads_per_shard.len(),
                    manifest.shards
                ),
            }
        })?;
        if ads_qa.len() != recorded {
            return Err(RetrievalError::SnapshotCorrupt {
                detail: format!(
                    "shard {s} holds {} ads but the manifest recorded {recorded}",
                    ads_qa.len(),
                ),
            });
        }
        let inputs = IndexBuildInputs {
            queries_qq: Arc::clone(&queries_qq),
            queries_qi: Arc::clone(&queries_qi),
            items_qi: Arc::clone(&items_qi),
            queries_qa: Arc::clone(&queries_qa),
            ads_qa,
            items_ii: Arc::clone(&items_ii),
            items_ia: Arc::clone(&items_ia),
            ads_ia,
        };
        let indexes = IndexSet {
            q2q: Arc::clone(&q2q),
            q2i: Arc::clone(&q2i),
            i2q: Arc::clone(&i2q),
            i2i: Arc::clone(&i2i),
            q2a,
            i2a,
        };
        parts.push((inputs, indexes));
    }
    dec.finish()?;
    let topology = ShardedEngineBuilder::default()
        .shards(manifest.shards)
        .replicas(manifest.replicas)
        .build_threads(manifest.build_threads)
        .fanout_threads(manifest.fanout_threads)
        .index(manifest.index)
        .retrieval(manifest.retrieval);
    let builder = ShardedDeltaBuilder::from_slot_parts(topology, parts)?;
    Ok((manifest.generation, builder))
}

/// Load a standalone resident ANN backend persisted by
/// [`crate::store::save_backend_state`]. All structural invariants
/// (entry points, link targets, cluster membership) are validated during
/// decoding, so a corrupt file surfaces as a typed error — the returned
/// state instantiates without panicking.
pub fn load_backend_state(path: impl AsRef<Path>) -> Result<AnnBackendState, RetrievalError> {
    let bytes = read_file(path.as_ref())?;
    let payload = unseal(MAGIC_BACKEND, &bytes)?;
    let mut dec = Decoder::new(payload);
    let state = decode_backend_state(&mut dec)?;
    dec.finish()?;
    Ok(state)
}
