//! The on-disk byte format: a versioned, checksummed little-endian
//! envelope plus hand-rolled codecs for every persisted structure.
//!
//! The compat `serde` derive is a no-op stub, so nothing here goes
//! through serde — the codec is written out by hand, which also pins the
//! byte layout explicitly (field order is the format, not an
//! implementation detail) and keeps decode allocation bounded by the
//! actual file size.
//!
//! ## Envelope
//!
//! ```text
//! magic      8 bytes   b"AMCADSNP" (deployment) / b"AMCADANN" (backend)
//! version    u32 LE    FORMAT_VERSION
//! length     u64 LE    payload byte count
//! payload    length bytes
//! checksum   u64 LE    FNV-1a 64 over the payload
//! ```
//!
//! Multi-byte integers are little-endian throughout; `f64`s are stored
//! as their IEEE-754 bit pattern ([`f64::to_bits`]), so NaN payloads and
//! signed zeros survive a round trip bit-for-bit — a requirement for the
//! byte-identical warm-restart guarantee, since distances are
//! deterministic functions of the stored bits.
//!
//! ## Decoder safety
//!
//! Every read is bounds-checked and every claimed element count is
//! validated against the bytes actually remaining before anything is
//! allocated, so truncated, bit-flipped or adversarial inputs surface as
//! [`RetrievalError::SnapshotCorrupt`] — never as a panic or an
//! unbounded allocation. Structures with internal invariants (manifold
//! shape, HNSW link targets, IVF cluster membership) are validated here,
//! before the constructors that `assert!` those invariants ever run.

use amcad_manifold::{ProductManifold, SubspaceSpec};
use amcad_mnn::quant::codebook::MAX_SUB_CENTROIDS;
use amcad_mnn::{
    AnnBackendState, HnswConfig, HnswState, IndexBackend, InvertedIndex, IvfConfig, IvfState,
    MixedPointSet, Postings, QuantConfig, QuantState,
};

use crate::error::RetrievalError;
use crate::index_set::IndexBuildConfig;
use crate::retriever::RetrievalConfig;

/// Magic prefix of a deployment snapshot file.
pub(crate) const MAGIC_SNAPSHOT: &[u8; 8] = b"AMCADSNP";
/// Magic prefix of a standalone backend-state file.
pub(crate) const MAGIC_BACKEND: &[u8; 8] = b"AMCADANN";
/// The one format version this binary reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Envelope overhead: magic + version + length + checksum.
const ENVELOPE_BYTES: usize = 8 + 4 + 8 + 8;

/// Sanity cap on decoded thread-pool widths: a corrupt (but
/// checksum-colliding) or hostile file must not make the loader spawn an
/// absurd number of OS threads.
const MAX_THREADS: usize = 1024;
/// Sanity cap on decoded shard / replica counts, same reasoning.
const MAX_SHARDS: usize = 65_536;

/// FNV-1a 64 over `bytes` — small, dependency-free, and plenty to catch
/// truncation and bit flips (integrity, not authentication).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn corrupt(detail: impl Into<String>) -> RetrievalError {
    RetrievalError::SnapshotCorrupt {
        detail: detail.into(),
    }
}

/// Wrap `payload` in the envelope: magic, version, length, checksum.
pub(crate) fn seal(magic: &[u8; 8], payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE_BYTES + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let checksum = fnv1a64(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verify the envelope of `bytes` and return the payload slice. Checks
/// in order: minimum length, magic, version (intact files of a foreign
/// version report [`RetrievalError::SnapshotVersion`], not corruption),
/// declared length, checksum.
pub(crate) fn unseal<'a>(magic: &[u8; 8], bytes: &'a [u8]) -> Result<&'a [u8], RetrievalError> {
    let truncated = || {
        corrupt(format!(
            "file is {} bytes, shorter than the {ENVELOPE_BYTES}-byte envelope (truncated?)",
            bytes.len()
        ))
    };
    if bytes.len() < ENVELOPE_BYTES {
        return Err(truncated());
    }
    let found_magic = bytes.get(..8).ok_or_else(truncated)?;
    if found_magic != magic {
        return Err(corrupt(format!(
            "bad magic {found_magic:02x?} (expected {magic:02x?})"
        )));
    }
    let version = u32::from_le_bytes(array_at(bytes, 8, "format version")?);
    if version != FORMAT_VERSION {
        return Err(RetrievalError::SnapshotVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let declared = u64::from_le_bytes(array_at(bytes, 12, "payload length")?);
    let actual = (bytes.len() - ENVELOPE_BYTES) as u64;
    if declared != actual {
        return Err(corrupt(format!(
            "declared payload length {declared} but {actual} bytes present (truncated?)"
        )));
    }
    let payload = bytes.get(20..bytes.len() - 8).ok_or_else(truncated)?;
    let stored = u64::from_le_bytes(array_at(bytes, bytes.len() - 8, "envelope checksum")?);
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(corrupt(format!(
            "payload checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    Ok(payload)
}

/// The `N` bytes at `offset` as a fixed-size array — `Err` instead of a
/// panic when the file is shorter than the envelope layout promises.
fn array_at<const N: usize>(
    bytes: &[u8],
    offset: usize,
    what: &str,
) -> Result<[u8; N], RetrievalError> {
    offset
        .checked_add(N)
        .and_then(|end| bytes.get(offset..end))
        .and_then(|slice| <[u8; N]>::try_from(slice).ok())
        .ok_or_else(|| {
            corrupt(format!(
                "truncated envelope: {what} needs {N} bytes at offset {offset}"
            ))
        })
}

/// Append-only little-endian byte sink the writer serialises into.
#[derive(Default)]
pub(crate) struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub(crate) fn new() -> Self {
        Encoder::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Bit-pattern encoding: NaNs and signed zeros round-trip exactly.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Bounds-checked little-endian reader over an untrusted payload. Every
/// failure carries the byte offset, so a corrupt file's error message
/// localises the damage.
pub(crate) struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error when decodable bytes remain — a payload must be consumed
    /// exactly, trailing garbage is corruption.
    pub(crate) fn finish(self) -> Result<(), RetrievalError> {
        if self.remaining() != 0 {
            return Err(corrupt(format!(
                "{} unconsumed bytes after the last decoded structure",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], RetrievalError> {
        let bytes: &'a [u8] = self.bytes;
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| bytes.get(self.pos..end));
        let Some(slice) = slice else {
            return Err(corrupt(format!(
                "truncated payload: {what} needs {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        };
        self.pos += n;
        Ok(slice)
    }

    /// The next `N` bytes as a fixed-size array — the panic-free form of
    /// `take(N)?.try_into().unwrap()`.
    fn array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], RetrievalError> {
        let slice = self.take(N, what)?;
        <[u8; N]>::try_from(slice).map_err(|_| corrupt(format!("{what}: short read of {N} bytes")))
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8, RetrievalError> {
        let [byte] = self.array::<1>(what)?;
        Ok(byte)
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32, RetrievalError> {
        Ok(u32::from_le_bytes(self.array(what)?))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64, RetrievalError> {
        Ok(u64::from_le_bytes(self.array(what)?))
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64, RetrievalError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `usize` field with an explicit sanity cap (thread counts, shard
    /// counts — knobs where a huge decoded value would have side effects
    /// beyond allocation).
    pub(crate) fn usize_capped(&mut self, cap: usize, what: &str) -> Result<usize, RetrievalError> {
        let v = self.u64(what)?;
        if v > cap as u64 {
            return Err(corrupt(format!(
                "{what} is {v}, above the sanity cap {cap}"
            )));
        }
        Ok(v as usize)
    }

    /// An element count that prefixes `elem_bytes`-wide elements: valid
    /// only if the remaining payload can actually hold that many, which
    /// bounds any subsequent allocation by the file size.
    pub(crate) fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, RetrievalError> {
        let n = self.u64(what)?;
        let need = n.checked_mul(elem_bytes.max(1) as u64);
        match need {
            Some(need) if need <= self.remaining() as u64 => Ok(n as usize),
            _ => Err(corrupt(format!(
                "{what} claims {n} elements (x {elem_bytes} bytes) but only {} payload bytes remain",
                self.remaining()
            ))),
        }
    }
}

// ---------------------------------------------------------------------
// Point sets and manifolds
// ---------------------------------------------------------------------

pub(crate) fn encode_manifold(enc: &mut Encoder, manifold: &ProductManifold) {
    enc.usize(manifold.subspaces().len());
    for spec in manifold.subspaces() {
        enc.usize(spec.dim);
        enc.f64(spec.kappa);
    }
}

pub(crate) fn decode_manifold(dec: &mut Decoder<'_>) -> Result<ProductManifold, RetrievalError> {
    // 16 bytes per subspace: dim + kappa
    let n = dec.count(16, "manifold subspace count")?;
    if n == 0 {
        return Err(corrupt("manifold has zero subspaces"));
    }
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        let dim = dec.usize_capped(u32::MAX as usize, "subspace dimension")?;
        let kappa = dec.f64("subspace curvature")?;
        if dim == 0 {
            return Err(corrupt("subspace has zero dimensions"));
        }
        if !kappa.is_finite() {
            return Err(corrupt(format!("subspace curvature {kappa} is not finite")));
        }
        specs.push(SubspaceSpec::new(dim, kappa));
    }
    Ok(ProductManifold::new(specs))
}

pub(crate) fn encode_point_set(enc: &mut Encoder, set: &MixedPointSet) {
    encode_manifold(enc, set.manifold());
    enc.usize(set.len());
    for i in 0..set.len() {
        enc.u32(set.id(i));
        for &x in set.point(i) {
            enc.f64(x);
        }
        for &w in set.weight(i) {
            enc.f64(w);
        }
    }
}

pub(crate) fn decode_point_set(dec: &mut Decoder<'_>) -> Result<MixedPointSet, RetrievalError> {
    let manifold = decode_manifold(dec)?;
    let dim = manifold.total_dim();
    let subspaces = manifold.num_subspaces();
    // bytes per point: id + coordinates + per-subspace weights
    let per_point = 4usize
        .saturating_add(dim.saturating_mul(8))
        .saturating_add(subspaces.saturating_mul(8));
    let n = dec.count(per_point, "point count")?;
    let mut set = MixedPointSet::new(manifold);
    let mut point = vec![0.0f64; dim];
    let mut weight = vec![0.0f64; subspaces];
    for _ in 0..n {
        let id = dec.u32("point id")?;
        for x in point.iter_mut() {
            *x = dec.f64("point coordinate")?;
        }
        for w in weight.iter_mut() {
            *w = dec.f64("point weight")?;
        }
        set.push(id, &point, &weight);
    }
    Ok(set)
}

// ---------------------------------------------------------------------
// Inverted indices
// ---------------------------------------------------------------------

/// Keys are written in sorted order: the underlying map iterates
/// nondeterministically, and a canonical byte layout keeps snapshots of
/// identical indices byte-identical (and diffable).
pub(crate) fn encode_index(enc: &mut Encoder, index: &InvertedIndex) {
    let mut entries: Vec<(u32, &Postings)> = index.iter().map(|(key, list)| (*key, list)).collect();
    entries.sort_unstable_by_key(|&(key, _)| key);
    enc.usize(entries.len());
    for (key, postings) in entries {
        enc.u32(key);
        enc.usize(postings.len());
        for &(id, dist) in postings {
            enc.u32(id);
            enc.f64(dist);
        }
    }
}

pub(crate) fn decode_index(dec: &mut Decoder<'_>) -> Result<InvertedIndex, RetrievalError> {
    // minimum bytes per key: key id + posting count (an empty list)
    let n = dec.count(12, "inverted-index key count")?;
    let mut index = InvertedIndex::default();
    for _ in 0..n {
        let key = dec.u32("posting-list key")?;
        let len = dec.count(12, "posting-list length")?;
        let mut postings: Postings = Vec::with_capacity(len);
        for _ in 0..len {
            let id = dec.u32("posting candidate id")?;
            let dist = dec.f64("posting distance")?;
            postings.push((id, dist));
        }
        index.insert(key, postings);
    }
    Ok(index)
}

// ---------------------------------------------------------------------
// Backend configurations and resident backend state
// ---------------------------------------------------------------------

const BACKEND_EXACT: u8 = 0;
const BACKEND_IVF: u8 = 1;
const BACKEND_HNSW: u8 = 2;
const BACKEND_QUANT: u8 = 3;

fn encode_ivf_config(enc: &mut Encoder, config: &IvfConfig) {
    enc.usize(config.num_clusters);
    enc.usize(config.kmeans_iters);
    enc.usize(config.nprobe);
    enc.u64(config.seed);
}

fn decode_ivf_config(dec: &mut Decoder<'_>) -> Result<IvfConfig, RetrievalError> {
    Ok(IvfConfig {
        num_clusters: dec.usize_capped(u32::MAX as usize, "ivf num_clusters")?,
        kmeans_iters: dec.usize_capped(u32::MAX as usize, "ivf kmeans_iters")?,
        nprobe: dec.usize_capped(u32::MAX as usize, "ivf nprobe")?,
        seed: dec.u64("ivf seed")?,
    })
}

fn encode_hnsw_config(enc: &mut Encoder, config: &HnswConfig) {
    enc.usize(config.m);
    enc.usize(config.ef_construction);
    enc.usize(config.ef_search);
    enc.u64(config.seed);
}

fn decode_hnsw_config(dec: &mut Decoder<'_>) -> Result<HnswConfig, RetrievalError> {
    Ok(HnswConfig {
        m: dec.usize_capped(u32::MAX as usize, "hnsw m")?,
        ef_construction: dec.usize_capped(u32::MAX as usize, "hnsw ef_construction")?,
        ef_search: dec.usize_capped(u32::MAX as usize, "hnsw ef_search")?,
        seed: dec.u64("hnsw seed")?,
    })
}

fn encode_quant_config(enc: &mut Encoder, config: &QuantConfig) {
    enc.usize(config.ksub);
    enc.usize(config.train_iters);
    enc.usize(config.rerank_k);
    enc.u64(config.seed);
}

fn decode_quant_config(dec: &mut Decoder<'_>) -> Result<QuantConfig, RetrievalError> {
    Ok(QuantConfig {
        ksub: dec.usize_capped(u32::MAX as usize, "quant ksub")?,
        train_iters: dec.usize_capped(u32::MAX as usize, "quant train_iters")?,
        rerank_k: dec.usize_capped(u32::MAX as usize, "quant rerank_k")?,
        seed: dec.u64("quant seed")?,
    })
}

pub(crate) fn encode_index_backend(enc: &mut Encoder, backend: &IndexBackend) {
    match backend {
        IndexBackend::Exact => enc.u8(BACKEND_EXACT),
        IndexBackend::Ivf(config) => {
            enc.u8(BACKEND_IVF);
            encode_ivf_config(enc, config);
        }
        IndexBackend::Hnsw(config) => {
            enc.u8(BACKEND_HNSW);
            encode_hnsw_config(enc, config);
        }
        IndexBackend::Quant(config) => {
            enc.u8(BACKEND_QUANT);
            encode_quant_config(enc, config);
        }
    }
}

pub(crate) fn decode_index_backend(dec: &mut Decoder<'_>) -> Result<IndexBackend, RetrievalError> {
    match dec.u8("backend tag")? {
        BACKEND_EXACT => Ok(IndexBackend::Exact),
        BACKEND_IVF => Ok(IndexBackend::Ivf(decode_ivf_config(dec)?)),
        BACKEND_HNSW => Ok(IndexBackend::Hnsw(decode_hnsw_config(dec)?)),
        BACKEND_QUANT => Ok(IndexBackend::Quant(decode_quant_config(dec)?)),
        tag => Err(corrupt(format!("unknown backend tag {tag}"))),
    }
}

pub(crate) fn encode_index_build_config(enc: &mut Encoder, config: &IndexBuildConfig) {
    enc.usize(config.top_k);
    enc.usize(config.threads);
    encode_index_backend(enc, &config.backend);
}

pub(crate) fn decode_index_build_config(
    dec: &mut Decoder<'_>,
) -> Result<IndexBuildConfig, RetrievalError> {
    Ok(IndexBuildConfig {
        top_k: dec.usize_capped(u32::MAX as usize, "index top_k")?,
        threads: dec.usize_capped(MAX_THREADS, "index build threads")?,
        backend: decode_index_backend(dec)?,
    })
}

pub(crate) fn encode_retrieval_config(enc: &mut Encoder, config: &RetrievalConfig) {
    enc.usize(config.expansion_per_index);
    enc.usize(config.ads_per_key);
    enc.usize(config.final_top_n);
}

pub(crate) fn decode_retrieval_config(
    dec: &mut Decoder<'_>,
) -> Result<RetrievalConfig, RetrievalError> {
    Ok(RetrievalConfig {
        expansion_per_index: dec.usize_capped(u32::MAX as usize, "expansion_per_index")?,
        ads_per_key: dec.usize_capped(u32::MAX as usize, "ads_per_key")?,
        final_top_n: dec.usize_capped(u32::MAX as usize, "final_top_n")?,
    })
}

/// Topology knobs of a sharded deployment, in declaration order.
pub(crate) fn encode_topology(enc: &mut Encoder, shards: usize, replicas: usize) {
    enc.usize(shards);
    enc.usize(replicas);
}

pub(crate) fn decode_topology(dec: &mut Decoder<'_>) -> Result<(usize, usize), RetrievalError> {
    let shards = dec.usize_capped(MAX_SHARDS, "shard count")?;
    let replicas = dec.usize_capped(MAX_SHARDS, "replica count")?;
    Ok((shards, replicas))
}

/// Pool widths are topology too, but they sit behind the thread cap.
pub(crate) fn decode_pool_width(
    dec: &mut Decoder<'_>,
    what: &str,
) -> Result<usize, RetrievalError> {
    dec.usize_capped(MAX_THREADS, what)
}

// ---------------------------------------------------------------------
// Resident ANN backend state (the standalone b"AMCADANN" payload)
// ---------------------------------------------------------------------

pub(crate) fn encode_backend_state(enc: &mut Encoder, state: &AnnBackendState) {
    match state {
        AnnBackendState::Exact {
            candidates,
            threads,
        } => {
            enc.u8(BACKEND_EXACT);
            enc.usize(*threads);
            encode_point_set(enc, candidates);
        }
        AnnBackendState::Ivf(state) => {
            enc.u8(BACKEND_IVF);
            encode_ivf_config(enc, &state.config);
            encode_point_set(enc, &state.candidates);
            enc.usize(state.centroids.len());
            for centroid in &state.centroids {
                for &x in centroid {
                    enc.f64(x);
                }
            }
            for cluster in &state.clusters {
                enc.usize(cluster.len());
                for &slot in cluster {
                    enc.usize(slot);
                }
            }
        }
        AnnBackendState::Hnsw(state) => {
            enc.u8(BACKEND_HNSW);
            encode_hnsw_config(enc, &state.config);
            encode_point_set(enc, &state.candidates);
            for word in state.rng_state {
                enc.u64(word);
            }
            match state.entry {
                None => enc.u8(0),
                Some(entry) => {
                    enc.u8(1);
                    enc.usize(entry);
                }
            }
            for &level in &state.node_level {
                enc.usize(level);
            }
            for node in &state.links {
                // links[slot].len() == node_level[slot] + 1 by
                // construction, so the layer count is implied
                for layer in node {
                    enc.usize(layer.len());
                    for &neighbour in layer {
                        enc.u32(neighbour);
                    }
                }
            }
        }
        AnnBackendState::Quant(state) => {
            enc.u8(BACKEND_QUANT);
            encode_quant_config(enc, &state.config);
            encode_point_set(enc, &state.candidates);
            // one codebook + one code lane per manifold component, so the
            // component count is implied by the manifold; each codebook
            // carries its own centroid count (its tangent dimension is the
            // component's), and each code lane holds exactly one byte per
            // candidate
            let specs = state.candidates.manifold().subspaces();
            for (flat, spec) in state.codebooks.iter().zip(specs) {
                enc.usize(flat.len() / spec.dim);
                for &x in flat {
                    enc.f64(x);
                }
            }
            for lane in &state.codes {
                for &code in lane {
                    enc.u8(code);
                }
            }
        }
    }
}

/// Decode a backend state, validating every structural invariant the
/// `from_state` constructors assert — out-of-range entry points, link
/// targets or cluster slots surface as [`RetrievalError::SnapshotCorrupt`]
/// here, never as a downstream panic.
pub(crate) fn decode_backend_state(
    dec: &mut Decoder<'_>,
) -> Result<AnnBackendState, RetrievalError> {
    match dec.u8("backend-state tag")? {
        BACKEND_EXACT => {
            let threads = dec.usize_capped(MAX_THREADS, "exact backend threads")?;
            let candidates = decode_point_set(dec)?;
            Ok(AnnBackendState::Exact {
                candidates,
                threads,
            })
        }
        BACKEND_IVF => {
            let config = decode_ivf_config(dec)?;
            let candidates = decode_point_set(dec)?;
            let n = candidates.len();
            let dim = candidates.manifold().total_dim();
            let k = dec.count(dim * 8, "ivf centroid count")?;
            let mut centroids = Vec::with_capacity(k);
            for _ in 0..k {
                let mut centroid = vec![0.0f64; dim];
                for x in centroid.iter_mut() {
                    *x = dec.f64("ivf centroid coordinate")?;
                }
                centroids.push(centroid);
            }
            let mut clusters = Vec::with_capacity(k);
            let mut assigned = vec![false; n];
            for _ in 0..k {
                let len = dec.count(8, "ivf cluster size")?;
                let mut cluster = Vec::with_capacity(len);
                for _ in 0..len {
                    let slot = dec.usize_capped(usize::MAX, "ivf cluster member")?;
                    match assigned.get_mut(slot) {
                        Some(seen) if !*seen => *seen = true,
                        _ => {
                            return Err(corrupt(format!(
                                "ivf cluster member {slot} is out of range or assigned twice ({n} candidates)"
                            )))
                        }
                    }
                    cluster.push(slot);
                }
                clusters.push(cluster);
            }
            if assigned.iter().any(|&a| !a) {
                return Err(corrupt("ivf clusters do not cover every candidate"));
            }
            Ok(AnnBackendState::Ivf(IvfState {
                candidates,
                config,
                centroids,
                clusters,
            }))
        }
        BACKEND_HNSW => {
            let config = decode_hnsw_config(dec)?;
            let candidates = decode_point_set(dec)?;
            let n = candidates.len();
            let mut rng_state = [0u64; 4];
            for word in rng_state.iter_mut() {
                *word = dec.u64("hnsw rng state")?;
            }
            let entry = match dec.u8("hnsw entry tag")? {
                0 => None,
                1 => Some(dec.usize_capped(usize::MAX, "hnsw entry slot")?),
                tag => return Err(corrupt(format!("unknown hnsw entry tag {tag}"))),
            };
            if entry.is_none() != (n == 0) || entry.is_some_and(|e| e >= n) {
                return Err(corrupt(format!(
                    "hnsw entry {entry:?} is inconsistent with {n} candidates"
                )));
            }
            let mut node_level = Vec::with_capacity(n);
            for _ in 0..n {
                // each layer below costs at least 8 bytes, which bounds
                // plausible levels by the payload size
                node_level.push(dec.usize_capped(dec.remaining() / 8 + 1, "hnsw node level")?);
            }
            let mut links = Vec::with_capacity(n);
            for &level in &node_level {
                let mut node = Vec::with_capacity(level + 1);
                for _ in 0..=level {
                    let len = dec.count(4, "hnsw layer degree")?;
                    let mut layer = Vec::with_capacity(len);
                    for _ in 0..len {
                        let neighbour = dec.u32("hnsw link target")?;
                        if neighbour as usize >= n {
                            return Err(corrupt(format!(
                                "hnsw link target {neighbour} is out of range ({n} candidates)"
                            )));
                        }
                        layer.push(neighbour);
                    }
                    node.push(layer);
                }
                links.push(node);
            }
            Ok(AnnBackendState::Hnsw(HnswState {
                candidates,
                config,
                rng_state,
                entry,
                node_level,
                links,
            }))
        }
        BACKEND_QUANT => {
            let config = decode_quant_config(dec)?;
            let candidates = decode_point_set(dec)?;
            let n = candidates.len();
            let subspaces: Vec<_> = candidates.manifold().subspaces().to_vec();
            let mut codebooks = Vec::with_capacity(subspaces.len());
            for spec in &subspaces {
                // codes are one byte, so a codebook beyond 256 centroids
                // could never have been written by the encoder — reject it
                // here instead of letting `Codebook::from_parts` assert
                let k = dec.count(spec.dim * 8, "quant codebook centroid count")?;
                if k > MAX_SUB_CENTROIDS {
                    return Err(corrupt(format!(
                        "quant codebook claims {k} sub-centroids, above the one-byte cap {MAX_SUB_CENTROIDS}"
                    )));
                }
                let mut flat = vec![0.0f64; k * spec.dim];
                for x in flat.iter_mut() {
                    *x = dec.f64("quant centroid coordinate")?;
                }
                codebooks.push(flat);
            }
            let mut codes = Vec::with_capacity(subspaces.len());
            for (m, (spec, flat)) in subspaces.iter().zip(&codebooks).enumerate() {
                let ksub = flat.len() / spec.dim.max(1);
                let lane = dec.take(n, "quant code lane")?;
                if let Some(&bad) = lane.iter().find(|&&c| c as usize >= ksub) {
                    return Err(corrupt(format!(
                        "quant code {bad} in component {m} names no stored sub-centroid ({ksub} exist)"
                    )));
                }
                codes.push(lane.to_vec());
            }
            Ok(AnnBackendState::Quant(QuantState {
                candidates,
                config,
                codebooks,
                codes,
            }))
        }
        tag => Err(corrupt(format!("unknown backend-state tag {tag}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::random_points;
    use amcad_mnn::{AnnIndex, QuantBackend};

    #[test]
    fn the_envelope_round_trips_and_localises_damage() {
        let sealed = seal(MAGIC_SNAPSHOT, vec![1, 2, 3, 4, 5]);
        assert_eq!(unseal(MAGIC_SNAPSHOT, &sealed).unwrap(), &[1, 2, 3, 4, 5]);
        // wrong magic
        let err = unseal(MAGIC_BACKEND, &sealed).unwrap_err();
        assert!(matches!(err, RetrievalError::SnapshotCorrupt { .. }));
        assert!(err.to_string().contains("magic"));
        // truncation, at every possible cut
        for cut in 0..sealed.len() {
            let err = unseal(MAGIC_SNAPSHOT, &sealed[..cut]).unwrap_err();
            assert!(
                matches!(err, RetrievalError::SnapshotCorrupt { .. }),
                "cut at {cut} must be corruption, got {err}"
            );
        }
        // a bit flip anywhere in the payload breaks the checksum
        for byte in 20..sealed.len() - 8 {
            let mut flipped = sealed.clone();
            flipped[byte] ^= 0x40;
            let err = unseal(MAGIC_SNAPSHOT, &flipped).unwrap_err();
            assert!(err.to_string().contains("checksum"), "byte {byte}: {err}");
        }
        // a foreign version is reported as such, not as corruption
        let mut future = sealed.clone();
        future[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            unseal(MAGIC_SNAPSHOT, &future).unwrap_err(),
            RetrievalError::SnapshotVersion {
                found: 9,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn point_sets_round_trip_bit_for_bit() {
        let set = random_points(10..40, 7);
        let mut enc = Encoder::new();
        encode_point_set(&mut enc, &set);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_point_set(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.manifold(), set.manifold());
        assert_eq!(back.ids(), set.ids());
        for i in 0..set.len() {
            // bit-for-bit, not approximately: distances must reproduce
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(back.point(i)), bits(set.point(i)));
            assert_eq!(bits(back.weight(i)), bits(set.weight(i)));
        }
    }

    #[test]
    fn indices_round_trip_through_the_canonical_sorted_layout() {
        let mut index = InvertedIndex::default();
        index.insert(9, vec![(3, 0.25), (1, f64::INFINITY)]);
        index.insert(2, vec![]);
        index.insert(700, vec![(42, -0.0)]);
        let mut enc = Encoder::new();
        encode_index(&mut enc, &index);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_index(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.len(), index.len());
        for (key, postings) in index.iter() {
            assert_eq!(back.get(*key), Some(postings));
        }
        // identical indices always serialise to identical bytes, however
        // the backing map happens to iterate
        let mut enc2 = Encoder::new();
        encode_index(&mut enc2, &back);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn configs_and_backend_tags_round_trip() {
        let backends = [
            IndexBackend::Exact,
            IndexBackend::Ivf(IvfConfig {
                num_clusters: 9,
                kmeans_iters: 3,
                nprobe: 2,
                seed: 77,
            }),
            IndexBackend::Hnsw(HnswConfig {
                m: 5,
                ef_construction: 21,
                ef_search: 13,
                seed: 0xabc,
            }),
            IndexBackend::Quant(QuantConfig {
                ksub: 32,
                train_iters: 6,
                rerank_k: 64,
                seed: 0xdef,
            }),
        ];
        for backend in backends {
            let config = IndexBuildConfig {
                top_k: 17,
                threads: 3,
                backend,
            };
            let mut enc = Encoder::new();
            encode_index_build_config(&mut enc, &config);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(decode_index_build_config(&mut dec).unwrap(), config);
            dec.finish().unwrap();
        }
        // an unknown tag is typed corruption, not a panic
        let mut dec = Decoder::new(&[42]);
        assert!(matches!(
            decode_index_backend(&mut dec).unwrap_err(),
            RetrievalError::SnapshotCorrupt { .. }
        ));
    }

    #[test]
    fn hostile_counts_and_slots_never_panic_or_overallocate() {
        // a claimed element count far beyond the payload is rejected
        // before any allocation happens
        let mut enc = Encoder::new();
        enc.u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(decode_index(&mut dec).is_err());
        let mut dec = Decoder::new(&bytes);
        assert!(decode_manifold(&mut dec).is_err());
        // an IVF state whose cluster members point past the candidates
        let state = AnnBackendState::Ivf(IvfState {
            candidates: random_points(0..4, 1),
            config: IvfConfig::default(),
            centroids: vec![vec![0.0; 4]],
            clusters: vec![vec![0, 1, 2, 3]],
        });
        let mut enc = Encoder::new();
        encode_backend_state(&mut enc, &state);
        let mut bytes = enc.into_bytes();
        // clusters are the trailing usizes; point the last slot at 99
        let last = bytes.len() - 8;
        bytes[last..].copy_from_slice(&99u64.to_le_bytes());
        let mut dec = Decoder::new(&bytes);
        let err = decode_backend_state(&mut dec).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn quant_state_round_trips_and_reencodes_byte_identically() {
        let backend = QuantBackend::new(random_points(0..40, 21), QuantConfig::default());
        let state = backend.export_state();
        let mut enc = Encoder::new();
        encode_backend_state(&mut enc, &state);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = decode_backend_state(&mut dec).unwrap();
        dec.finish().unwrap();
        // decoded state re-encodes to the exact same bytes: codebooks and
        // code lanes survived bit-for-bit, not approximately
        let mut enc2 = Encoder::new();
        encode_backend_state(&mut enc2, &back);
        assert_eq!(enc2.into_bytes(), bytes);
        // and the revived backend searches identically to the live one
        let revived = back.instantiate();
        let keys = random_points(100..106, 22);
        for i in 0..keys.len() {
            assert_eq!(
                revived.search(keys.point(i), keys.weight(i), 4, None),
                backend.search(keys.point(i), keys.weight(i), 4, None),
            );
        }
    }

    #[test]
    fn hostile_quant_bytes_are_typed_corruption_never_panics() {
        let backend = QuantBackend::new(random_points(0..24, 23), QuantConfig::default());
        let mut enc = Encoder::new();
        encode_backend_state(&mut enc, &backend.export_state());
        let good = enc.into_bytes();

        // truncation at every byte boundary: typed corruption, no panic,
        // no unbounded allocation
        for cut in 0..good.len() {
            let mut dec = Decoder::new(&good[..cut]);
            let outcome = decode_backend_state(&mut dec).and_then(|_| dec.finish());
            assert!(
                matches!(outcome, Err(RetrievalError::SnapshotCorrupt { .. })),
                "cut at {cut} must be typed corruption"
            );
        }

        // the trailing bytes are the code lanes: an out-of-range code must
        // be rejected before `QuantIndex::from_state` could assert on it
        let mut bad_code = good.clone();
        let last = bad_code.len() - 1;
        bad_code[last] = u8::MAX;
        let mut dec = Decoder::new(&bad_code);
        let err = decode_backend_state(&mut dec).unwrap_err();
        assert!(
            err.to_string().contains("names no stored sub-centroid"),
            "{err}"
        );

        // an oversized codebook centroid count (beyond the one-byte code
        // space) is rejected even when enough payload bytes follow
        let mut dec = Decoder::new(&good[1..]); // past the backend tag
        decode_quant_config(&mut dec).unwrap();
        decode_point_set(&mut dec).unwrap();
        // absolute offset of the first codebook's centroid count
        let count_at = good.len() - dec.remaining();
        let mut oversized = good.clone();
        // pad the payload so the claimed count survives the bytes-remaining
        // check and reaches the explicit one-byte-code cap instead
        oversized.resize(oversized.len() + (1 << 16), 0u8);
        oversized[count_at..count_at + 8].copy_from_slice(&1000u64.to_le_bytes());
        let mut dec = Decoder::new(&oversized);
        let err = decode_backend_state(&mut dec).unwrap_err();
        assert!(err.to_string().contains("one-byte cap"), "{err}");
    }
}
