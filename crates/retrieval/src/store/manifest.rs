//! The sharded-deployment manifest: the metadata section at the head of
//! every snapshot payload.
//!
//! The manifest is everything an operator (or an orchestrator deciding
//! whether a snapshot is worth warm-restarting from) needs to know
//! *without* decoding point sets and indices: the generation the
//! snapshot was taken at, the cluster topology it reconstructs, the
//! backend and retrieval configuration, and the corpus shape per shard.
//! [`SnapshotManifest::read`] verifies the full envelope (magic, version
//! and checksum over the entire payload), then decodes only this head
//! section.

use std::path::Path;

use crate::delta::ShardedDeltaBuilder;
use crate::error::RetrievalError;
use crate::index_set::IndexBuildConfig;
use crate::retriever::RetrievalConfig;

use super::format::{
    decode_index_build_config, decode_pool_width, decode_retrieval_config, decode_topology,
    encode_index_build_config, encode_retrieval_config, encode_topology, unseal, Decoder, Encoder,
    FORMAT_VERSION, MAGIC_SNAPSHOT,
};

/// Generation metadata and deployment shape of one snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotManifest {
    /// The format version the file was written with.
    pub format_version: u32,
    /// The serving generation the snapshot captured. Deltas newer than
    /// this are what a warm restart replays to catch up.
    pub generation: u64,
    /// Configured shard count (including shards that currently hold no
    /// ads — they are persisted too, so a later delta can repopulate
    /// them after a restart).
    pub shards: usize,
    /// Serving replicas per shard.
    pub replicas: usize,
    /// Worker threads the per-shard builds ran on (0 = auto).
    pub build_threads: usize,
    /// Worker threads each request's shard fan-out gathers run on.
    pub fanout_threads: usize,
    /// The index-construction configuration every shard was built with.
    pub index: IndexBuildConfig,
    /// The two-layer retrieval configuration.
    pub retrieval: RetrievalConfig,
    /// Key-side corpus shape: queries in the Q-A space.
    pub queries: usize,
    /// Key-side corpus shape: items in the I-A space.
    pub items: usize,
    /// Ads resident on each shard at snapshot time, in shard order.
    pub ads_per_shard: Vec<usize>,
}

impl SnapshotManifest {
    /// Total ads across all shards at snapshot time.
    pub fn total_ads(&self) -> usize {
        self.ads_per_shard.iter().sum()
    }

    /// Short label of the ANN backend the snapshot's indices were built
    /// with (`"exact"`, `"ivf"` or `"hnsw"`).
    pub fn backend(&self) -> &'static str {
        self.index.backend.label()
    }

    /// Read just the manifest of a snapshot file. The whole file is
    /// still integrity-checked (the checksum covers the full payload),
    /// but point sets and indices are not decoded — this is the cheap
    /// "what is in this file?" probe.
    pub fn read(path: impl AsRef<Path>) -> Result<SnapshotManifest, RetrievalError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| RetrievalError::SnapshotCorrupt {
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        let payload = unseal(MAGIC_SNAPSHOT, &bytes)?;
        let mut dec = Decoder::new(payload);
        SnapshotManifest::decode(&mut dec)
    }

    /// Capture the manifest of the deployment `builder` currently
    /// maintains, stamped with `generation`.
    pub(crate) fn for_builder(builder: &ShardedDeltaBuilder, generation: u64) -> SnapshotManifest {
        let topology = builder.topology();
        let parts = builder.slot_parts();
        SnapshotManifest {
            format_version: FORMAT_VERSION,
            generation,
            shards: topology.shards,
            replicas: topology.replicas,
            build_threads: topology.build_threads,
            fanout_threads: topology.fanout_threads,
            index: topology.index,
            retrieval: topology.retrieval,
            queries: parts
                .first()
                .map(|(inputs, _)| inputs.queries_qa.len())
                .unwrap_or(0),
            items: parts
                .first()
                .map(|(inputs, _)| inputs.items_ia.len())
                .unwrap_or(0),
            ads_per_shard: parts
                .iter()
                .map(|(inputs, _)| inputs.ads_qa.len())
                .collect(),
        }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.generation);
        encode_topology(enc, self.shards, self.replicas);
        enc.usize(self.build_threads);
        enc.usize(self.fanout_threads);
        encode_index_build_config(enc, &self.index);
        encode_retrieval_config(enc, &self.retrieval);
        enc.usize(self.queries);
        enc.usize(self.items);
        for &ads in &self.ads_per_shard {
            enc.usize(ads);
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<SnapshotManifest, RetrievalError> {
        let generation = dec.u64("generation")?;
        let (shards, replicas) = decode_topology(dec)?;
        let build_threads = decode_pool_width(dec, "build_threads")?;
        let fanout_threads = decode_pool_width(dec, "fanout_threads")?;
        let index = decode_index_build_config(dec)?;
        let retrieval = decode_retrieval_config(dec)?;
        let queries = dec.usize_capped(u32::MAX as usize, "query count")?;
        let items = dec.usize_capped(u32::MAX as usize, "item count")?;
        let mut ads_per_shard = Vec::with_capacity(shards);
        for _ in 0..shards {
            ads_per_shard.push(dec.usize_capped(u32::MAX as usize, "per-shard ad count")?);
        }
        Ok(SnapshotManifest {
            format_version: FORMAT_VERSION,
            generation,
            shards,
            replicas,
            build_threads,
            fanout_threads,
            index,
            retrieval,
            queries,
            items,
            ads_per_shard,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_mnn::{HnswConfig, IndexBackend};

    #[test]
    fn the_manifest_section_round_trips() {
        let manifest = SnapshotManifest {
            format_version: FORMAT_VERSION,
            generation: 17,
            shards: 4,
            replicas: 2,
            build_threads: 0,
            fanout_threads: 3,
            index: IndexBuildConfig {
                top_k: 12,
                threads: 2,
                backend: IndexBackend::Hnsw(HnswConfig::default()),
            },
            retrieval: RetrievalConfig::default(),
            queries: 10,
            items: 40,
            ads_per_shard: vec![5, 0, 7, 8],
        };
        let mut enc = Encoder::new();
        manifest.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = SnapshotManifest::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.total_ads(), 20);
        assert_eq!(back.backend(), "hnsw");
    }
}
