//! # amcad-eval
//!
//! Evaluation for the AMCAD reproduction: the offline ranking metrics of
//! Tables VI–VIII (Next AUC, HitRate@K, nDCG@K), the online A/B-test
//! simulator behind Table X (CTR / RPM per result page), and the plain-text
//! table formatting shared by every experiment binary.

pub mod abtest;
pub mod metrics;
pub mod report;

pub use abtest::{relative_lift, AbMetrics, AbTestSimulator, ClickModelConfig, ServedAd};
pub use metrics::{auc, hitrate_at_k, mean, ndcg_at_k};
pub use report::{fmt, fmt_pct, TextTable};
