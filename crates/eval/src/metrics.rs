//! Ranking metrics: ROC-AUC, HitRate@K and nDCG@K.
//!
//! These are the offline metrics of the paper's Table VI/VII/VIII: *Next
//! AUC* is the ROC-AUC of the model's scores on next-day edges against
//! sampled non-edges, and HitRate/nDCG compare the retrieved top-K list
//! against the ground-truth list of products sorted by next-day click count.
//! Functions are generic over the id type so they work with graph node ids
//! or any other identifier.

use std::collections::HashMap;
use std::hash::Hash;

/// Area under the ROC curve given scores of positive and negative examples.
///
/// Computed by the rank-sum (Mann–Whitney) formulation in O(n log n): one
/// sort of the pooled scores, average ranks within tie groups (so every
/// tied positive–negative pair contributes exactly ½), then
/// `AUC = (R⁺ − P(P+1)/2) / (P·N)` where `R⁺` is the positive rank sum —
/// equivalent pair by pair to the naive O(P·N) double loop with *exact*
/// ties, without the quadratic blow-up on realistic evaluation sizes.
/// Ties are bit-equality, the standard Mann–Whitney convention (an older
/// revision counted scores within 1e-15 as tied; a pair separated only by
/// float noise now resolves as a win/loss instead of ½). A NaN score is
/// ranked alongside `-inf` — it can never beat a finite score — and
/// returns 0.5 when either side is empty.
pub fn auc(positive_scores: &[f64], negative_scores: &[f64]) -> f64 {
    if positive_scores.is_empty() || negative_scores.is_empty() {
        return 0.5;
    }
    // NaN never outranks a real score: rank it with -inf (the tie-group
    // average still hands a NaN-vs-(-inf) pair its ½, which is the most a
    // score with no defined order can claim)
    let rank_key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
    let mut pooled: Vec<(f64, bool)> = positive_scores
        .iter()
        .map(|&s| (rank_key(s), true))
        .chain(negative_scores.iter().map(|&s| (rank_key(s), false)))
        .collect();
    pooled.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut positive_rank_sum = 0.0;
    let mut start = 0;
    while start < pooled.len() {
        let mut end = start + 1;
        while end < pooled.len() && pooled[end].0 == pooled[start].0 {
            end += 1;
        }
        // 1-based ranks: the tie group spanning positions [start, end)
        // holds ranks start+1 ..= end, averaging (start + 1 + end) / 2
        let average_rank = (start + 1 + end) as f64 / 2.0;
        let positives_in_group = pooled[start..end].iter().filter(|(_, pos)| *pos).count();
        positive_rank_sum += positives_in_group as f64 * average_rank;
        start = end;
    }
    let p = positive_scores.len() as f64;
    let n = negative_scores.len() as f64;
    (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n)
}

/// HitRate@K: the fraction of ground-truth entries that appear in the top-K
/// of the ranked retrieval list (recall@K).  Reported in percent to match
/// the paper's tables.
pub fn hitrate_at_k<T: Eq + Hash>(ranked: &[T], ground_truth: &[T], k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let topk: std::collections::HashSet<&T> = ranked.iter().take(k).collect();
    let hits = ground_truth.iter().filter(|g| topk.contains(g)).count();
    100.0 * hits as f64 / ground_truth.len() as f64
}

/// nDCG@K with graded gains: the ground truth supplies a gain per id (the
/// paper uses next-day click counts); the ranked list's DCG is normalised by
/// the ideal DCG of the ground truth.  Reported in percent.
///
/// A NaN gain (a corrupt ground-truth count) is treated as gain 0 and
/// ranks last in the ideal ordering — it can neither poison the DCG sum
/// nor panic the ideal sort the way `partial_cmp().unwrap()` used to.
pub fn ndcg_at_k<T: Eq + Hash + Copy>(ranked: &[T], gains: &[(T, f64)], k: usize) -> f64 {
    if gains.is_empty() {
        return 0.0;
    }
    let sanitize = |g: f64| if g.is_nan() { 0.0 } else { g };
    let gain_of: HashMap<T, f64> = gains.iter().copied().collect();
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, id)| {
            let g = sanitize(gain_of.get(id).copied().unwrap_or(0.0));
            g / ((i + 2) as f64).log2()
        })
        .sum();
    let mut ideal: Vec<f64> = gains.iter().map(|(_, g)| sanitize(*g)).collect();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        0.0
    } else {
        100.0 * dcg / idcg
    }
}

/// Mean of a slice (0 for an empty slice) — small helper shared by the
/// experiment harness.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        assert_eq!(auc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(auc(&[0.1, 0.2], &[0.9, 0.8]), 0.0);
    }

    #[test]
    fn auc_of_identical_scores_is_half() {
        assert_eq!(auc(&[0.5, 0.5], &[0.5, 0.5]), 0.5);
        assert_eq!(auc(&[], &[0.5]), 0.5);
        assert_eq!(auc(&[0.5], &[]), 0.5);
    }

    #[test]
    fn auc_counts_partial_ordering() {
        // pos {3, 1}, neg {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) → 3/4
        assert!((auc(&[3.0, 1.0], &[2.0, 0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_matches_the_naive_pairwise_count_with_ties() {
        // reference: the O(P·N) definition with exact ties counting ½
        fn naive(pos: &[f64], neg: &[f64]) -> f64 {
            let mut wins = 0.0;
            for &p in pos {
                for &n in neg {
                    if p > n {
                        wins += 1.0;
                    } else if p == n {
                        wins += 0.5;
                    }
                }
            }
            wins / (pos.len() as f64 * neg.len() as f64)
        }
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            // xorshift*: deterministic scores over a small grid so ties
            // across the positive/negative pools actually occur
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            ((state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) % 8) as f64 / 4.0
        };
        for (np, nn) in [(1usize, 1usize), (3, 5), (17, 9), (40, 40)] {
            let pos: Vec<f64> = (0..np).map(|_| next()).collect();
            let neg: Vec<f64> = (0..nn).map(|_| next()).collect();
            let fast = auc(&pos, &neg);
            let slow = naive(&pos, &neg);
            assert!(
                (fast - slow).abs() < 1e-12,
                "rank-sum {fast} vs naive {slow} for {np}x{nn}"
            );
        }
    }

    #[test]
    fn auc_ranks_nan_scores_last_instead_of_panicking() {
        // a NaN positive can never win: pos {NaN}, neg {0.0} → 0
        assert_eq!(auc(&[f64::NAN], &[0.0]), 0.0);
        // a NaN negative always loses: pos {0.0}, neg {NaN} → 1
        assert_eq!(auc(&[0.0], &[f64::NAN]), 1.0);
        // NaN against NaN is a tie group → ½
        assert_eq!(auc(&[f64::NAN], &[f64::NAN]), 0.5);
        // and one NaN in a realistic mix stays bounded
        let a = auc(&[0.9, f64::NAN, 0.8], &[0.1, 0.2]);
        assert!((0.0..=1.0).contains(&a));
        assert!((a - 2.0 / 3.0).abs() < 1e-12, "got {a}");
    }

    #[test]
    fn hitrate_counts_recall_in_percent() {
        let ranked = vec![1, 2, 3, 4, 5];
        let truth = vec![2, 9];
        assert_eq!(hitrate_at_k(&ranked, &truth, 3), 50.0);
        assert_eq!(hitrate_at_k(&ranked, &truth, 1), 0.0);
        assert_eq!(hitrate_at_k(&ranked, &Vec::<i32>::new(), 3), 0.0);
        assert_eq!(hitrate_at_k(&ranked, &[1, 2, 3], 5), 100.0);
    }

    #[test]
    fn ndcg_is_100_for_ideal_ranking_and_lower_otherwise() {
        let gains = vec![(1u32, 3.0), (2, 2.0), (3, 1.0)];
        let ideal = vec![1u32, 2, 3];
        let worst = vec![3u32, 2, 1];
        assert!((ndcg_at_k(&ideal, &gains, 3) - 100.0).abs() < 1e-9);
        let w = ndcg_at_k(&worst, &gains, 3);
        assert!(w < 100.0 && w > 0.0);
        // irrelevant items only → 0
        assert_eq!(ndcg_at_k(&[9u32, 8, 7], &gains, 3), 0.0);
    }

    #[test]
    fn ndcg_treats_nan_gains_as_zero_instead_of_panicking() {
        // the old `partial_cmp().unwrap()` ideal sort aborted an entire
        // experiment run on one NaN gain; now NaN ranks last with gain 0
        let gains = vec![(1u32, 3.0), (2, f64::NAN), (3, 1.0)];
        let with_nan = ndcg_at_k(&[1u32, 3, 2], &gains, 3);
        let without = ndcg_at_k(&[1u32, 3, 2], &[(1u32, 3.0), (2, 0.0), (3, 1.0)], 3);
        assert!(with_nan.is_finite());
        assert!((with_nan - without).abs() < 1e-9, "NaN gain must act as 0");
        assert!((with_nan - 100.0).abs() < 1e-9, "1,3 is the ideal order");
        // every gain NaN → idcg 0 → metric 0, still no panic
        let all_nan = vec![(1u32, f64::NAN), (2, f64::NAN)];
        assert_eq!(ndcg_at_k(&[1u32, 2], &all_nan, 2), 0.0);
    }

    #[test]
    fn ndcg_handles_empty_and_truncated_lists() {
        let gains = vec![(1u32, 1.0)];
        assert_eq!(ndcg_at_k(&Vec::<u32>::new(), &gains, 5), 0.0);
        assert_eq!(ndcg_at_k(&[1u32], &[], 5), 0.0);
        assert!((ndcg_at_k(&[1u32], &gains, 5) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
