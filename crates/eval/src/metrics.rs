//! Ranking metrics: ROC-AUC, HitRate@K and nDCG@K.
//!
//! These are the offline metrics of the paper's Table VI/VII/VIII: *Next
//! AUC* is the ROC-AUC of the model's scores on next-day edges against
//! sampled non-edges, and HitRate/nDCG compare the retrieved top-K list
//! against the ground-truth list of products sorted by next-day click count.
//! Functions are generic over the id type so they work with graph node ids
//! or any other identifier.

use std::collections::HashMap;
use std::hash::Hash;

/// Area under the ROC curve given scores of positive and negative examples.
///
/// Computed by the rank-sum (Mann–Whitney) formulation; ties contribute ½.
/// Returns 0.5 when either side is empty.
pub fn auc(positive_scores: &[f64], negative_scores: &[f64]) -> f64 {
    if positive_scores.is_empty() || negative_scores.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in positive_scores {
        for &n in negative_scores {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-15 {
                wins += 0.5;
            }
        }
    }
    wins / (positive_scores.len() as f64 * negative_scores.len() as f64)
}

/// HitRate@K: the fraction of ground-truth entries that appear in the top-K
/// of the ranked retrieval list (recall@K).  Reported in percent to match
/// the paper's tables.
pub fn hitrate_at_k<T: Eq + Hash>(ranked: &[T], ground_truth: &[T], k: usize) -> f64 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let topk: std::collections::HashSet<&T> = ranked.iter().take(k).collect();
    let hits = ground_truth.iter().filter(|g| topk.contains(g)).count();
    100.0 * hits as f64 / ground_truth.len() as f64
}

/// nDCG@K with graded gains: the ground truth supplies a gain per id (the
/// paper uses next-day click counts); the ranked list's DCG is normalised by
/// the ideal DCG of the ground truth.  Reported in percent.
pub fn ndcg_at_k<T: Eq + Hash + Copy>(ranked: &[T], gains: &[(T, f64)], k: usize) -> f64 {
    if gains.is_empty() {
        return 0.0;
    }
    let gain_of: HashMap<T, f64> = gains.iter().copied().collect();
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, id)| {
            let g = gain_of.get(id).copied().unwrap_or(0.0);
            g / ((i + 2) as f64).log2()
        })
        .sum();
    let mut ideal: Vec<f64> = gains.iter().map(|(_, g)| *g).collect();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    if idcg <= 0.0 {
        0.0
    } else {
        100.0 * dcg / idcg
    }
}

/// Mean of a slice (0 for an empty slice) — small helper shared by the
/// experiment harness.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_perfect_separation_is_one() {
        assert_eq!(auc(&[0.9, 0.8], &[0.1, 0.2]), 1.0);
        assert_eq!(auc(&[0.1, 0.2], &[0.9, 0.8]), 0.0);
    }

    #[test]
    fn auc_of_identical_scores_is_half() {
        assert_eq!(auc(&[0.5, 0.5], &[0.5, 0.5]), 0.5);
        assert_eq!(auc(&[], &[0.5]), 0.5);
        assert_eq!(auc(&[0.5], &[]), 0.5);
    }

    #[test]
    fn auc_counts_partial_ordering() {
        // pos {3, 1}, neg {2, 0}: pairs (3>2, 3>0, 1<2, 1>0) → 3/4
        assert!((auc(&[3.0, 1.0], &[2.0, 0.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hitrate_counts_recall_in_percent() {
        let ranked = vec![1, 2, 3, 4, 5];
        let truth = vec![2, 9];
        assert_eq!(hitrate_at_k(&ranked, &truth, 3), 50.0);
        assert_eq!(hitrate_at_k(&ranked, &truth, 1), 0.0);
        assert_eq!(hitrate_at_k(&ranked, &Vec::<i32>::new(), 3), 0.0);
        assert_eq!(hitrate_at_k(&ranked, &[1, 2, 3], 5), 100.0);
    }

    #[test]
    fn ndcg_is_100_for_ideal_ranking_and_lower_otherwise() {
        let gains = vec![(1u32, 3.0), (2, 2.0), (3, 1.0)];
        let ideal = vec![1u32, 2, 3];
        let worst = vec![3u32, 2, 1];
        assert!((ndcg_at_k(&ideal, &gains, 3) - 100.0).abs() < 1e-9);
        let w = ndcg_at_k(&worst, &gains, 3);
        assert!(w < 100.0 && w > 0.0);
        // irrelevant items only → 0
        assert_eq!(ndcg_at_k(&[9u32, 8, 7], &gains, 3), 0.0);
    }

    #[test]
    fn ndcg_handles_empty_and_truncated_lists() {
        let gains = vec![(1u32, 1.0)];
        assert_eq!(ndcg_at_k(&Vec::<u32>::new(), &gains, 5), 0.0);
        assert_eq!(ndcg_at_k(&[1u32], &[], 5), 0.0);
        assert!((ndcg_at_k(&[1u32], &gains, 5) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
