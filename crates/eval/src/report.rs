//! Plain-text table formatting shared by the experiment binaries.
//!
//! Every experiment binary prints its results in the same aligned-column
//! layout so EXPERIMENTS.md can quote the output verbatim next to the
//! paper's tables.

/// A simple aligned-column text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format a float as a signed percentage ("+1.3%" / "-0.2%").
pub fn fmt_pct(value: f64, decimals: usize) -> String {
    format!("{value:+.decimals$}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Model", "AUC"]);
        t.row(vec!["DeepWalk", "0.81"]);
        t.row(vec!["AMCAD", "0.93"]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.contains("DeepWalk"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.num_rows(), 2);
        // header and rows aligned: every line has AUC column starting at the
        // same offset
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[0].find("AUC").unwrap();
        assert_eq!(lines[2].find("0.81").unwrap(), col);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(1.5, 1), "+1.5%");
        assert_eq!(fmt_pct(-0.25, 2), "-0.25%");
    }
}
