//! Online A/B test simulator: CTR and RPM per result page (Table X).
//!
//! The paper's online experiment swaps one retrieval channel (the Euclidean
//! model) for AMCAD on 4% of Taobao traffic and reports CTR / RPM lifts per
//! result page.  We cannot run Taobao, so this module simulates the serving
//! loop: each request presents the retrieved ads page by page to a simulated
//! user whose click probability depends on the ground-truth relevance of the
//! ad and decays with the position on the page; revenue per click is the
//! ad's bid price (generalised-second-price auctions are out of scope — the
//! retrieval stage the paper evaluates precedes the auction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One served impression: the relevance of the ad for the request and the
/// advertiser's bid price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedAd {
    /// Ground-truth relevance in `[0, 1]`.
    pub relevance: f64,
    /// Bid price charged (proportionally) when the ad is clicked.
    pub bid_price: f64,
}

/// Configuration of the simulated user click model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClickModelConfig {
    /// Ads shown per result page.
    pub ads_per_page: usize,
    /// Number of pages the user may browse.
    pub max_pages: usize,
    /// Base click probability multiplier applied to relevance.
    pub click_scale: f64,
    /// Per-position decay of attention within a page.
    pub position_decay: f64,
    /// Probability the user continues to the next page.
    pub continue_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickModelConfig {
    fn default() -> Self {
        ClickModelConfig {
            ads_per_page: 4,
            max_pages: 5,
            click_scale: 0.35,
            position_decay: 0.85,
            continue_prob: 0.6,
            seed: 97,
        }
    }
}

/// Accumulated metrics per page plus overall (Table X layout).
#[derive(Debug, Clone, PartialEq)]
pub struct AbMetrics {
    /// Impressions per page (index 0 = page 1; the last bucket aggregates
    /// `max_pages` and beyond).
    pub impressions: Vec<u64>,
    /// Clicks per page.
    pub clicks: Vec<u64>,
    /// Revenue per page.
    pub revenue: Vec<f64>,
}

impl AbMetrics {
    fn new(pages: usize) -> Self {
        AbMetrics {
            impressions: vec![0; pages],
            clicks: vec![0; pages],
            revenue: vec![0.0; pages],
        }
    }

    /// Click-through rate of a page bucket (0-based), in percent.
    pub fn ctr(&self, page: usize) -> f64 {
        if self.impressions[page] == 0 {
            return 0.0;
        }
        100.0 * self.clicks[page] as f64 / self.impressions[page] as f64
    }

    /// Revenue per mille impressions of a page bucket (0-based).
    pub fn rpm(&self, page: usize) -> f64 {
        if self.impressions[page] == 0 {
            return 0.0;
        }
        1000.0 * self.revenue[page] / self.impressions[page] as f64
    }

    /// Overall CTR in percent.
    pub fn overall_ctr(&self) -> f64 {
        let imp: u64 = self.impressions.iter().sum();
        if imp == 0 {
            return 0.0;
        }
        100.0 * self.clicks.iter().sum::<u64>() as f64 / imp as f64
    }

    /// Overall RPM.
    pub fn overall_rpm(&self) -> f64 {
        let imp: u64 = self.impressions.iter().sum();
        if imp == 0 {
            return 0.0;
        }
        1000.0 * self.revenue.iter().sum::<f64>() / imp as f64
    }

    /// Number of page buckets tracked.
    pub fn num_pages(&self) -> usize {
        self.impressions.len()
    }
}

/// Relative lift of `treatment` over `control`, in percent.
pub fn relative_lift(control: f64, treatment: f64) -> f64 {
    if control == 0.0 {
        return 0.0;
    }
    100.0 * (treatment - control) / control
}

/// The position-aware click/revenue simulator.
#[derive(Debug, Clone)]
pub struct AbTestSimulator {
    config: ClickModelConfig,
}

impl AbTestSimulator {
    /// Create a simulator with the given click model.
    pub fn new(config: ClickModelConfig) -> Self {
        AbTestSimulator { config }
    }

    /// Simulate the browsing of one ranked ad list and accumulate the
    /// outcome into `metrics`.  The ads are paginated; the user browses page
    /// by page and may abandon after any page.
    pub fn simulate_request(&self, ads: &[ServedAd], metrics: &mut AbMetrics, rng: &mut StdRng) {
        let per_page = self.config.ads_per_page.max(1);
        let pages = metrics.num_pages();
        for (i, ad) in ads.iter().enumerate() {
            let page = (i / per_page).min(pages - 1);
            let position_in_page = i % per_page;
            // user may have abandoned before reaching this page
            let reach_prob = self.config.continue_prob.powi((i / per_page) as i32);
            if rng.gen::<f64>() > reach_prob {
                continue;
            }
            metrics.impressions[page] += 1;
            let p_click = (self.config.click_scale
                * ad.relevance
                * self.config.position_decay.powi(position_in_page as i32))
            .clamp(0.0, 1.0);
            if rng.gen::<f64>() < p_click {
                metrics.clicks[page] += 1;
                metrics.revenue[page] += ad.bid_price;
            }
        }
    }

    /// Run a full A/B comparison: `requests` is an iterator of
    /// (control ads, treatment ads) pairs for the same underlying request.
    /// Returns (control metrics, treatment metrics).
    pub fn run<'a, I>(&self, requests: I) -> (AbMetrics, AbMetrics)
    where
        I: IntoIterator<Item = (&'a [ServedAd], &'a [ServedAd])>,
    {
        let mut control = AbMetrics::new(self.config.max_pages);
        let mut treatment = AbMetrics::new(self.config.max_pages);
        let mut rng_c = StdRng::seed_from_u64(self.config.seed);
        let mut rng_t = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        for (c_ads, t_ads) in requests {
            self.simulate_request(c_ads, &mut control, &mut rng_c);
            self.simulate_request(t_ads, &mut treatment, &mut rng_t);
        }
        (control, treatment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ads(relevances: &[f64]) -> Vec<ServedAd> {
        relevances
            .iter()
            .map(|&r| ServedAd {
                relevance: r,
                bid_price: 1.0,
            })
            .collect()
    }

    #[test]
    fn higher_relevance_yields_higher_ctr_and_rpm() {
        let sim = AbTestSimulator::new(ClickModelConfig::default());
        let good: Vec<Vec<ServedAd>> = (0..400).map(|_| ads(&[0.9; 8])).collect();
        let bad: Vec<Vec<ServedAd>> = (0..400).map(|_| ads(&[0.1; 8])).collect();
        let requests: Vec<(&[ServedAd], &[ServedAd])> = bad
            .iter()
            .zip(&good)
            .map(|(b, g)| (b.as_slice(), g.as_slice()))
            .collect();
        let (control, treatment) = sim.run(requests);
        assert!(treatment.overall_ctr() > control.overall_ctr());
        assert!(treatment.overall_rpm() > control.overall_rpm());
        assert!(relative_lift(control.overall_ctr(), treatment.overall_ctr()) > 0.0);
    }

    #[test]
    fn identical_systems_show_no_meaningful_lift() {
        let sim = AbTestSimulator::new(ClickModelConfig::default());
        let lists: Vec<Vec<ServedAd>> = (0..2000).map(|_| ads(&[0.5; 8])).collect();
        let requests: Vec<(&[ServedAd], &[ServedAd])> =
            lists.iter().map(|l| (l.as_slice(), l.as_slice())).collect();
        let (control, treatment) = sim.run(requests);
        let lift = relative_lift(control.overall_ctr(), treatment.overall_ctr());
        assert!(lift.abs() < 10.0, "noise-only lift should be small: {lift}");
    }

    #[test]
    fn later_pages_receive_fewer_impressions() {
        let sim = AbTestSimulator::new(ClickModelConfig::default());
        let lists: Vec<Vec<ServedAd>> = (0..500).map(|_| ads(&[0.5; 20])).collect();
        let requests: Vec<(&[ServedAd], &[ServedAd])> =
            lists.iter().map(|l| (l.as_slice(), l.as_slice())).collect();
        let (control, _) = sim.run(requests);
        assert!(control.impressions[0] > control.impressions[4]);
    }

    #[test]
    fn metrics_handle_empty_traffic() {
        let m = AbMetrics::new(5);
        assert_eq!(m.overall_ctr(), 0.0);
        assert_eq!(m.overall_rpm(), 0.0);
        assert_eq!(m.ctr(0), 0.0);
        assert_eq!(m.rpm(3), 0.0);
        assert_eq!(relative_lift(0.0, 1.0), 0.0);
    }

    #[test]
    fn revenue_scales_with_bid_price() {
        let sim = AbTestSimulator::new(ClickModelConfig {
            seed: 3,
            ..Default::default()
        });
        let cheap: Vec<Vec<ServedAd>> = (0..300)
            .map(|_| {
                vec![
                    ServedAd {
                        relevance: 0.8,
                        bid_price: 0.5
                    };
                    4
                ]
            })
            .collect();
        let pricey: Vec<Vec<ServedAd>> = (0..300)
            .map(|_| {
                vec![
                    ServedAd {
                        relevance: 0.8,
                        bid_price: 2.0
                    };
                    4
                ]
            })
            .collect();
        let requests: Vec<(&[ServedAd], &[ServedAd])> = cheap
            .iter()
            .zip(&pricey)
            .map(|(c, p)| (c.as_slice(), p.as_slice()))
            .collect();
        let (control, treatment) = sim.run(requests);
        assert!(treatment.overall_rpm() > control.overall_rpm() * 2.0);
    }
}
