//! The latent e-commerce world: category tree, entities and relevance.
//!
//! The generator plants exactly the two structures the paper's Fig. 1
//! motivates:
//!
//! * a **hierarchy** over queries — every query is a node of a term-refinement
//!   tree inside its leaf category (broad "canvas shoes" → narrower
//!   "canvas shoes women" → "canvas shoes women summer"), which the
//!   hyperbolic subspace should capture, and
//! * **cyclic co-click clusters** over items and ads — products of one
//!   category are grouped into style clusters whose members are frequently
//!   clicked together and bid on the same keywords, which the spherical
//!   subspace should capture.
//!
//! Ground-truth relevance between a query and a product is a deterministic
//! function of this latent structure; it drives both the behaviour
//! simulation and the online A/B click model, so offline and online
//! experiments are consistent with each other.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use amcad_graph::jaccard;

use crate::config::WorldConfig;

/// A query entity of the latent world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEntity {
    /// Leaf category.
    pub category: u32,
    /// Term IDs (category head term plus refinements).
    pub terms: Vec<u32>,
    /// Depth in the query-refinement hierarchy (0 = broadest).
    pub level: u8,
    /// Index of the parent query in the refinement tree, if any.
    pub parent: Option<usize>,
    /// Style cluster this query leans towards (None for broad queries).
    pub preferred_cluster: Option<u32>,
}

/// An item (organic product) entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemEntity {
    /// Leaf category.
    pub category: u32,
    /// Title term IDs.
    pub terms: Vec<u32>,
    /// Brand ID.
    pub brand: u32,
    /// Shop ID.
    pub shop: u32,
    /// Style cluster within the category.
    pub cluster: u32,
    /// Popularity weight (long-tailed).
    pub popularity: f64,
}

/// An advertisement entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdEntity {
    /// Leaf category.
    pub category: u32,
    /// Title term IDs.
    pub terms: Vec<u32>,
    /// Brand ID.
    pub brand: u32,
    /// Shop ID.
    pub shop: u32,
    /// Style cluster within the category.
    pub cluster: u32,
    /// Bid keyword IDs (shared within category/cluster → co-bid edges).
    pub bid_words: Vec<u32>,
    /// Popularity weight.
    pub popularity: f64,
    /// Bid price (used by the RPM computation of the A/B simulator).
    pub bid_price: f64,
}

/// A simulated user with long-term category interests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Categories the user is interested in.
    pub interests: Vec<u32>,
}

/// A three-level category tree (root → parents → leaf categories).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryTree {
    /// Parent (mid-level) index per leaf category.
    pub parent_of_leaf: Vec<u32>,
}

impl CategoryTree {
    /// Build a tree over `num_leaves` leaf categories with the given
    /// branching factor at the mid level.
    pub fn new(num_leaves: usize, branching: usize) -> Self {
        let branching = branching.max(1);
        CategoryTree {
            parent_of_leaf: (0..num_leaves).map(|i| (i / branching) as u32).collect(),
        }
    }

    /// Number of leaf categories.
    pub fn num_leaves(&self) -> usize {
        self.parent_of_leaf.len()
    }

    /// Tree distance between two leaf categories: 0 (same), 1 (siblings
    /// under the same mid-level node) or 2 (otherwise).
    pub fn distance(&self, a: u32, b: u32) -> u32 {
        if a == b {
            0
        } else if self.parent_of_leaf[a as usize] == self.parent_of_leaf[b as usize] {
            1
        } else {
            2
        }
    }
}

/// The full latent world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// The generating configuration.
    pub config: WorldConfig,
    /// Category tree over leaf categories.
    pub categories: CategoryTree,
    /// Query entities.
    pub queries: Vec<QueryEntity>,
    /// Item entities.
    pub items: Vec<ItemEntity>,
    /// Ad entities.
    pub ads: Vec<AdEntity>,
    /// Simulated users.
    pub users: Vec<UserProfile>,
}

/// Either an item or an ad, used by the relevance function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductRef {
    /// Index into [`World::items`].
    Item(usize),
    /// Index into [`World::ads`].
    Ad(usize),
}

impl World {
    /// Generate a world deterministically from a configuration.
    pub fn generate(config: &WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let categories = CategoryTree::new(config.num_categories, config.category_branching);

        // --- term vocabulary -------------------------------------------------
        // terms are globally numbered: category c owns terms
        // [c*T, (c+1)*T) with index 0 being the category head term.
        let term_base = |cat: usize| (cat * config.terms_per_category) as u32;

        // --- queries: a refinement tree per category -------------------------
        let mut queries = Vec::new();
        for cat in 0..config.num_categories {
            let head = term_base(cat);
            let n = config.queries_per_category;
            // level-0 (broad) query
            let root_index = queries.len();
            queries.push(QueryEntity {
                category: cat as u32,
                terms: vec![head],
                level: 0,
                parent: None,
                preferred_cluster: None,
            });
            // level-1 queries: head + one refinement term each
            let num_level1 = ((n - 1) / 3).max(1);
            let mut level1_indices = Vec::new();
            for j in 0..num_level1 {
                if queries.len() - root_index >= n {
                    break;
                }
                let refine = head + 1 + (j as u32 % (config.terms_per_category as u32 - 1));
                level1_indices.push(queries.len());
                queries.push(QueryEntity {
                    category: cat as u32,
                    terms: vec![head, refine],
                    level: 1,
                    parent: Some(root_index),
                    preferred_cluster: Some(j as u32 % config.clusters_per_category as u32),
                });
            }
            // level-2 queries: parent terms + one more refinement
            while queries.len() - root_index < n {
                let parent_idx = level1_indices[rng.gen_range(0..level1_indices.len())];
                let parent = queries[parent_idx].clone();
                let extra = head + 1 + rng.gen_range(0..(config.terms_per_category as u32 - 1));
                let mut terms = parent.terms.clone();
                if !terms.contains(&extra) {
                    terms.push(extra);
                }
                queries.push(QueryEntity {
                    category: cat as u32,
                    terms,
                    level: 2,
                    parent: Some(parent_idx),
                    preferred_cluster: parent.preferred_cluster,
                });
            }
        }

        // --- items & ads: style clusters per category ------------------------
        let mut items = Vec::new();
        let mut ads = Vec::new();
        let keyword_base = |cat: usize| (cat * config.keywords_per_category) as u32;
        for cat in 0..config.num_categories {
            let head = term_base(cat);
            for k in 0..config.items_per_category {
                let cluster = (k % config.clusters_per_category) as u32;
                let cluster_term = head + 1 + cluster % (config.terms_per_category as u32 - 1);
                let extra = head + 1 + rng.gen_range(0..(config.terms_per_category as u32 - 1));
                items.push(ItemEntity {
                    category: cat as u32,
                    terms: dedup(vec![head, cluster_term, extra]),
                    brand: rng.gen_range(0..config.num_brands) as u32,
                    shop: rng.gen_range(0..config.num_shops) as u32,
                    cluster,
                    popularity: zipf_weight(&mut rng),
                });
            }
            for k in 0..config.ads_per_category {
                let cluster = (k % config.clusters_per_category) as u32;
                let cluster_term = head + 1 + cluster % (config.terms_per_category as u32 - 1);
                let kw_cat = keyword_base(cat);
                let kw_cluster = kw_cat + 1 + cluster % (config.keywords_per_category as u32 - 1);
                ads.push(AdEntity {
                    category: cat as u32,
                    terms: dedup(vec![head, cluster_term]),
                    brand: rng.gen_range(0..config.num_brands) as u32,
                    shop: rng.gen_range(0..config.num_shops) as u32,
                    cluster,
                    bid_words: vec![kw_cat, kw_cluster],
                    popularity: zipf_weight(&mut rng),
                    bid_price: 0.5 + rng.gen::<f64>() * 2.0,
                });
            }
        }

        // --- users ------------------------------------------------------------
        let users = (0..config.num_users)
            .map(|_| {
                let primary = rng.gen_range(0..config.num_categories) as u32;
                let mut interests = vec![primary];
                if rng.gen_bool(0.4) && config.num_categories > 1 {
                    let mut second = rng.gen_range(0..config.num_categories) as u32;
                    if second == primary {
                        second = (second + 1) % config.num_categories as u32;
                    }
                    interests.push(second);
                }
                UserProfile { interests }
            })
            .collect();

        World {
            config: config.clone(),
            categories,
            queries,
            items,
            ads,
            users,
        }
    }

    /// Ground-truth relevance of a product for a query, in `[0, 1]`.
    ///
    /// Combines category affinity (tree distance), term overlap, style-cluster
    /// preference and a mild popularity prior.
    pub fn relevance(&self, query_idx: usize, product: ProductRef) -> f64 {
        let q = &self.queries[query_idx];
        let (category, terms, cluster, popularity) = match product {
            ProductRef::Item(i) => {
                let it = &self.items[i];
                (it.category, &it.terms, it.cluster, it.popularity)
            }
            ProductRef::Ad(i) => {
                let ad = &self.ads[i];
                (ad.category, &ad.terms, ad.cluster, ad.popularity)
            }
        };
        let cat_score = match self.categories.distance(q.category, category) {
            0 => 1.0,
            1 => 0.15,
            _ => 0.02,
        };
        let term_score = jaccard(&q.terms, terms);
        let cluster_score = match q.preferred_cluster {
            Some(c) if c == cluster => 0.5,
            Some(_) => 0.0,
            None => 0.2, // broad queries spread interest over clusters
        };
        let raw = cat_score * (0.5 + 0.5 * term_score + cluster_score) * (0.5 + 0.5 * popularity);
        raw.clamp(0.0, 1.0)
    }

    /// Number of query entities.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of item entities.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of ad entities.
    pub fn num_ads(&self) -> usize {
        self.ads.len()
    }
}

fn dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

/// A crude long-tailed popularity weight in `(0, 1]`.
fn zipf_weight<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(0.05..1.0);
    u * u
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(&WorldConfig::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(&WorldConfig::tiny(42));
        let b = World::generate(&WorldConfig::tiny(42));
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.items, b.items);
        assert_eq!(a.users, b.users);
    }

    #[test]
    fn entity_counts_match_config() {
        let w = tiny_world();
        let cfg = &w.config;
        assert_eq!(
            w.num_queries(),
            cfg.num_categories * cfg.queries_per_category
        );
        assert_eq!(w.num_items(), cfg.num_categories * cfg.items_per_category);
        assert_eq!(w.num_ads(), cfg.num_categories * cfg.ads_per_category);
        assert_eq!(w.users.len(), cfg.num_users);
    }

    #[test]
    fn query_hierarchy_is_well_formed() {
        let w = tiny_world();
        for (i, q) in w.queries.iter().enumerate() {
            match q.level {
                0 => assert!(q.parent.is_none()),
                _ => {
                    let p = q.parent.expect("non-root query needs a parent");
                    assert!(p < i, "parent must precede child");
                    let parent = &w.queries[p];
                    assert_eq!(parent.category, q.category);
                    assert_eq!(parent.level + 1, q.level);
                    // child terms contain all parent terms (term refinement)
                    for t in &parent.terms {
                        assert!(q.terms.contains(t));
                    }
                }
            }
        }
    }

    #[test]
    fn category_tree_distance_is_a_valid_ultrametric() {
        let t = CategoryTree::new(9, 3);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.distance(0, 1), 1); // same parent (0,1,2)
        assert_eq!(t.distance(0, 5), 2);
        assert_eq!(t.distance(5, 0), 2);
    }

    #[test]
    fn relevance_prefers_same_category_and_cluster() {
        let w = tiny_world();
        // pick a level-1 query with a preferred cluster
        let (qi, q) = w
            .queries
            .iter()
            .enumerate()
            .find(|(_, q)| q.preferred_cluster.is_some())
            .unwrap();
        let same_cat_same_cluster = w
            .items
            .iter()
            .position(|it| it.category == q.category && Some(it.cluster) == q.preferred_cluster)
            .unwrap();
        let other_cat = w
            .items
            .iter()
            .position(|it| w.categories.distance(it.category, q.category) == 2)
            .unwrap();
        let r_good = w.relevance(qi, ProductRef::Item(same_cat_same_cluster));
        let r_bad = w.relevance(qi, ProductRef::Item(other_cat));
        assert!(
            r_good > r_bad * 3.0,
            "same-category/cluster item should be much more relevant: {r_good} vs {r_bad}"
        );
        assert!((0.0..=1.0).contains(&r_good));
        assert!((0.0..=1.0).contains(&r_bad));
    }

    #[test]
    fn ads_share_bid_keywords_within_category() {
        let w = tiny_world();
        let cat0_ads: Vec<&AdEntity> = w.ads.iter().filter(|a| a.category == 0).collect();
        assert!(cat0_ads.len() >= 2);
        let shared = cat0_ads[0]
            .bid_words
            .iter()
            .any(|k| cat0_ads[1].bid_words.contains(k));
        assert!(
            shared,
            "ads of one category must share at least one keyword"
        );
    }

    #[test]
    fn users_have_at_least_one_interest() {
        let w = tiny_world();
        assert!(w.users.iter().all(|u| !u.interests.is_empty()));
        assert!(w.users.iter().all(|u| u
            .interests
            .iter()
            .all(|c| (*c as usize) < w.config.num_categories)));
    }
}
