//! # amcad-datagen
//!
//! Synthetic e-commerce sponsored-search world and behaviour-log generator —
//! the stand-in for the proprietary Taobao user logs the paper trains on.
//!
//! The generator plants the two graph structures the paper's introduction
//! motivates (a query hierarchy for the hyperbolic subspace, cyclic co-click
//! / co-bid product clusters for the spherical subspace), simulates user
//! search-and-click sessions from a latent relevance model, and derives the
//! interaction graph plus next-day ground truth used by every offline and
//! online experiment.
//!
//! * [`WorldConfig`] — scale presets (`tiny`, `one_day`, the Table IX scale
//!   ladder),
//! * [`World`] — category tree, query / item / ad entities, users, and the
//!   ground-truth relevance function,
//! * [`Dataset`] — simulated sessions, the built [`amcad_graph::HeteroGraph`]
//!   and next-day [`GroundTruth`].

pub mod config;
pub mod dataset;
pub mod world;

pub use config::WorldConfig;
pub use dataset::{Dataset, GroundTruth};
pub use world::{AdEntity, CategoryTree, ItemEntity, ProductRef, QueryEntity, UserProfile, World};
