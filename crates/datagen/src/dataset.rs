//! Behaviour-log simulation, graph construction and ground truth.
//!
//! This module turns a latent [`World`] into the artefacts the rest of the
//! system consumes, mirroring the paper's data pipeline (Fig. 3 / Fig. 4):
//!
//! 1. simulate user search sessions for a *training* window and a separate
//!    *next-day* evaluation window,
//! 2. build the heterogeneous interaction graph from the training sessions
//!    (clicks, co-clicks, semantic and co-bid edges),
//! 3. derive ground truth from the evaluation window: click-count-sorted
//!    item / ad lists per query (for HitRate / nDCG) and next-day click
//!    edges (for Next AUC).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use amcad_graph::{GraphBuilder, HeteroGraph, NodeFeatures, NodeId, NodeType, SessionRecord};

use crate::config::WorldConfig;
use crate::world::{ProductRef, World};

/// Ground truth derived from the evaluation (next-day) sessions.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Per query: items clicked next day, sorted by click count (descending).
    pub q2i: HashMap<NodeId, Vec<(NodeId, u32)>>,
    /// Per query: ads clicked next day, sorted by click count (descending).
    pub q2a: HashMap<NodeId, Vec<(NodeId, u32)>>,
    /// All next-day (query, clicked node) pairs — the positive edges for
    /// Next-AUC evaluation.
    pub eval_edges: Vec<(NodeId, NodeId)>,
}

impl GroundTruth {
    fn from_sessions(sessions: &[SessionRecord], graph: &HeteroGraph) -> Self {
        let mut q2i: HashMap<NodeId, HashMap<NodeId, u32>> = HashMap::new();
        let mut q2a: HashMap<NodeId, HashMap<NodeId, u32>> = HashMap::new();
        let mut eval_edges = Vec::new();
        for s in sessions {
            for &c in &s.clicks {
                eval_edges.push((s.query, c));
                match graph.node_type(c) {
                    NodeType::Item => *q2i.entry(s.query).or_default().entry(c).or_default() += 1,
                    NodeType::Ad => *q2a.entry(s.query).or_default().entry(c).or_default() += 1,
                    NodeType::Query => {}
                }
            }
        }
        let sort = |m: HashMap<NodeId, HashMap<NodeId, u32>>| {
            m.into_iter()
                .map(|(q, counts)| {
                    let mut v: Vec<(NodeId, u32)> = counts.into_iter().collect();
                    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    (q, v)
                })
                .collect()
        };
        GroundTruth {
            q2i: sort(q2i),
            q2a: sort(q2a),
            eval_edges,
        }
    }

    /// Number of queries with at least one next-day item click.
    pub fn num_queries_with_item_clicks(&self) -> usize {
        self.q2i.len()
    }

    /// Number of queries with at least one next-day ad click.
    pub fn num_queries_with_ad_clicks(&self) -> usize {
        self.q2a.len()
    }
}

/// A fully generated dataset: the latent world, the interaction graph built
/// from training logs, the raw session logs and next-day ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The latent world the logs were simulated from.
    pub world: World,
    /// The heterogeneous graph built from the training sessions.
    pub graph: HeteroGraph,
    /// Node id of each query entity (index-aligned with `world.queries`).
    pub query_nodes: Vec<NodeId>,
    /// Node id of each item entity (index-aligned with `world.items`).
    pub item_nodes: Vec<NodeId>,
    /// Node id of each ad entity (index-aligned with `world.ads`).
    pub ad_nodes: Vec<NodeId>,
    /// Training-window sessions.
    pub train_sessions: Vec<SessionRecord>,
    /// Evaluation-window (next-day) sessions.
    pub eval_sessions: Vec<SessionRecord>,
    /// Ground truth derived from the evaluation window.
    pub ground_truth: GroundTruth,
}

impl Dataset {
    /// Generate a dataset from a configuration (deterministic in the seed).
    pub fn generate(config: &WorldConfig) -> Dataset {
        let world = World::generate(config);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // --- register every entity as a graph node ---------------------------
        let mut builder = GraphBuilder::new();
        let query_nodes: Vec<NodeId> = world
            .queries
            .iter()
            .map(|q| {
                builder.add_node(
                    NodeType::Query,
                    NodeFeatures::query(q.category, q.terms.clone()),
                )
            })
            .collect();
        let item_nodes: Vec<NodeId> = world
            .items
            .iter()
            .map(|it| {
                builder.add_node(
                    NodeType::Item,
                    NodeFeatures::item(it.category, it.terms.clone(), it.brand, it.shop),
                )
            })
            .collect();
        let ad_nodes: Vec<NodeId> = world
            .ads
            .iter()
            .map(|ad| {
                builder.add_node(
                    NodeType::Ad,
                    NodeFeatures::ad(
                        ad.category,
                        ad.terms.clone(),
                        ad.brand,
                        ad.shop,
                        ad.bid_words.clone(),
                    ),
                )
            })
            .collect();

        // --- simulate behaviour logs -----------------------------------------
        let train_sessions = simulate_sessions(
            &world,
            &query_nodes,
            &item_nodes,
            &ad_nodes,
            config.train_sessions,
            &mut rng,
        );
        let eval_sessions = simulate_sessions(
            &world,
            &query_nodes,
            &item_nodes,
            &ad_nodes,
            config.eval_sessions,
            &mut rng,
        );

        // --- build the graph from the training window ------------------------
        for s in &train_sessions {
            builder.ingest_session(s);
        }
        builder.add_query_coclick_edges(&train_sessions, 64);
        builder.add_semantic_edges(config.semantic_threshold);
        builder.add_cobid_edges();
        let graph = builder.build();

        let ground_truth = GroundTruth::from_sessions(&eval_sessions, &graph);

        Dataset {
            world,
            graph,
            query_nodes,
            item_nodes,
            ad_nodes,
            train_sessions,
            eval_sessions,
            ground_truth,
        }
    }

    /// Map a graph node back to its entity and return the ground-truth
    /// relevance of `target` (item or ad node) for `query` (query node).
    ///
    /// Returns 0 for pairs that are not (query, product).
    pub fn relevance(&self, query: NodeId, target: NodeId) -> f64 {
        let Some(q_idx) = self.query_index(query) else {
            return 0.0;
        };
        if let Some(i_idx) = self.item_index(target) {
            return self.world.relevance(q_idx, ProductRef::Item(i_idx));
        }
        if let Some(a_idx) = self.ad_index(target) {
            return self.world.relevance(q_idx, ProductRef::Ad(a_idx));
        }
        0.0
    }

    /// Entity index of a query node, if `node` is a query.
    pub fn query_index(&self, node: NodeId) -> Option<usize> {
        let idx = node.index();
        if idx < self.query_nodes.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Entity index of an item node, if `node` is an item.
    pub fn item_index(&self, node: NodeId) -> Option<usize> {
        let idx = node.index();
        let start = self.query_nodes.len();
        if idx >= start && idx < start + self.item_nodes.len() {
            Some(idx - start)
        } else {
            None
        }
    }

    /// Entity index of an ad node, if `node` is an ad.
    pub fn ad_index(&self, node: NodeId) -> Option<usize> {
        let idx = node.index();
        let start = self.query_nodes.len() + self.item_nodes.len();
        if idx >= start && idx < start + self.ad_nodes.len() {
            Some(idx - start)
        } else {
            None
        }
    }

    /// Bid price of an ad node (used by the RPM computation).
    pub fn bid_price(&self, ad_node: NodeId) -> f64 {
        self.ad_index(ad_node)
            .map(|i| self.world.ads[i].bid_price)
            .unwrap_or(0.0)
    }

    /// The pre-click items of a simulated request: for a given evaluation
    /// session, the items (not ads) the user clicked — used as the `P` list
    /// of the two-layer online retrieval input.
    pub fn preclick_items(&self, session: &SessionRecord) -> Vec<NodeId> {
        session
            .clicks
            .iter()
            .copied()
            .filter(|c| self.graph.node_type(*c) == NodeType::Item)
            .collect()
    }
}

/// Simulate `count` user search sessions against the latent world.
fn simulate_sessions(
    world: &World,
    query_nodes: &[NodeId],
    item_nodes: &[NodeId],
    ad_nodes: &[NodeId],
    count: usize,
    rng: &mut StdRng,
) -> Vec<SessionRecord> {
    // Pre-index products per category for candidate generation.
    let num_categories = world.config.num_categories;
    let mut items_by_cat: Vec<Vec<usize>> = vec![Vec::new(); num_categories];
    for (i, it) in world.items.iter().enumerate() {
        items_by_cat[it.category as usize].push(i);
    }
    let mut ads_by_cat: Vec<Vec<usize>> = vec![Vec::new(); num_categories];
    for (i, ad) in world.ads.iter().enumerate() {
        ads_by_cat[ad.category as usize].push(i);
    }
    let mut queries_by_cat: Vec<Vec<usize>> = vec![Vec::new(); num_categories];
    for (i, q) in world.queries.iter().enumerate() {
        queries_by_cat[q.category as usize].push(i);
    }

    let mut sessions = Vec::with_capacity(count);
    for _ in 0..count {
        let user_id = rng.gen_range(0..world.users.len());
        let user = &world.users[user_id];
        let cat = user.interests[rng.gen_range(0..user.interests.len())] as usize;
        let q_pool = &queries_by_cat[cat];
        if q_pool.is_empty() {
            continue;
        }
        // Broad queries are searched more often than narrow ones.
        let q_idx = loop {
            let cand = q_pool[rng.gen_range(0..q_pool.len())];
            let level = world.queries[cand].level;
            let keep_prob = match level {
                0 => 1.0,
                1 => 0.7,
                _ => 0.45,
            };
            if rng.gen_bool(keep_prob) {
                break cand;
            }
        };

        // Candidate products: same category, occasionally a sibling category.
        let browse_cat = if rng.gen_bool(0.1) && num_categories > 1 {
            (cat + 1) % num_categories // sibling category
        } else {
            cat
        };
        let num_clicks = rng.gen_range(1..=world.config.max_clicks_per_session);
        let mut clicks = Vec::with_capacity(num_clicks);
        for _ in 0..num_clicks {
            // 25% of clicks land on ads (sponsored slots), the rest on items.
            let is_ad = rng.gen_bool(0.25) && !ads_by_cat[browse_cat].is_empty();
            let (pool, nodes): (&Vec<usize>, &[NodeId]) = if is_ad {
                (&ads_by_cat[browse_cat], ad_nodes)
            } else {
                (&items_by_cat[browse_cat], item_nodes)
            };
            if pool.is_empty() {
                continue;
            }
            // Relevance-proportional click choice (rejection sampling).
            let mut chosen = None;
            for _ in 0..12 {
                let cand = pool[rng.gen_range(0..pool.len())];
                let rel = world.relevance(
                    q_idx,
                    if is_ad {
                        ProductRef::Ad(cand)
                    } else {
                        ProductRef::Item(cand)
                    },
                );
                if rng.gen_bool(rel.clamp(0.02, 1.0)) {
                    chosen = Some(cand);
                    break;
                }
            }
            if let Some(c) = chosen {
                let node = nodes[c];
                if !clicks.contains(&node) {
                    clicks.push(node);
                }
            }
        }
        if clicks.is_empty() {
            continue;
        }
        sessions.push(SessionRecord {
            user: user_id as u32,
            query: query_nodes[q_idx],
            clicks,
        });
    }
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_graph::Relation;

    fn tiny_dataset() -> Dataset {
        Dataset::generate(&WorldConfig::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&WorldConfig::tiny(7));
        let b = Dataset::generate(&WorldConfig::tiny(7));
        assert_eq!(a.train_sessions, b.train_sessions);
        assert_eq!(a.eval_sessions, b.eval_sessions);
        assert_eq!(a.graph.stats(), b.graph.stats());
    }

    #[test]
    fn node_index_ranges_are_contiguous_and_typed() {
        let d = tiny_dataset();
        for (i, &n) in d.query_nodes.iter().enumerate() {
            assert_eq!(d.graph.node_type(n), NodeType::Query);
            assert_eq!(d.query_index(n), Some(i));
            assert_eq!(d.item_index(n), None);
        }
        for (i, &n) in d.item_nodes.iter().enumerate() {
            assert_eq!(d.graph.node_type(n), NodeType::Item);
            assert_eq!(d.item_index(n), Some(i));
        }
        for (i, &n) in d.ad_nodes.iter().enumerate() {
            assert_eq!(d.graph.node_type(n), NodeType::Ad);
            assert_eq!(d.ad_index(n), Some(i));
        }
    }

    #[test]
    fn graph_has_all_four_relations() {
        let d = tiny_dataset();
        for r in Relation::ALL {
            assert!(
                d.graph.num_edges(r) > 0,
                "relation {r:?} should have edges in the tiny dataset"
            );
        }
    }

    #[test]
    fn sessions_click_mostly_relevant_products() {
        let d = tiny_dataset();
        let mut rel_sum = 0.0;
        let mut count = 0usize;
        for s in &d.train_sessions {
            for &c in &s.clicks {
                rel_sum += d.relevance(s.query, c);
                count += 1;
            }
        }
        let mean_clicked = rel_sum / count as f64;
        // Mean relevance of random (query, item) pairs for comparison.
        let mut rng = StdRng::seed_from_u64(1);
        let mut rand_sum = 0.0;
        let n_rand = 2_000;
        for _ in 0..n_rand {
            let q = d.query_nodes[rng.gen_range(0..d.query_nodes.len())];
            let it = d.item_nodes[rng.gen_range(0..d.item_nodes.len())];
            rand_sum += d.relevance(q, it);
        }
        let mean_random = rand_sum / n_rand as f64;
        assert!(
            mean_clicked > mean_random * 2.0,
            "clicked relevance {mean_clicked} should clearly exceed random {mean_random}"
        );
    }

    #[test]
    fn ground_truth_is_sorted_by_click_count() {
        let d = tiny_dataset();
        assert!(d.ground_truth.num_queries_with_item_clicks() > 0);
        assert!(!d.ground_truth.eval_edges.is_empty());
        for list in d
            .ground_truth
            .q2i
            .values()
            .chain(d.ground_truth.q2a.values())
        {
            for w in list.windows(2) {
                assert!(w[0].1 >= w[1].1, "ground truth must be sorted descending");
            }
        }
    }

    #[test]
    fn ground_truth_types_are_consistent() {
        let d = tiny_dataset();
        for (q, list) in &d.ground_truth.q2i {
            assert_eq!(d.graph.node_type(*q), NodeType::Query);
            for (n, _) in list {
                assert_eq!(d.graph.node_type(*n), NodeType::Item);
            }
        }
        for (q, list) in &d.ground_truth.q2a {
            assert_eq!(d.graph.node_type(*q), NodeType::Query);
            for (n, _) in list {
                assert_eq!(d.graph.node_type(*n), NodeType::Ad);
            }
        }
    }

    #[test]
    fn bid_prices_are_positive_for_ads_and_zero_otherwise() {
        let d = tiny_dataset();
        assert!(d.bid_price(d.ad_nodes[0]) > 0.0);
        assert_eq!(d.bid_price(d.item_nodes[0]), 0.0);
        assert_eq!(d.bid_price(d.query_nodes[0]), 0.0);
    }

    #[test]
    fn preclick_items_filters_out_ads() {
        let d = tiny_dataset();
        let session = d
            .eval_sessions
            .iter()
            .find(|s| !s.clicks.is_empty())
            .unwrap();
        let pre = d.preclick_items(session);
        for p in pre {
            assert_eq!(d.graph.node_type(p), NodeType::Item);
        }
    }

    #[test]
    fn relevance_of_unrelated_node_kinds_is_zero() {
        let d = tiny_dataset();
        // target is a query → 0
        assert_eq!(d.relevance(d.query_nodes[0], d.query_nodes[1]), 0.0);
        // source is an item → 0
        assert_eq!(d.relevance(d.item_nodes[0], d.item_nodes[1]), 0.0);
    }
}
