//! Configuration and scale presets for the synthetic e-commerce world.
//!
//! The paper evaluates on Taobao behaviour logs whose size ranges from
//! "1 hour" (2.7M nodes) to "7 days" (300M nodes, Table IX).  Those logs are
//! proprietary and far beyond laptop scale, so the generator exposes the
//! same *relative* scale ladder at a few thousand nodes: each preset keeps
//! the paper's rough proportions between queries, items, ads and the edge /
//! node ratio, so scaling experiments (Table IX) retain their shape.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic world and behaviour simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// RNG seed; every derived artefact is deterministic given the seed.
    pub seed: u64,
    /// Number of leaf categories in the category tree.
    pub num_categories: usize,
    /// Branching factor of the (3-level) category tree.
    pub category_branching: usize,
    /// Queries generated per leaf category.
    pub queries_per_category: usize,
    /// Items generated per leaf category.
    pub items_per_category: usize,
    /// Ads generated per leaf category.
    pub ads_per_category: usize,
    /// Number of simulated users.
    pub num_users: usize,
    /// Number of search sessions to simulate for the *training* window.
    pub train_sessions: usize,
    /// Number of search sessions to simulate for the *evaluation* (next-day)
    /// window.
    pub eval_sessions: usize,
    /// Maximum clicks per session.
    pub max_clicks_per_session: usize,
    /// Vocabulary terms per category (query/item/ad titles draw from these).
    pub terms_per_category: usize,
    /// Bid keywords per category.
    pub keywords_per_category: usize,
    /// Number of brands across the world.
    pub num_brands: usize,
    /// Number of shops across the world.
    pub num_shops: usize,
    /// Jaccard threshold for semantic (query–query) edges.
    pub semantic_threshold: f64,
    /// Number of co-click "style clusters" per category: items/ads inside a
    /// cluster are frequently co-clicked, planting the cyclic structure the
    /// spherical subspace should capture.
    pub clusters_per_category: usize,
}

impl WorldConfig {
    /// A minimal world for unit tests (hundreds of nodes, very fast).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_categories: 4,
            category_branching: 2,
            queries_per_category: 12,
            items_per_category: 16,
            ads_per_category: 6,
            num_users: 40,
            train_sessions: 800,
            eval_sessions: 300,
            max_clicks_per_session: 4,
            terms_per_category: 14,
            keywords_per_category: 6,
            num_brands: 12,
            num_shops: 16,
            semantic_threshold: 0.34,
            clusters_per_category: 3,
        }
    }

    /// The default offline-evaluation world (≈ a few thousand nodes) —
    /// plays the role of the paper's "1 day" log window.
    pub fn one_day(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_categories: 12,
            category_branching: 3,
            queries_per_category: 40,
            items_per_category: 60,
            ads_per_category: 12,
            num_users: 400,
            train_sessions: 12_000,
            eval_sessions: 4_000,
            max_clicks_per_session: 5,
            terms_per_category: 24,
            keywords_per_category: 10,
            num_brands: 60,
            num_shops: 90,
            semantic_threshold: 0.34,
            clusters_per_category: 4,
        }
    }

    /// Scale a configuration's node and session counts by `factor` (used by
    /// the Table IX scalability sweep: 1 hour / 1 day / 3 days / 7 days).
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |x: usize| ((x as f64 * factor).round() as usize).max(1);
        WorldConfig {
            seed: self.seed,
            num_categories: scale(self.num_categories),
            queries_per_category: self.queries_per_category,
            items_per_category: self.items_per_category,
            ads_per_category: self.ads_per_category,
            num_users: scale(self.num_users),
            train_sessions: scale(self.train_sessions),
            eval_sessions: scale(self.eval_sessions),
            ..self.clone()
        }
    }

    /// Scale ladder mirroring Table IX: (label, config) pairs of increasing
    /// size.
    pub fn scale_ladder(seed: u64) -> Vec<(&'static str, WorldConfig)> {
        let base = WorldConfig::one_day(seed);
        vec![
            ("1 hour", base.scaled(1.0 / 24.0)),
            ("1 day", base.clone()),
            ("3 days", base.scaled(3.0)),
            ("7 days", base.scaled(7.0)),
        ]
    }

    /// Expected total number of entities (before session simulation).
    pub fn expected_nodes(&self) -> usize {
        self.num_categories
            * (self.queries_per_category + self.items_per_category + self.ads_per_category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_proportions() {
        for cfg in [WorldConfig::tiny(1), WorldConfig::one_day(1)] {
            assert!(cfg.items_per_category >= cfg.ads_per_category);
            assert!(cfg.train_sessions > cfg.eval_sessions);
            assert!(cfg.expected_nodes() > 0);
            assert!(cfg.semantic_threshold > 0.0 && cfg.semantic_threshold < 1.0);
        }
    }

    #[test]
    fn scaling_changes_session_and_category_counts() {
        let base = WorldConfig::one_day(7);
        let bigger = base.scaled(3.0);
        assert_eq!(bigger.num_categories, base.num_categories * 3);
        assert_eq!(bigger.train_sessions, base.train_sessions * 3);
        // per-category density is unchanged
        assert_eq!(bigger.items_per_category, base.items_per_category);
    }

    #[test]
    fn scale_ladder_is_monotone_in_expected_nodes() {
        let ladder = WorldConfig::scale_ladder(3);
        assert_eq!(ladder.len(), 4);
        let sizes: Vec<usize> = ladder.iter().map(|(_, c)| c.expected_nodes()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "{sizes:?}");
        }
    }
}
