//! The heterogeneous interaction graph and its builder.
//!
//! [`GraphBuilder`] implements the construction pipeline of Section IV-A.1:
//! behavioural edges (click / co-click) are derived from search sessions,
//! non-behavioural edges (semantic similarity, co-bidding) from node
//! features.  The finished [`HeteroGraph`] stores one CSR adjacency
//! structure per relation and supports the neighbour queries the model and
//! samplers need.

use std::collections::{HashMap, HashSet};

use rand::seq::SliceRandom;
use rand::Rng;

use crate::types::{NodeFeatures, NodeId, NodeType, Relation, SessionRecord};

/// Compressed sparse-row adjacency for one relation.
#[derive(Debug, Clone, Default)]
struct CsrAdj {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
}

impl CsrAdj {
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    fn weights_of(&self, node: NodeId) -> &[f64] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.weights[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Summary statistics of a built graph (used by the Table V experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of query nodes.
    pub queries: usize,
    /// Number of item nodes.
    pub items: usize,
    /// Number of ad nodes.
    pub ads: usize,
    /// Number of directed edges per relation (both directions counted).
    pub edges_per_relation: [usize; 4],
}

impl GraphStats {
    /// Total number of nodes.
    pub fn total_nodes(&self) -> usize {
        self.queries + self.items + self.ads
    }

    /// Total number of directed edges over all relations.
    pub fn total_edges(&self) -> usize {
        self.edges_per_relation.iter().sum()
    }
}

/// The finished heterogeneous query–item–ad interaction graph.
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    node_types: Vec<NodeType>,
    features: Vec<NodeFeatures>,
    adj: [CsrAdj; 4],
    nodes_by_type: [Vec<NodeId>; 3],
    nodes_by_type_category: HashMap<(NodeType, u32), Vec<NodeId>>,
}

impl HeteroGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Number of directed edges of one relation.
    pub fn num_edges(&self, relation: Relation) -> usize {
        self.adj[relation.index()].targets.len()
    }

    /// Total number of directed edges.
    pub fn total_edges(&self) -> usize {
        Relation::ALL.iter().map(|r| self.num_edges(*r)).sum()
    }

    /// Type of a node.
    #[inline]
    pub fn node_type(&self, node: NodeId) -> NodeType {
        self.node_types[node.index()]
    }

    /// Features of a node.
    #[inline]
    pub fn features(&self, node: NodeId) -> &NodeFeatures {
        &self.features[node.index()]
    }

    /// Leaf category of a node.
    #[inline]
    pub fn category(&self, node: NodeId) -> u32 {
        self.features[node.index()].category
    }

    /// Neighbours of `node` under one relation.
    pub fn neighbors(&self, node: NodeId, relation: Relation) -> &[NodeId] {
        self.adj[relation.index()].neighbors(node)
    }

    /// Edge weights parallel to [`Self::neighbors`].
    pub fn neighbor_weights(&self, node: NodeId, relation: Relation) -> &[f64] {
        self.adj[relation.index()].weights_of(node)
    }

    /// Neighbours of `node` over all relations (may contain duplicates if a
    /// pair is connected by several relations).
    pub fn neighbors_all(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for r in Relation::ALL {
            out.extend_from_slice(self.neighbors(node, r));
        }
        out
    }

    /// Degree of a node under one relation.
    pub fn degree(&self, node: NodeId, relation: Relation) -> usize {
        self.neighbors(node, relation).len()
    }

    /// Total degree of a node over all relations.
    pub fn total_degree(&self, node: NodeId) -> usize {
        Relation::ALL.iter().map(|r| self.degree(node, *r)).sum()
    }

    /// All nodes of a given type.
    pub fn nodes_of_type(&self, t: NodeType) -> &[NodeId] {
        &self.nodes_by_type[t.index()]
    }

    /// All nodes of a given type and leaf category.
    pub fn nodes_of_type_category(&self, t: NodeType, category: u32) -> &[NodeId] {
        self.nodes_by_type_category
            .get(&(t, category))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All node ids, in id order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Whether `a` and `b` are connected by `relation` (either direction —
    /// edges are stored symmetrically).
    pub fn has_edge(&self, a: NodeId, b: NodeId, relation: Relation) -> bool {
        self.neighbors(a, relation).contains(&b)
    }

    /// Sample up to `fanout` neighbours of `node` of the requested type over
    /// all relations (with replacement avoided when enough exist).  Used by
    /// the GCN context encoder.
    pub fn sample_neighbors_of_type<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        neighbor_type: NodeType,
        fanout: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let candidates: Vec<NodeId> = self
            .neighbors_all(node)
            .into_iter()
            .filter(|n| self.node_type(*n) == neighbor_type)
            .collect();
        if candidates.is_empty() || fanout == 0 {
            return Vec::new();
        }
        if candidates.len() <= fanout {
            return candidates;
        }
        candidates.choose_multiple(rng, fanout).copied().collect()
    }

    /// Sample one neighbour of `node` under `relation`, optionally
    /// constrained to a target node type.  Returns `None` on a dead end.
    pub fn sample_neighbor<R: Rng + ?Sized>(
        &self,
        node: NodeId,
        relation: Relation,
        target_type: Option<NodeType>,
        rng: &mut R,
    ) -> Option<NodeId> {
        let neigh = self.neighbors(node, relation);
        if neigh.is_empty() {
            return None;
        }
        // Rejection sample a few times before scanning (most relations are
        // type-homogeneous so the first draw usually succeeds).
        for _ in 0..4 {
            let cand = neigh[rng.gen_range(0..neigh.len())];
            match target_type {
                None => return Some(cand),
                Some(t) if self.node_type(cand) == t => return Some(cand),
                _ => {}
            }
        }
        let filtered: Vec<NodeId> = neigh
            .iter()
            .copied()
            .filter(|n| target_type.is_none_or(|t| self.node_type(*n) == t))
            .collect();
        filtered.choose(rng).copied()
    }

    /// Summary statistics (Table V).
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            queries: self.nodes_of_type(NodeType::Query).len(),
            items: self.nodes_of_type(NodeType::Item).len(),
            ads: self.nodes_of_type(NodeType::Ad).len(),
            edges_per_relation: [
                self.num_edges(Relation::Click),
                self.num_edges(Relation::CoClick),
                self.num_edges(Relation::Semantic),
                self.num_edges(Relation::CoBid),
            ],
        }
    }

    /// Distinct leaf categories present in the graph.
    pub fn categories(&self) -> Vec<u32> {
        let mut cats: Vec<u32> = self
            .nodes_by_type_category
            .keys()
            .map(|(_, c)| *c)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        cats.sort_unstable();
        cats
    }
}

/// Incremental builder for [`HeteroGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    node_types: Vec<NodeType>,
    features: Vec<NodeFeatures>,
    // (src, dst, weight) per relation; stored as directed pairs, both
    // directions inserted by `add_edge`.
    edges: [Vec<(NodeId, NodeId, f64)>; 4],
    edge_seen: [HashSet<(u32, u32)>; 4],
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        GraphBuilder::default()
    }

    /// Register a node and return its id.
    pub fn add_node(&mut self, node_type: NodeType, features: NodeFeatures) -> NodeId {
        let id = NodeId(self.node_types.len() as u32);
        self.node_types.push(node_type);
        self.features.push(features);
        id
    }

    /// Number of nodes registered so far.
    pub fn num_nodes(&self) -> usize {
        self.node_types.len()
    }

    /// Add an undirected edge (both directions) of the given relation.
    /// Duplicate edges accumulate weight instead of being stored twice.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, relation: Relation, weight: f64) {
        if a == b {
            return;
        }
        let r = relation.index();
        let key = (a.0.min(b.0), a.0.max(b.0));
        if self.edge_seen[r].insert(key) {
            self.edges[r].push((a, b, weight));
            self.edges[r].push((b, a, weight));
        } else {
            // accumulate weight on the existing pair
            for (src, dst, w) in self.edges[r].iter_mut() {
                if (src.0 == key.0 && dst.0 == key.1) || (src.0 == key.1 && dst.0 == key.0) {
                    *w += weight;
                }
            }
        }
    }

    /// Ingest one search session (Section IV-A.1, "Clicking/Co-clicking
    /// edges"): the query is linked to every clicked node with a click edge,
    /// and adjacent clicked nodes are linked with co-click edges.
    pub fn ingest_session(&mut self, session: &SessionRecord) {
        for &clicked in &session.clicks {
            self.add_edge(session.query, clicked, Relation::Click, 1.0);
        }
        for pair in session.clicks.windows(2) {
            self.add_edge(pair[0], pair[1], Relation::CoClick, 1.0);
        }
    }

    /// Link queries that share a clicked product with a query–query co-click
    /// edge (this realises the `q —co-click→ q` meta-path step of Table III).
    ///
    /// `max_pairs_per_node` bounds the quadratic blow-up on very popular
    /// products.
    pub fn add_query_coclick_edges(
        &mut self,
        sessions: &[SessionRecord],
        max_pairs_per_node: usize,
    ) {
        let mut clicked_by: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for s in sessions {
            for &c in &s.clicks {
                let qs = clicked_by.entry(c).or_default();
                if !qs.contains(&s.query) {
                    qs.push(s.query);
                }
            }
        }
        // HashMap iteration order is nondeterministic; sort so edge
        // insertion (and thus the adjacency order seen by seeded
        // samplers) is reproducible across runs
        let mut clicked: Vec<(NodeId, Vec<NodeId>)> = clicked_by.into_iter().collect();
        clicked.sort_unstable_by_key(|(node, _)| *node);
        for (_node, queries) in clicked {
            let mut added = 0;
            'outer: for i in 0..queries.len() {
                for j in (i + 1)..queries.len() {
                    self.add_edge(queries[i], queries[j], Relation::CoClick, 1.0);
                    added += 1;
                    if added >= max_pairs_per_node {
                        break 'outer;
                    }
                }
            }
        }
    }

    /// Add semantic-similarity edges between queries whose term Jaccard
    /// similarity is at least `threshold` (Section IV-A.1, "Semantic
    /// similarity edges").  Uses an inverted term index so only queries
    /// sharing at least one term are compared.
    pub fn add_semantic_edges(&mut self, threshold: f64) {
        let query_ids: Vec<NodeId> = (0..self.node_types.len() as u32)
            .map(NodeId)
            .filter(|n| self.node_types[n.index()] == NodeType::Query)
            .collect();
        let mut by_term: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &q in &query_ids {
            for &t in &self.features[q.index()].terms {
                by_term.entry(t).or_default().push(q);
            }
        }
        let mut candidate_pairs: HashSet<(u32, u32)> = HashSet::new();
        for queries in by_term.values() {
            for i in 0..queries.len() {
                for j in (i + 1)..queries.len() {
                    let a = queries[i].0.min(queries[j].0);
                    let b = queries[i].0.max(queries[j].0);
                    candidate_pairs.insert((a, b));
                }
            }
        }
        // sorted for run-to-run reproducibility (HashSet order varies)
        let mut pairs: Vec<(u32, u32)> = candidate_pairs.into_iter().collect();
        pairs.sort_unstable();
        for (a, b) in pairs {
            let ta = &self.features[a as usize].terms;
            let tb = &self.features[b as usize].terms;
            let sim = jaccard(ta, tb);
            if sim >= threshold {
                self.add_edge(NodeId(a), NodeId(b), Relation::Semantic, sim);
            }
        }
    }

    /// Add co-bidding edges between ads that bid on at least one common
    /// keyword (Section IV-A.1, "Co-bidding edges").
    pub fn add_cobid_edges(&mut self) {
        let ad_ids: Vec<NodeId> = (0..self.node_types.len() as u32)
            .map(NodeId)
            .filter(|n| self.node_types[n.index()] == NodeType::Ad)
            .collect();
        let mut by_keyword: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for &a in &ad_ids {
            for &k in &self.features[a.index()].bid_words {
                by_keyword.entry(k).or_default().push(a);
            }
        }
        // sorted for run-to-run reproducibility (HashMap order varies)
        let mut keywords: Vec<u32> = by_keyword.keys().copied().collect();
        keywords.sort_unstable();
        for k in keywords {
            let ads = &by_keyword[&k];
            for i in 0..ads.len() {
                for j in (i + 1)..ads.len() {
                    self.add_edge(ads[i], ads[j], Relation::CoBid, 1.0);
                }
            }
        }
    }

    /// Finalise the graph into CSR form.
    pub fn build(self) -> HeteroGraph {
        let n = self.node_types.len();
        let mut adj: [CsrAdj; 4] = Default::default();
        for (r, edges) in self.edges.iter().enumerate() {
            let mut per_node: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
            for &(src, dst, w) in edges {
                per_node[src.index()].push((dst, w));
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(edges.len());
            let mut weights = Vec::with_capacity(edges.len());
            offsets.push(0);
            for list in per_node {
                for (dst, w) in list {
                    targets.push(dst);
                    weights.push(w);
                }
                offsets.push(targets.len());
            }
            adj[r] = CsrAdj {
                offsets,
                targets,
                weights,
            };
        }

        let mut nodes_by_type: [Vec<NodeId>; 3] = Default::default();
        let mut nodes_by_type_category: HashMap<(NodeType, u32), Vec<NodeId>> = HashMap::new();
        for (i, t) in self.node_types.iter().enumerate() {
            let id = NodeId(i as u32);
            nodes_by_type[t.index()].push(id);
            nodes_by_type_category
                .entry((*t, self.features[i].category))
                .or_default()
                .push(id);
        }

        HeteroGraph {
            node_types: self.node_types,
            features: self.features,
            adj,
            nodes_by_type,
            nodes_by_type_category,
        }
    }
}

/// Jaccard similarity between two term-ID sets (represented as slices; the
/// generator keeps them sorted but this does not rely on ordering).
pub fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: HashSet<u32> = a.iter().copied().collect();
    let sb: HashSet<u32> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_graph() -> (HeteroGraph, Vec<NodeId>) {
        // q0, q1 (queries), i0, i1 (items), a0 (ad)
        let mut b = GraphBuilder::new();
        let q0 = b.add_node(NodeType::Query, NodeFeatures::query(1, vec![10, 11]));
        let q1 = b.add_node(NodeType::Query, NodeFeatures::query(1, vec![10, 12]));
        let i0 = b.add_node(NodeType::Item, NodeFeatures::item(1, vec![10], 1, 1));
        let i1 = b.add_node(NodeType::Item, NodeFeatures::item(2, vec![13], 2, 2));
        let a0 = b.add_node(NodeType::Ad, NodeFeatures::ad(1, vec![10], 1, 1, vec![100]));
        let a1 = b.add_node(
            NodeType::Ad,
            NodeFeatures::ad(1, vec![11], 1, 2, vec![100, 101]),
        );
        let session = SessionRecord {
            user: 0,
            query: q0,
            clicks: vec![i0, a0, i1],
        };
        b.ingest_session(&session);
        let session2 = SessionRecord {
            user: 1,
            query: q1,
            clicks: vec![i0],
        };
        b.ingest_session(&session2);
        b.add_query_coclick_edges(&[session, session2], 16);
        b.add_semantic_edges(0.3);
        b.add_cobid_edges();
        (b.build(), vec![q0, q1, i0, i1, a0, a1])
    }

    #[test]
    fn session_ingestion_creates_click_and_coclick_edges() {
        let (g, ids) = tiny_graph();
        let (q0, _q1, i0, i1, a0) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        assert!(g.has_edge(q0, i0, Relation::Click));
        assert!(g.has_edge(q0, a0, Relation::Click));
        assert!(g.has_edge(q0, i1, Relation::Click));
        // adjacent clicks: (i0, a0) and (a0, i1)
        assert!(g.has_edge(i0, a0, Relation::CoClick));
        assert!(g.has_edge(a0, i1, Relation::CoClick));
        assert!(!g.has_edge(i0, i1, Relation::CoClick));
    }

    #[test]
    fn query_coclick_edges_link_queries_sharing_a_click() {
        let (g, ids) = tiny_graph();
        assert!(g.has_edge(ids[0], ids[1], Relation::CoClick));
    }

    #[test]
    fn semantic_edges_respect_jaccard_threshold() {
        let (g, ids) = tiny_graph();
        // q0 terms {10,11}, q1 terms {10,12} → Jaccard 1/3 ≥ 0.3
        assert!(g.has_edge(ids[0], ids[1], Relation::Semantic));
    }

    #[test]
    fn cobid_edges_link_ads_sharing_keywords() {
        let (g, ids) = tiny_graph();
        assert!(g.has_edge(ids[4], ids[5], Relation::CoBid));
    }

    #[test]
    fn edges_are_symmetric() {
        let (g, ids) = tiny_graph();
        for r in Relation::ALL {
            for &a in &ids {
                for &b in g.neighbors(a, r) {
                    assert!(
                        g.has_edge(b, a, r),
                        "missing reverse edge {a:?} {b:?} {r:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let mut b = GraphBuilder::new();
        let q = b.add_node(NodeType::Query, NodeFeatures::query(0, vec![]));
        let i = b.add_node(NodeType::Item, NodeFeatures::item(0, vec![], 0, 0));
        b.add_edge(q, i, Relation::Click, 1.0);
        b.add_edge(q, i, Relation::Click, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(Relation::Click), 2); // one undirected edge, two directions
        assert_eq!(g.neighbor_weights(q, Relation::Click), &[2.0]);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut b = GraphBuilder::new();
        let q = b.add_node(NodeType::Query, NodeFeatures::query(0, vec![]));
        b.add_edge(q, q, Relation::Click, 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(Relation::Click), 0);
    }

    #[test]
    fn stats_count_nodes_and_edges() {
        let (g, _) = tiny_graph();
        let s = g.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.items, 2);
        assert_eq!(s.ads, 2);
        assert_eq!(s.total_nodes(), 6);
        assert_eq!(s.total_edges(), g.total_edges());
        assert!(s.total_edges() > 0);
    }

    #[test]
    fn nodes_by_type_and_category_lookup() {
        let (g, ids) = tiny_graph();
        assert_eq!(g.nodes_of_type(NodeType::Query).len(), 2);
        let items_cat1 = g.nodes_of_type_category(NodeType::Item, 1);
        assert_eq!(items_cat1, &[ids[2]]);
        assert_eq!(
            g.nodes_of_type_category(NodeType::Item, 99),
            &[] as &[NodeId]
        );
        assert_eq!(g.categories(), vec![1, 2]);
    }

    #[test]
    fn neighbor_sampling_filters_by_type() {
        let (g, ids) = tiny_graph();
        let mut rng = StdRng::seed_from_u64(5);
        let sampled = g.sample_neighbors_of_type(ids[0], NodeType::Item, 10, &mut rng);
        assert!(!sampled.is_empty());
        assert!(sampled.iter().all(|n| g.node_type(*n) == NodeType::Item));
        let one = g.sample_neighbor(ids[0], Relation::Click, Some(NodeType::Ad), &mut rng);
        assert_eq!(one, Some(ids[4]));
        let none = g.sample_neighbor(ids[3], Relation::CoBid, None, &mut rng);
        assert_eq!(none, None);
    }

    #[test]
    fn jaccard_edge_cases() {
        assert_eq!(jaccard(&[], &[]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }
}
