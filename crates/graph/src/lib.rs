//! # amcad-graph
//!
//! Heterogeneous query–item–ad interaction graph engine — the in-process
//! substitute for Alibaba's distributed Euler graph engine that the paper
//! trains on.
//!
//! * [`HeteroGraph`] / [`GraphBuilder`]: typed nodes (query / item / ad),
//!   typed relations (click / co-click / semantic / co-bid), CSR adjacency,
//!   node features (Table IV), and the edge-construction rules of
//!   Section IV-A.1 (sessions → click & co-click edges, term Jaccard →
//!   semantic edges, shared bid keywords → co-bid edges).
//! * [`AliasTable`]: Walker's alias method for O(1) weighted sampling.
//! * [`MetaPathSampler`]: meta-path guided random walks (Table III),
//!   same-category positive pair extraction and hard/easy negative sampling
//!   (Section IV-A.2).

pub mod alias;
pub mod graph;
pub mod sampling;
pub mod types;

pub use alias::AliasTable;
pub use graph::{jaccard, GraphBuilder, GraphStats, HeteroGraph};
pub use sampling::{MetaPath, MetaPathSampler, MetaPathStep, SamplerConfig, TrainSample};
pub use types::{NodeFeatures, NodeId, NodeType, Relation, SessionRecord};
