//! Node / edge typing and feature records for the query–item–ad graph.

use serde::{Deserialize, Serialize};

/// Identifier of a node in the heterogeneous graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The three entity types of the interaction graph (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// A search query posed by users.
    Query,
    /// An organic product.
    Item,
    /// A sponsored advertisement.
    Ad,
}

impl NodeType {
    /// All node types, in a stable order.
    pub const ALL: [NodeType; 3] = [NodeType::Query, NodeType::Item, NodeType::Ad];

    /// Stable small index for array-indexed per-type storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            NodeType::Query => 0,
            NodeType::Item => 1,
            NodeType::Ad => 2,
        }
    }

    /// Short name used in reports ("query" / "item" / "ad").
    pub fn name(self) -> &'static str {
        match self {
            NodeType::Query => "query",
            NodeType::Item => "item",
            NodeType::Ad => "ad",
        }
    }
}

/// The four edge relations of the interaction graph (Section IV-A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// A user searched a query and clicked the target node.
    Click,
    /// Two nodes clicked adjacently under the same query, or two queries
    /// sharing a clicked product.
    CoClick,
    /// Two queries whose term Jaccard similarity exceeds a threshold.
    Semantic,
    /// Two ads bidding on at least one common keyword.
    CoBid,
}

impl Relation {
    /// All relations, in a stable order.
    pub const ALL: [Relation; 4] = [
        Relation::Click,
        Relation::CoClick,
        Relation::Semantic,
        Relation::CoBid,
    ];

    /// Stable small index for array-indexed per-relation storage.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Relation::Click => 0,
            Relation::CoClick => 1,
            Relation::Semantic => 2,
            Relation::CoBid => 3,
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Relation::Click => "click",
            Relation::CoClick => "co-click",
            Relation::Semantic => "semantic",
            Relation::CoBid => "co-bid",
        }
    }
}

/// Per-node features (Table IV of the paper).
///
/// All features are categorical IDs; the generator assigns them and the
/// model embeds each feature family in its own embedding table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFeatures {
    /// Leaf category in the platform category tree.
    pub category: u32,
    /// Term IDs of the query text / item title / ad title.
    pub terms: Vec<u32>,
    /// Brand ID (items and ads only).
    pub brand: Option<u32>,
    /// Shop ID (items and ads only).
    pub shop: Option<u32>,
    /// Bidding keyword IDs (ads only).
    pub bid_words: Vec<u32>,
}

impl NodeFeatures {
    /// Features of a query node.
    pub fn query(category: u32, terms: Vec<u32>) -> Self {
        NodeFeatures {
            category,
            terms,
            ..Default::default()
        }
    }

    /// Features of an item node.
    pub fn item(category: u32, terms: Vec<u32>, brand: u32, shop: u32) -> Self {
        NodeFeatures {
            category,
            terms,
            brand: Some(brand),
            shop: Some(shop),
            ..Default::default()
        }
    }

    /// Features of an ad node.
    pub fn ad(category: u32, terms: Vec<u32>, brand: u32, shop: u32, bid_words: Vec<u32>) -> Self {
        NodeFeatures {
            category,
            terms,
            brand: Some(brand),
            shop: Some(shop),
            bid_words,
        }
    }
}

/// One search session: a user posed `query` and clicked `clicks` in order.
///
/// This is the log record emitted by the behaviour-log generator and
/// consumed by the graph builder to create click / co-click edges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Anonymous user identifier.
    pub user: u32,
    /// The query node searched in this session.
    pub query: NodeId,
    /// Clicked item / ad nodes, in click order.
    pub clicks: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let t: Vec<usize> = NodeType::ALL.iter().map(|t| t.index()).collect();
        assert_eq!(t, vec![0, 1, 2]);
        let r: Vec<usize> = Relation::ALL.iter().map(|r| r.index()).collect();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn feature_constructors_populate_expected_fields() {
        let q = NodeFeatures::query(3, vec![1, 2]);
        assert_eq!(q.category, 3);
        assert!(q.brand.is_none());
        let i = NodeFeatures::item(4, vec![5], 9, 8);
        assert_eq!(i.brand, Some(9));
        assert_eq!(i.shop, Some(8));
        assert!(i.bid_words.is_empty());
        let a = NodeFeatures::ad(4, vec![5], 9, 8, vec![7]);
        assert_eq!(a.bid_words, vec![7]);
    }

    #[test]
    fn names_are_human_readable() {
        assert_eq!(NodeType::Query.name(), "query");
        assert_eq!(Relation::CoBid.name(), "co-bid");
    }
}
