//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! The paper uses the alias method (Walker 1977) inside the Euler engine to
//! draw negative samples in constant time (Section V-A); the same structure
//! is used here both for negative sampling and for degree-weighted walk
//! starts.

use rand::Rng;

/// Precomputed alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Build an alias table from non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums to
    /// zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "alias table weights must be non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table weights must not all be zero");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, p) in prob.iter().enumerate() {
            if *p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Remaining entries are 1.0 up to floating point error.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for c in counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn skewed_weights_respect_proportions() {
        let table = AliasTable::new(&[1.0, 3.0, 6.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let expected = [0.1, 0.3, 0.6];
        for (c, e) in counts.iter().zip(expected) {
            assert!((*c as f64 / n as f64 - e).abs() < 0.01, "{counts:?}");
        }
    }

    #[test]
    fn zero_weight_outcomes_are_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn single_outcome_always_drawn() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(table.len(), 1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }
}
