//! Meta-path guided random walks and training-sample generation.
//!
//! Section IV-A.2 of the paper: positive node pairs are extracted from
//! random walks that follow the six meta-paths of Table III, constrained to
//! stay within one leaf category; negatives are drawn both from the same
//! category (*hard*) and from other categories (*easy*) at a configurable
//! ratio (the paper uses easy:hard = 2:1).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::HeteroGraph;
use crate::types::{NodeId, NodeType, Relation};

/// One step of a meta-path: follow `relation` to a node of `target_type`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaPathStep {
    /// Relation to traverse.
    pub relation: Relation,
    /// Required type of the node reached by this step.
    pub target_type: NodeType,
}

/// A meta-path: a start node type followed by a sequence of typed steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaPath {
    /// Human-readable name (used in logs and reports).
    pub name: &'static str,
    /// Type of the walk's start node.
    pub start: NodeType,
    /// Steps of the walk.
    pub steps: Vec<MetaPathStep>,
}

impl MetaPath {
    fn step(relation: Relation, target_type: NodeType) -> MetaPathStep {
        MetaPathStep {
            relation,
            target_type,
        }
    }

    /// The six meta-paths of Table III.
    pub fn paper_paths() -> Vec<MetaPath> {
        use NodeType::*;
        use Relation::*;
        vec![
            MetaPath {
                name: "q-coclick-q-semantic-q",
                start: Query,
                steps: vec![Self::step(CoClick, Query), Self::step(Semantic, Query)],
            },
            MetaPath {
                name: "q-click-i-coclick-i",
                start: Query,
                steps: vec![Self::step(Click, Item), Self::step(CoClick, Item)],
            },
            MetaPath {
                name: "q-click-a-cobid-a",
                start: Query,
                steps: vec![Self::step(Click, Ad), Self::step(CoBid, Ad)],
            },
            MetaPath {
                name: "i-click-q-semantic-q",
                start: Item,
                steps: vec![Self::step(Click, Query), Self::step(Semantic, Query)],
            },
            MetaPath {
                name: "i-coclick-i-coclick-i",
                start: Item,
                steps: vec![Self::step(CoClick, Item), Self::step(CoClick, Item)],
            },
            MetaPath {
                name: "i-coclick-a-cobid-a",
                start: Item,
                steps: vec![Self::step(CoClick, Ad), Self::step(CoBid, Ad)],
            },
        ]
    }
}

/// A training sample: source node, positive node and `K` sampled negatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainSample {
    /// Source node of the positive pair.
    pub src: NodeId,
    /// Positive (related) node.
    pub pos: NodeId,
    /// Negative nodes of the same type as `pos`.
    pub negs: Vec<NodeId>,
    /// Index of the meta-path that generated the pair (identifies the edge
    /// relation for the edge-level scorer).
    pub meta_path: usize,
}

/// Configuration of the training-sample generator.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Negative samples per positive pair.
    pub negatives_per_positive: usize,
    /// Fraction of negatives drawn from the *same* category as the positive
    /// ("hard"); the remainder come from other categories ("easy").  The
    /// paper uses easy:hard = 2:1, i.e. `hard_fraction = 1/3`.
    pub hard_fraction: f64,
    /// Require the positive pair to share the source node's leaf category.
    pub same_category_positives: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            negatives_per_positive: 6,
            hard_fraction: 1.0 / 3.0,
            same_category_positives: true,
        }
    }
}

/// Meta-path guided training-sample generator.
pub struct MetaPathSampler<'g> {
    graph: &'g HeteroGraph,
    paths: Vec<MetaPath>,
    config: SamplerConfig,
}

impl<'g> MetaPathSampler<'g> {
    /// Create a sampler over the paper's six meta-paths.
    pub fn new(graph: &'g HeteroGraph, config: SamplerConfig) -> Self {
        MetaPathSampler {
            graph,
            paths: MetaPath::paper_paths(),
            config,
        }
    }

    /// Create a sampler over custom meta-paths.
    pub fn with_paths(graph: &'g HeteroGraph, paths: Vec<MetaPath>, config: SamplerConfig) -> Self {
        MetaPathSampler {
            graph,
            paths,
            config,
        }
    }

    /// The meta-paths used by this sampler.
    pub fn paths(&self) -> &[MetaPath] {
        &self.paths
    }

    /// Walk one randomly chosen meta-path from a random start node and
    /// return the visited node sequence (including the start).  Returns
    /// `None` if the walk dead-ends before completing every step.
    pub fn walk<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<(usize, Vec<NodeId>)> {
        let path_idx = rng.gen_range(0..self.paths.len());
        let path = &self.paths[path_idx];
        let starts = self.graph.nodes_of_type(path.start);
        if starts.is_empty() {
            return None;
        }
        let start = *starts.choose(rng)?;
        let mut seq = vec![start];
        let mut current = start;
        for step in &path.steps {
            let next =
                self.graph
                    .sample_neighbor(current, step.relation, Some(step.target_type), rng)?;
            seq.push(next);
            current = next;
        }
        Some((path_idx, seq))
    }

    /// Extract positive pairs `<seq[0], seq[i]>` for `i ≥ 1` from a walk
    /// (sliding window anchored at the source, as in Table III), applying
    /// the same-category constraint if configured.
    pub fn positive_pairs(&self, seq: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        if seq.len() < 2 {
            return Vec::new();
        }
        let src = seq[0];
        let src_cat = self.graph.category(src);
        seq[1..]
            .iter()
            .filter(|&&n| n != src)
            .filter(|&&n| !self.config.same_category_positives || self.graph.category(n) == src_cat)
            .map(|&n| (src, n))
            .collect()
    }

    /// Sample `count` negative nodes for a positive pair: negatives share
    /// the positive's node type; hard negatives additionally share its
    /// category, easy negatives must not.
    pub fn sample_negatives<R: Rng + ?Sized>(
        &self,
        pos: NodeId,
        count: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let pos_type = self.graph.node_type(pos);
        let pos_cat = self.graph.category(pos);
        let hard_count = ((count as f64) * self.config.hard_fraction).round() as usize;
        let mut negs = Vec::with_capacity(count);

        let same_cat = self.graph.nodes_of_type_category(pos_type, pos_cat);
        let all = self.graph.nodes_of_type(pos_type);

        let draw = |pool: &[NodeId], exclude_cat: Option<u32>, rng: &mut R| -> Option<NodeId> {
            if pool.is_empty() {
                return None;
            }
            for _ in 0..8 {
                let cand = pool[rng.gen_range(0..pool.len())];
                if cand == pos {
                    continue;
                }
                if let Some(cat) = exclude_cat {
                    if self.graph.category(cand) == cat {
                        continue;
                    }
                }
                return Some(cand);
            }
            None
        };

        for i in 0..count {
            let neg = if i < hard_count {
                draw(same_cat, None, rng).or_else(|| draw(all, None, rng))
            } else {
                draw(all, Some(pos_cat), rng).or_else(|| draw(all, None, rng))
            };
            if let Some(n) = neg {
                negs.push(n);
            }
        }
        negs
    }

    /// Generate up to `count` full training samples.
    pub fn sample_batch<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<TrainSample> {
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0;
        let max_attempts = count * 20 + 100;
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let Some((path_idx, seq)) = self.walk(rng) else {
                continue;
            };
            for (src, pos) in self.positive_pairs(&seq) {
                if out.len() >= count {
                    break;
                }
                let negs = self.sample_negatives(pos, self.config.negatives_per_positive, rng);
                if negs.is_empty() {
                    continue;
                }
                out.push(TrainSample {
                    src,
                    pos,
                    negs,
                    meta_path: path_idx,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::types::{NodeFeatures, SessionRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small but well-connected graph: 2 categories, queries/items/ads per
    /// category, enough edges for every meta-path to complete.
    fn dense_graph() -> HeteroGraph {
        let mut b = GraphBuilder::new();
        let mut queries = Vec::new();
        let mut items = Vec::new();
        let mut ads = Vec::new();
        for cat in 0..2u32 {
            for k in 0..4u32 {
                let term_base = cat * 10;
                queries.push(b.add_node(
                    NodeType::Query,
                    NodeFeatures::query(cat, vec![term_base, term_base + k]),
                ));
                items.push(b.add_node(
                    NodeType::Item,
                    NodeFeatures::item(cat, vec![term_base + k], cat, cat),
                ));
                ads.push(b.add_node(
                    NodeType::Ad,
                    NodeFeatures::ad(
                        cat,
                        vec![term_base + k],
                        cat,
                        cat,
                        vec![cat * 100, cat * 100 + k % 2],
                    ),
                ));
            }
        }
        // sessions: each query clicks two items and an ad of its category
        let mut sessions = Vec::new();
        for cat in 0..2usize {
            for k in 0..4usize {
                let q = queries[cat * 4 + k];
                let clicks = vec![
                    items[cat * 4 + k],
                    ads[cat * 4 + k],
                    items[cat * 4 + (k + 1) % 4],
                ];
                let s = SessionRecord {
                    user: (cat * 4 + k) as u32,
                    query: q,
                    clicks,
                };
                b.ingest_session(&s);
                sessions.push(s);
            }
        }
        b.add_query_coclick_edges(&sessions, 32);
        b.add_semantic_edges(0.2);
        b.add_cobid_edges();
        b.build()
    }

    #[test]
    fn paper_paths_cover_all_six_definitions() {
        let paths = MetaPath::paper_paths();
        assert_eq!(paths.len(), 6);
        assert!(paths.iter().all(|p| p.steps.len() == 2));
        assert_eq!(
            paths.iter().filter(|p| p.start == NodeType::Query).count(),
            3
        );
        assert_eq!(
            paths.iter().filter(|p| p.start == NodeType::Item).count(),
            3
        );
    }

    #[test]
    fn walks_respect_meta_path_types() {
        let g = dense_graph();
        let sampler = MetaPathSampler::new(&g, SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(11);
        let mut completed = 0;
        for _ in 0..200 {
            if let Some((idx, seq)) = sampler.walk(&mut rng) {
                completed += 1;
                let path = &sampler.paths()[idx];
                assert_eq!(g.node_type(seq[0]), path.start);
                assert_eq!(seq.len(), path.steps.len() + 1);
                for (node, step) in seq[1..].iter().zip(&path.steps) {
                    assert_eq!(g.node_type(*node), step.target_type);
                }
            }
        }
        assert!(completed > 50, "most walks should complete: {completed}");
    }

    #[test]
    fn positive_pairs_share_category_when_required() {
        let g = dense_graph();
        let sampler = MetaPathSampler::new(&g, SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            if let Some((_, seq)) = sampler.walk(&mut rng) {
                for (src, pos) in sampler.positive_pairs(&seq) {
                    assert_eq!(g.category(src), g.category(pos));
                    assert_ne!(src, pos);
                }
            }
        }
    }

    #[test]
    fn negatives_have_matching_type_and_requested_hardness_mix() {
        let g = dense_graph();
        let config = SamplerConfig {
            negatives_per_positive: 6,
            hard_fraction: 0.5,
            same_category_positives: true,
        };
        let sampler = MetaPathSampler::new(&g, config);
        let mut rng = StdRng::seed_from_u64(13);
        let pos = g.nodes_of_type(NodeType::Item)[0];
        let negs = sampler.sample_negatives(pos, 6, &mut rng);
        assert!(!negs.is_empty());
        for n in &negs {
            assert_eq!(g.node_type(*n), NodeType::Item);
            assert_ne!(*n, pos);
        }
        // with hard_fraction 0.5 at least one hard (same category) negative
        // should usually appear
        let same_cat = negs
            .iter()
            .filter(|n| g.category(**n) == g.category(pos))
            .count();
        assert!(same_cat >= 1);
    }

    #[test]
    fn batches_reach_requested_size_on_well_connected_graphs() {
        let g = dense_graph();
        let sampler = MetaPathSampler::new(&g, SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(14);
        let batch = sampler.sample_batch(64, &mut rng);
        assert_eq!(batch.len(), 64);
        for s in &batch {
            assert!(!s.negs.is_empty());
            assert!(s.meta_path < 6);
            // positive node type must match the final step of the meta-path
            let path = &sampler.paths()[s.meta_path];
            let allowed: Vec<NodeType> = path.steps.iter().map(|st| st.target_type).collect();
            assert!(allowed.contains(&g.node_type(s.pos)));
        }
    }

    #[test]
    fn sampler_is_deterministic_given_a_seed() {
        let g = dense_graph();
        let sampler = MetaPathSampler::new(&g, SamplerConfig::default());
        let a = sampler.sample_batch(16, &mut StdRng::seed_from_u64(99));
        let b = sampler.sample_batch(16, &mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_walk_yields_no_pairs() {
        let g = dense_graph();
        let sampler = MetaPathSampler::new(&g, SamplerConfig::default());
        assert!(sampler.positive_pairs(&[]).is_empty());
        assert!(sampler.positive_pairs(&[NodeId(0)]).is_empty());
    }
}
