//! # amcad-core
//!
//! The end-to-end AMCAD system: one entry point that wires the substrates
//! together the same way the production deployment does (Fig. 3 of the
//! paper) — behaviour logs → heterogeneous graph → adaptive mixed-curvature
//! training → embedding export → MNN inverted indices → two-layer online ad
//! retrieval → offline / online evaluation.
//!
//! * [`Pipeline`] / [`PipelineConfig`] — run the whole loop with one call,
//! * [`evaluation`] — the offline protocol of Section VI-A.4 (Next AUC,
//!   HitRate@K, nDCG@K) over any [`amcad_model::PairScorer`],
//! * [`run_ab_test`] — the simulated online A/B comparison behind Table X.

pub mod evaluation;
pub mod pipeline;

pub use evaluation::{
    evaluate_offline, next_auc, ranking_metrics, EvalConfig, OfflineMetrics, OracleScorer,
    RandomScorer, RankingMetrics, KS,
};
pub use pipeline::{
    build_index_inputs, run_ab_test, AbTestOutcome, Pipeline, PipelineConfig, PipelineResult,
};
