//! The end-to-end AMCAD pipeline (Fig. 3 of the paper).
//!
//! One call runs the full production loop at laptop scale: behaviour-log
//! generation → heterogeneous graph construction → adaptive mixed-curvature
//! training → embedding export → MNN index construction → two-layer online
//! retrieval → offline metrics — the same flow the paper deploys across
//! ODPS, Euler, XDL, MNN workers and iGraph.

use std::sync::Arc;

use amcad_datagen::{Dataset, WorldConfig};
use amcad_eval::{AbMetrics, AbTestSimulator, ClickModelConfig, ServedAd};
use amcad_graph::{NodeId, NodeType};
use amcad_mnn::IndexBackend;
use amcad_mnn::MixedPointSet;
use amcad_model::{
    AmcadConfig, AmcadModel, ModelExport, RelationKind, TrainReport, Trainer, TrainerConfig,
};
use amcad_retrieval::{
    IndexBuildConfig, IndexBuildInputs, Request, RetrievalConfig, RetrievalEngine,
};

use crate::evaluation::{evaluate_offline, EvalConfig, OfflineMetrics};

/// Configuration of the full pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Synthetic-world / behaviour-log configuration.
    pub world: WorldConfig,
    /// Model configuration (AMCAD or any variant).
    pub model: AmcadConfig,
    /// Training-loop configuration.
    pub trainer: TrainerConfig,
    /// MNN index-construction configuration.
    pub index: IndexBuildConfig,
    /// Two-layer retrieval configuration.
    pub retrieval: RetrievalConfig,
    /// Offline-evaluation configuration.
    pub eval: EvalConfig,
}

impl PipelineConfig {
    /// A small-but-complete preset used by examples and integration tests.
    pub fn small(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::tiny(seed),
            model: AmcadConfig::test_tiny(seed),
            trainer: TrainerConfig {
                batch_size: 16,
                steps: 60,
                seed,
                lru_max_age: 0,
            },
            index: IndexBuildConfig {
                top_k: 10,
                threads: 2,
                ..Default::default()
            },
            retrieval: RetrievalConfig::default(),
            eval: EvalConfig {
                max_queries: 30,
                auc_negatives: 3,
                seed,
            },
        }
    }

    /// The offline-experiment preset (paper's "1 day" window at laptop
    /// scale) — used by the Table VI/VII/VIII experiment binaries.
    pub fn one_day(seed: u64) -> Self {
        PipelineConfig {
            world: WorldConfig::one_day(seed),
            model: AmcadConfig::amcad(8, seed),
            trainer: TrainerConfig {
                batch_size: 64,
                steps: 400,
                seed,
                lru_max_age: 0,
            },
            index: IndexBuildConfig {
                top_k: 20,
                threads: 4,
                ..Default::default()
            },
            retrieval: RetrievalConfig::default(),
            eval: EvalConfig::default(),
        }
    }

    /// The same configuration with a different ANN index backend — the
    /// knob the serving benchmarks sweep (exact vs IVF).
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.index.backend = backend;
        self
    }
}

/// Everything the pipeline produced.
pub struct PipelineResult {
    /// The generated dataset (world, graph, sessions, ground truth).
    pub dataset: Dataset,
    /// The trained model.
    pub model: AmcadModel,
    /// The exported embeddings and attention weights.
    pub export: ModelExport,
    /// The retrieval engine over the built indices.
    pub engine: RetrievalEngine,
    /// The training report.
    pub train_report: TrainReport,
    /// Offline metrics of the trained model.
    pub offline: OfflineMetrics,
}

/// The end-to-end pipeline runner.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run the complete pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configured world produces no ads at all
    /// (`WorldConfig::ads_per_category == 0`): an ad-retrieval engine over
    /// empty ad indices is rejected at build time ([`RetrievalEngine`]
    /// returns `EmptyIndex`), and this one-call entry point treats that as
    /// a configuration error. Ad-free experiments should drive the model /
    /// evaluation layers directly instead of the serving pipeline.
    pub fn run(&self) -> PipelineResult {
        let dataset = Dataset::generate(&self.config.world);
        let mut model = AmcadModel::new(self.config.model.clone(), &dataset.graph);
        let trainer = Trainer::new(self.config.trainer);
        let train_report = trainer.run(&mut model, &dataset.graph);
        let export = model.export(&dataset.graph, self.config.trainer.seed);
        let offline = evaluate_offline(&export, &dataset, &self.config.eval);
        let inputs = build_index_inputs(&export, &dataset);
        let engine = RetrievalEngine::builder()
            .index(self.config.index)
            .retrieval(self.config.retrieval)
            .build(&inputs)
            .unwrap_or_else(|e| panic!("engine build failed: {e}"));
        PipelineResult {
            dataset,
            model,
            export,
            engine,
            train_report,
            offline,
        }
    }
}

/// Assemble the MNN index-construction inputs from a model export: every
/// node's projected point and attention weights in each edge space it
/// participates in.
pub fn build_index_inputs(export: &ModelExport, dataset: &Dataset) -> IndexBuildInputs {
    let collect = |kind: RelationKind, nodes: &[NodeId]| -> MixedPointSet {
        let space = &export.spaces[&kind];
        let mut set = MixedPointSet::new(space.manifold.clone());
        for &node in nodes {
            if let (Some(point), Some(weight)) = (space.points.get(&node), space.weights.get(&node))
            {
                set.push(node.0, point, weight);
            }
        }
        set
    };
    // key-side sets are shared (replicated per shard / per delta
    // generation as Arc bumps); ad-side sets are the partitioned, mutable
    // half of the lifecycle and stay plain
    IndexBuildInputs {
        queries_qq: Arc::new(collect(RelationKind::QueryQuery, &dataset.query_nodes)),
        queries_qi: Arc::new(collect(RelationKind::QueryItem, &dataset.query_nodes)),
        items_qi: Arc::new(collect(RelationKind::QueryItem, &dataset.item_nodes)),
        queries_qa: Arc::new(collect(RelationKind::QueryAd, &dataset.query_nodes)),
        ads_qa: collect(RelationKind::QueryAd, &dataset.ad_nodes),
        items_ii: Arc::new(collect(RelationKind::ItemItem, &dataset.item_nodes)),
        items_ia: Arc::new(collect(RelationKind::ItemAd, &dataset.item_nodes)),
        ads_ia: collect(RelationKind::ItemAd, &dataset.ad_nodes),
    }
}

/// Outcome of a simulated online A/B test between two retrieval channels.
#[derive(Debug, Clone)]
pub struct AbTestOutcome {
    /// Metrics of the control channel.
    pub control: AbMetrics,
    /// Metrics of the treatment channel.
    pub treatment: AbMetrics,
    /// Number of requests simulated.
    pub requests: usize,
}

/// Simulate an online A/B test (Table X): for every next-day session the
/// control and treatment retrievers each serve an ad list; the click model
/// turns relevance into clicks and bid prices into revenue.
pub fn run_ab_test(
    dataset: &Dataset,
    control: &RetrievalEngine,
    treatment: &RetrievalEngine,
    click_model: ClickModelConfig,
) -> AbTestOutcome {
    let to_served = |engine: &RetrievalEngine, query: NodeId, preclicks: &[NodeId]| {
        let request = Request {
            query: query.0,
            preclick_items: preclicks.iter().map(|n| n.0).collect(),
        };
        // an uncovered request simply serves no ads in the A/B comparison
        engine
            .retrieve(&request)
            .map(|response| response.ads)
            .unwrap_or_default()
            .into_iter()
            .map(|ad| {
                let ad_node = NodeId(ad.ad);
                ServedAd {
                    relevance: dataset.relevance(query, ad_node),
                    bid_price: dataset.bid_price(ad_node),
                }
            })
            .collect::<Vec<ServedAd>>()
    };

    let mut control_lists = Vec::new();
    let mut treatment_lists = Vec::new();
    for session in &dataset.eval_sessions {
        // Only item clicks are available as pre-click context at request
        // time (the ad list is what we are about to serve).
        let preclicks: Vec<NodeId> = session
            .clicks
            .iter()
            .copied()
            .filter(|c| dataset.graph.node_type(*c) == NodeType::Item)
            .collect();
        control_lists.push(to_served(control, session.query, &preclicks));
        treatment_lists.push(to_served(treatment, session.query, &preclicks));
    }
    let simulator = AbTestSimulator::new(click_model);
    let requests: Vec<(&[ServedAd], &[ServedAd])> = control_lists
        .iter()
        .zip(&treatment_lists)
        .map(|(c, t)| (c.as_slice(), t.as_slice()))
        .collect();
    let n = requests.len();
    let (control_metrics, treatment_metrics) = simulator.run(requests);
    AbTestOutcome {
        control: control_metrics,
        treatment: treatment_metrics,
        requests: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_runs_end_to_end_and_serves_ads() {
        let pipeline = Pipeline::new(PipelineConfig::small(61));
        let result = pipeline.run();
        assert!(!result.train_report.losses.is_empty());
        assert!(result.offline.next_auc > 0.0);
        // the retriever serves ads for an arbitrary evaluation session
        let session = &result.dataset.eval_sessions[0];
        let pre: Vec<u32> = result
            .dataset
            .preclick_items(session)
            .iter()
            .map(|n| n.0)
            .collect();
        let response = result
            .engine
            .retrieve(&Request {
                query: session.query.0,
                preclick_items: pre,
            })
            .expect("the two-layer engine should find ads");
        let ads = response.ads;
        assert!(!ads.is_empty());
        for ad in &ads {
            assert_eq!(
                result.dataset.graph.node_type(NodeId(ad.ad)),
                NodeType::Ad,
                "retrieved ids must be ads"
            );
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_with_the_ivf_backend() {
        use amcad_mnn::IvfConfig;
        let config =
            PipelineConfig::small(64).with_backend(IndexBackend::Ivf(IvfConfig::default()));
        let result = Pipeline::new(config).run();
        assert_eq!(result.engine.backend().label(), "ivf");
        let mut served = 0;
        for session in result.dataset.eval_sessions.iter().take(20) {
            let pre: Vec<u32> = result
                .dataset
                .preclick_items(session)
                .iter()
                .map(|n| n.0)
                .collect();
            if let Ok(response) = result.engine.retrieve(&Request {
                query: session.query.0,
                preclick_items: pre,
            }) {
                served += response.ads.len().min(1);
            }
        }
        assert!(
            served > 10,
            "the IVF-backed pipeline must serve most sessions, got {served}"
        );
    }

    #[test]
    fn index_inputs_cover_all_nodes_of_each_space() {
        let pipeline = Pipeline::new(PipelineConfig::small(62));
        let result = pipeline.run();
        let inputs = build_index_inputs(&result.export, &result.dataset);
        assert_eq!(inputs.queries_qq.len(), result.dataset.query_nodes.len());
        assert_eq!(inputs.items_qi.len(), result.dataset.item_nodes.len());
        assert_eq!(inputs.ads_qa.len(), result.dataset.ad_nodes.len());
        assert_eq!(inputs.ads_ia.len(), result.dataset.ad_nodes.len());
    }

    #[test]
    fn ab_test_between_identical_channels_reports_traffic() {
        let pipeline = Pipeline::new(PipelineConfig::small(63));
        let result = pipeline.run();
        let outcome = run_ab_test(
            &result.dataset,
            &result.engine,
            &result.engine,
            ClickModelConfig {
                seed: 63,
                ..Default::default()
            },
        );
        assert_eq!(outcome.requests, result.dataset.eval_sessions.len());
        assert!(outcome.control.impressions.iter().sum::<u64>() > 0);
        assert!(outcome.treatment.impressions.iter().sum::<u64>() > 0);
    }
}
