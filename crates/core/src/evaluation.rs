//! Offline evaluation harness: Next AUC, HitRate@K and nDCG@K per relation.
//!
//! This reproduces the evaluation protocol of Section VI-A.4: models are
//! trained on one day's interaction graph and evaluated on the *next* day's
//! behaviour — AUC over next-day click edges versus sampled non-edges, and
//! HitRate/nDCG of the retrieved top-K against the item/ad list sorted by
//! next-day click count under each query.  Any [`PairScorer`] (the AMCAD
//! export or a walk-based baseline) can be evaluated, which is how the
//! Table VI / VII / VIII harnesses compare methods uniformly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use amcad_datagen::Dataset;
use amcad_eval::{auc, hitrate_at_k, mean, ndcg_at_k};
use amcad_graph::{NodeId, NodeType};
use amcad_model::PairScorer;

/// HitRate@K and nDCG@K at the paper's three cut-offs (10, 100, 300).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankingMetrics {
    /// HitRate@10 / @100 / @300 in percent.
    pub hitrate: [f64; 3],
    /// nDCG@10 / @100 / @300 in percent.
    pub ndcg: [f64; 3],
}

/// The cut-offs used by the paper's tables.
pub const KS: [usize; 3] = [10, 100, 300];

/// Full offline metrics of one model (one row of Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OfflineMetrics {
    /// Next AUC (×100, as reported in the paper).
    pub next_auc: f64,
    /// Query→item ranking metrics.
    pub q2i: RankingMetrics,
    /// Query→ad ranking metrics.
    pub q2a: RankingMetrics,
}

/// Configuration of the offline evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Maximum number of queries evaluated for the ranking metrics (keeps
    /// the full-candidate ranking affordable; queries are taken in a fixed
    /// shuffled order so every model sees the same set).
    pub max_queries: usize,
    /// Negative samples per positive edge for Next AUC.
    pub auc_negatives: usize,
    /// RNG seed (negative sampling and query subsampling).
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_queries: 150,
            auc_negatives: 4,
            seed: 1234,
        }
    }
}

/// Evaluate one scorer on a dataset.
pub fn evaluate_offline<S: PairScorer + ?Sized>(
    scorer: &S,
    dataset: &Dataset,
    config: &EvalConfig,
) -> OfflineMetrics {
    OfflineMetrics {
        next_auc: 100.0 * next_auc(scorer, dataset, config),
        q2i: ranking_metrics(scorer, dataset, NodeType::Item, config),
        q2a: ranking_metrics(scorer, dataset, NodeType::Ad, config),
    }
}

/// Next-day AUC: scores of next-day click edges versus sampled non-edges of
/// the same (query, target-type) shape.
pub fn next_auc<S: PairScorer + ?Sized>(scorer: &S, dataset: &Dataset, config: &EvalConfig) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pos_scores = Vec::new();
    let mut neg_scores = Vec::new();
    for &(query, target) in &dataset.ground_truth.eval_edges {
        let target_type = dataset.graph.node_type(target);
        if target_type == NodeType::Query {
            continue;
        }
        pos_scores.push(scorer.score_pair(query, target));
        let pool: &[NodeId] = match target_type {
            NodeType::Item => &dataset.item_nodes,
            NodeType::Ad => &dataset.ad_nodes,
            NodeType::Query => unreachable!(),
        };
        for _ in 0..config.auc_negatives {
            let neg = pool[rng.gen_range(0..pool.len())];
            if neg == target {
                continue;
            }
            neg_scores.push(scorer.score_pair(query, neg));
        }
    }
    auc(&pos_scores, &neg_scores)
}

/// HitRate@K / nDCG@K of a scorer for query→item or query→ad retrieval.
pub fn ranking_metrics<S: PairScorer + ?Sized>(
    scorer: &S,
    dataset: &Dataset,
    target_type: NodeType,
    config: &EvalConfig,
) -> RankingMetrics {
    let ground_truth = match target_type {
        NodeType::Item => &dataset.ground_truth.q2i,
        NodeType::Ad => &dataset.ground_truth.q2a,
        NodeType::Query => panic!("ranking metrics target queries are not defined"),
    };
    let candidates: &[NodeId] = match target_type {
        NodeType::Item => &dataset.item_nodes,
        NodeType::Ad => &dataset.ad_nodes,
        NodeType::Query => unreachable!(),
    };

    // Fixed query subset shared by every model: sort then deterministic
    // shuffle by seed.
    let mut queries: Vec<NodeId> = ground_truth.keys().copied().collect();
    queries.sort_unstable();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for i in (1..queries.len()).rev() {
        let j = rng.gen_range(0..=i);
        queries.swap(i, j);
    }
    queries.truncate(config.max_queries);

    let mut hitrates = vec![Vec::new(); KS.len()];
    let mut ndcgs = vec![Vec::new(); KS.len()];
    for &query in &queries {
        let truth = &ground_truth[&query];
        let truth_ids: Vec<NodeId> = truth.iter().map(|(n, _)| *n).collect();
        let gains: Vec<(NodeId, f64)> = truth.iter().map(|(n, c)| (*n, *c as f64)).collect();

        // Rank the full candidate set by the scorer, best first. A NaN
        // score ranks last, alongside -inf (and by-id within that tie
        // group): a scorer that blows up on one pair must neither panic
        // the sort (the old `partial_cmp().unwrap()` aborted the whole
        // experiment run) nor hand that pair the top of the ranking,
        // which is where a naive descending `total_cmp` would put NaN.
        let rank_key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
        let mut scored: Vec<(NodeId, f64)> = candidates
            .iter()
            .map(|&c| (c, scorer.score_pair(query, c)))
            .collect();
        scored.sort_by(|a, b| rank_key(b.1).total_cmp(&rank_key(a.1)).then(a.0.cmp(&b.0)));
        let ranked: Vec<NodeId> = scored.into_iter().map(|(n, _)| n).collect();

        for (ki, &k) in KS.iter().enumerate() {
            hitrates[ki].push(hitrate_at_k(&ranked, &truth_ids, k));
            ndcgs[ki].push(ndcg_at_k(&ranked, &gains, k));
        }
    }

    RankingMetrics {
        hitrate: [mean(&hitrates[0]), mean(&hitrates[1]), mean(&hitrates[2])],
        ndcg: [mean(&ndcgs[0]), mean(&ndcgs[1]), mean(&ndcgs[2])],
    }
}

/// A scorer that ranks by the ground-truth relevance itself — an upper bound
/// ("oracle") useful for sanity-checking the evaluation harness.
pub struct OracleScorer<'a> {
    dataset: &'a Dataset,
}

impl<'a> OracleScorer<'a> {
    /// Create an oracle over a dataset.
    pub fn new(dataset: &'a Dataset) -> Self {
        OracleScorer { dataset }
    }
}

impl PairScorer for OracleScorer<'_> {
    fn score_pair(&self, src: NodeId, dst: NodeId) -> f64 {
        self.dataset.relevance(src, dst)
    }

    fn scorer_name(&self) -> &str {
        "Oracle (ground-truth relevance)"
    }
}

/// A scorer that returns uniformly random scores — the lower bound used by
/// harness sanity checks (AUC ≈ 0.5).
pub struct RandomScorer {
    seed: u64,
}

impl RandomScorer {
    /// Create a random scorer.
    pub fn new(seed: u64) -> Self {
        RandomScorer { seed }
    }
}

impl PairScorer for RandomScorer {
    fn score_pair(&self, src: NodeId, dst: NodeId) -> f64 {
        // hash-based deterministic pseudo-random score
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src.0 as u64) << 32 | dst.0 as u64);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        (x as f64) / (u64::MAX as f64)
    }

    fn scorer_name(&self) -> &str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_datagen::WorldConfig;

    fn tiny() -> Dataset {
        Dataset::generate(&WorldConfig::tiny(51))
    }

    fn tiny_eval() -> EvalConfig {
        EvalConfig {
            max_queries: 20,
            auc_negatives: 3,
            seed: 7,
        }
    }

    #[test]
    fn oracle_beats_random_on_every_metric() {
        let d = tiny();
        let oracle = OracleScorer::new(&d);
        let random = RandomScorer::new(9);
        let mo = evaluate_offline(&oracle, &d, &tiny_eval());
        let mr = evaluate_offline(&random, &d, &tiny_eval());
        assert!(
            mo.next_auc > mr.next_auc + 5.0,
            "{} vs {}",
            mo.next_auc,
            mr.next_auc
        );
        // the tiny world has < 100 items per type, so compare at K = 10
        // where the ranking actually matters.
        assert!(
            mo.q2i.hitrate[0] > mr.q2i.hitrate[0],
            "{} vs {}",
            mo.q2i.hitrate[0],
            mr.q2i.hitrate[0]
        );
        assert!(mo.q2a.ndcg[0] >= mr.q2a.ndcg[0]);
    }

    #[test]
    fn random_scorer_auc_is_near_half() {
        let d = tiny();
        let random = RandomScorer::new(3);
        let a = next_auc(&random, &d, &tiny_eval());
        assert!(
            (a - 0.5).abs() < 0.08,
            "random AUC should be ≈ 0.5, got {a}"
        );
    }

    #[test]
    fn metrics_are_bounded_and_monotone_in_k() {
        let d = tiny();
        let oracle = OracleScorer::new(&d);
        let m = ranking_metrics(&oracle, &d, NodeType::Item, &tiny_eval());
        for v in m.hitrate.iter().chain(m.ndcg.iter()) {
            assert!((0.0..=100.0).contains(v));
        }
        // HitRate is monotone non-decreasing in K
        assert!(m.hitrate[0] <= m.hitrate[1] + 1e-9);
        assert!(m.hitrate[1] <= m.hitrate[2] + 1e-9);
    }

    /// A scorer that returns NaN for a slice of the pairs — the shape of a
    /// half-diverged model export (overflowed distances, log of a negative
    /// curvature term, ...).
    struct NanScorer {
        inner: RandomScorer,
    }

    impl PairScorer for NanScorer {
        fn score_pair(&self, src: NodeId, dst: NodeId) -> f64 {
            if dst.0.is_multiple_of(5) {
                f64::NAN
            } else {
                self.inner.score_pair(src, dst)
            }
        }

        fn scorer_name(&self) -> &str {
            "NaN-injecting"
        }
    }

    #[test]
    fn nan_scores_rank_last_and_never_abort_the_evaluation() {
        // regression: the candidate ranking sort used
        // partial_cmp().unwrap() and panicked on the first NaN score,
        // killing an entire experiment run
        let d = tiny();
        let nan = NanScorer {
            inner: RandomScorer::new(9),
        };
        let m = evaluate_offline(&nan, &d, &tiny_eval());
        assert!(m.next_auc.is_finite());
        for v in m.q2i.hitrate.iter().chain(m.q2a.ndcg.iter()) {
            assert!((0.0..=100.0).contains(v), "metric out of range: {v}");
        }
        // an all-NaN scorer is the degenerate floor: every metric finite,
        // nothing panics, and AUC sits at the tie value
        struct AllNan;
        impl PairScorer for AllNan {
            fn score_pair(&self, _: NodeId, _: NodeId) -> f64 {
                f64::NAN
            }
            fn scorer_name(&self) -> &str {
                "AllNaN"
            }
        }
        let floor = evaluate_offline(&AllNan, &d, &tiny_eval());
        assert!((floor.next_auc - 50.0).abs() < 1e-9, "all ties → AUC 0.5");
        assert!(floor.q2i.hitrate[2].is_finite());
    }

    #[test]
    fn evaluation_is_deterministic_for_a_given_seed() {
        let d = tiny();
        let oracle = OracleScorer::new(&d);
        let a = evaluate_offline(&oracle, &d, &tiny_eval());
        let b = evaluate_offline(&oracle, &d, &tiny_eval());
        assert_eq!(a, b);
    }

    #[test]
    fn scorer_names_are_exposed() {
        let d = tiny();
        assert_eq!(
            OracleScorer::new(&d).scorer_name(),
            "Oracle (ground-truth relevance)"
        );
        assert_eq!(RandomScorer::new(1).scorer_name(), "Random");
    }
}
