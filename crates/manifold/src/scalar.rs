//! Curvature-dependent scalar trigonometry.
//!
//! The unified κ-stereographic model replaces ordinary `tan`/`arctan` with
//! curvature generalisations (`tan_κ`, `tan⁻¹_κ` in Table II of the paper)
//! that interpolate smoothly between hyperbolic (`κ < 0`), Euclidean
//! (`κ = 0`) and spherical (`κ > 0`) behaviour.  Near `κ = 0` the closed
//! forms are numerically unstable (`0/0`), so a third-order Taylor expansion
//! is used inside `|κ| < KAPPA_EPS`; the expansion agrees with both branches
//! to `O(κ²)`.

/// Threshold below which curvature is treated as (numerically) zero.
pub const KAPPA_EPS: f64 = 1e-7;

/// Curvature-dependent tangent `tan_κ(x)`.
///
/// * `κ < 0`: `tanh(√(-κ)·x)/√(-κ)`
/// * `κ ≈ 0`: `x + κ·x³/3` (Taylor)
/// * `κ > 0`: `tan(√κ·x)/√κ`
#[inline]
pub fn tan_kappa(x: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        let s = (-kappa).sqrt();
        (s * x).tanh() / s
    } else if kappa > KAPPA_EPS {
        let s = kappa.sqrt();
        (s * x).tan() / s
    } else {
        x + kappa * x * x * x / 3.0
    }
}

/// Curvature-dependent arc tangent `tan⁻¹_κ(y)`, the inverse of
/// [`tan_kappa`] on its principal branch.
///
/// * `κ < 0`: `artanh(√(-κ)·y)/√(-κ)` (argument clamped into `(-1, 1)`)
/// * `κ ≈ 0`: `y - κ·y³/3` (Taylor)
/// * `κ > 0`: `arctan(√κ·y)/√κ`
#[inline]
pub fn atan_kappa(y: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        let s = (-kappa).sqrt();
        let a = (s * y).clamp(-1.0 + 1e-15, 1.0 - 1e-15);
        a.atanh() / s
    } else if kappa > KAPPA_EPS {
        let s = kappa.sqrt();
        (s * y).atan() / s
    } else {
        y - kappa * y * y * y / 3.0
    }
}

/// Curvature-dependent sine `sin_κ(x)` (used by a few geometric helpers and
/// by tests as an independent cross-check of `tan_κ = sin_κ / cos_κ`).
#[inline]
pub fn sin_kappa(x: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        let s = (-kappa).sqrt();
        (s * x).sinh() / s
    } else if kappa > KAPPA_EPS {
        let s = kappa.sqrt();
        (s * x).sin() / s
    } else {
        x + kappa * x * x * x / 6.0
    }
}

/// Curvature-dependent cosine `cos_κ(x)`.
#[inline]
pub fn cos_kappa(x: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        ((-kappa).sqrt() * x).cosh()
    } else if kappa > KAPPA_EPS {
        (kappa.sqrt() * x).cos()
    } else {
        1.0 + kappa * x * x / 2.0
    }
}

/// Partial derivative of [`tan_kappa`] with respect to `x`.
///
/// Used by the autodiff primitive so that curvature-trigonometry gradients
/// have a single authoritative implementation.
#[inline]
pub fn tan_kappa_dx(x: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        let t = ((-kappa).sqrt() * x).tanh();
        1.0 - t * t
    } else if kappa > KAPPA_EPS {
        let c = (kappa.sqrt() * x).cos();
        1.0 / (c * c)
    } else {
        1.0 + kappa * x * x
    }
}

/// Partial derivative of [`tan_kappa`] with respect to `κ`.
#[inline]
pub fn tan_kappa_dkappa(x: f64, kappa: f64) -> f64 {
    if kappa.abs() <= KAPPA_EPS {
        // d/dκ [x + κ x³/3] = x³/3
        return x * x * x / 3.0;
    }
    if kappa < 0.0 {
        // f = tanh(s x)/s with s = sqrt(-κ), ds/dκ = -1/(2s)
        let s = (-kappa).sqrt();
        let t = (s * x).tanh();
        let df_ds = (x * (1.0 - t * t) * s - t) / (s * s);
        df_ds * (-1.0 / (2.0 * s))
    } else {
        // f = tan(s x)/s with s = sqrt(κ), ds/dκ = 1/(2s)
        let s = kappa.sqrt();
        let c = (s * x).cos();
        let t = (s * x).tan();
        let df_ds = (x / (c * c) * s - t) / (s * s);
        df_ds * (1.0 / (2.0 * s))
    }
}

/// Partial derivative of [`atan_kappa`] with respect to `y`.
#[inline]
pub fn atan_kappa_dy(y: f64, kappa: f64) -> f64 {
    if kappa < -KAPPA_EPS {
        let s2 = -kappa;
        1.0 / (1.0 - s2 * y * y).max(1e-15)
    } else if kappa > KAPPA_EPS {
        1.0 / (1.0 + kappa * y * y)
    } else {
        1.0 - kappa * y * y
    }
}

/// Partial derivative of [`atan_kappa`] with respect to `κ`.
#[inline]
pub fn atan_kappa_dkappa(y: f64, kappa: f64) -> f64 {
    if kappa.abs() <= KAPPA_EPS {
        // d/dκ [y - κ y³/3] = -y³/3
        return -y * y * y / 3.0;
    }
    if kappa < 0.0 {
        // f = artanh(s y)/s, s = sqrt(-κ), ds/dκ = -1/(2s)
        let s = (-kappa).sqrt();
        let a = (s * y).clamp(-1.0 + 1e-12, 1.0 - 1e-12);
        let df_ds = (y / (1.0 - a * a) * s - a.atanh()) / (s * s);
        df_ds * (-1.0 / (2.0 * s))
    } else {
        // f = atan(s y)/s, s = sqrt(κ), ds/dκ = 1/(2s)
        let s = kappa.sqrt();
        let df_ds = (y / (1.0 + s * s * y * y) * s - (s * y).atan()) / (s * s);
        df_ds * (1.0 / (2.0 * s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {a} ≈ {b} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn tan_kappa_reduces_to_identity_at_zero_curvature() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
            assert_close(tan_kappa(x, 0.0), x, 1e-12);
            assert_close(atan_kappa(x, 0.0), x, 1e-12);
        }
    }

    #[test]
    fn tan_kappa_matches_tanh_for_unit_negative_curvature() {
        for &x in &[-1.5, -0.2, 0.0, 0.4, 2.0] {
            assert_close(tan_kappa(x, -1.0), x.tanh(), 1e-12);
            assert_close(sin_kappa(x, -1.0), x.sinh(), 1e-12);
            assert_close(cos_kappa(x, -1.0), x.cosh(), 1e-12);
        }
    }

    #[test]
    fn tan_kappa_matches_tan_for_unit_positive_curvature() {
        for &x in &[-1.0, -0.2, 0.0, 0.4, 1.2] {
            assert_close(tan_kappa(x, 1.0), x.tan(), 1e-12);
            assert_close(sin_kappa(x, 1.0), x.sin(), 1e-12);
            assert_close(cos_kappa(x, 1.0), x.cos(), 1e-12);
        }
    }

    #[test]
    fn atan_is_inverse_of_tan() {
        for &kappa in &[-2.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.0] {
            for &x in &[-0.7, -0.3, 0.0, 0.2, 0.6] {
                let y = tan_kappa(x, kappa);
                assert_close(atan_kappa(y, kappa), x, 1e-9);
            }
        }
    }

    #[test]
    fn taylor_branch_is_continuous_with_closed_forms() {
        // Values just inside and just outside the Taylor window must agree.
        let x = 0.37;
        for sign in [-1.0, 1.0] {
            let just_out = sign * (KAPPA_EPS * 1.01);
            let just_in = sign * (KAPPA_EPS * 0.99);
            assert_close(tan_kappa(x, just_out), tan_kappa(x, just_in), 1e-9);
            assert_close(atan_kappa(x, just_out), atan_kappa(x, just_in), 1e-9);
        }
    }

    #[test]
    fn tan_equals_sin_over_cos() {
        for &kappa in &[-1.3, -0.4, 0.5, 1.7] {
            for &x in &[-0.6, 0.1, 0.5] {
                assert_close(
                    tan_kappa(x, kappa),
                    sin_kappa(x, kappa) / cos_kappa(x, kappa),
                    1e-10,
                );
            }
        }
    }

    #[test]
    fn derivative_wrt_x_matches_finite_difference() {
        // Points kept inside the hyperbolic domain |x|·√(-κ) < 1.
        let h = 1e-6;
        for &kappa in &[-1.5, -0.3, 0.0, 0.3, 1.5] {
            for &x in &[-0.6, -0.1, 0.25, 0.6] {
                let fd = (tan_kappa(x + h, kappa) - tan_kappa(x - h, kappa)) / (2.0 * h);
                assert_close(tan_kappa_dx(x, kappa), fd, 1e-5);
                let fd = (atan_kappa(x + h, kappa) - atan_kappa(x - h, kappa)) / (2.0 * h);
                assert_close(atan_kappa_dy(x, kappa), fd, 1e-5);
            }
        }
    }

    #[test]
    fn derivative_wrt_kappa_matches_finite_difference() {
        // Points kept inside the hyperbolic domain |x|·√(-κ) < 1.
        let h = 1e-6;
        for &kappa in &[-1.5, -0.3, 0.3, 1.5] {
            for &x in &[-0.6, -0.1, 0.25, 0.6] {
                let fd = (tan_kappa(x, kappa + h) - tan_kappa(x, kappa - h)) / (2.0 * h);
                assert_close(tan_kappa_dkappa(x, kappa), fd, 1e-4);
                let fd = (atan_kappa(x, kappa + h) - atan_kappa(x, kappa - h)) / (2.0 * h);
                assert_close(atan_kappa_dkappa(x, kappa), fd, 1e-4);
            }
        }
    }

    #[test]
    fn derivative_wrt_kappa_near_zero_uses_taylor() {
        let x = 0.4;
        assert_close(tan_kappa_dkappa(x, 0.0), x * x * x / 3.0, 1e-12);
        assert_close(atan_kappa_dkappa(x, 0.0), -x * x * x / 3.0, 1e-12);
    }
}
