//! # amcad-manifold
//!
//! Constant-curvature geometry for the AMCAD reproduction (ICDE 2022).
//!
//! The paper represents graph entities in a *product of unified
//! κ-stereographic spaces* `U^d_κ`: a single smooth model that degenerates to
//! the Poincaré ball for `κ < 0`, to (rescaled) Euclidean space for `κ = 0`
//! and to the stereographic sphere for `κ > 0` (Table I / Table II of the
//! paper).  This crate provides:
//!
//! * the curvature-dependent trigonometry [`scalar::tan_kappa`] /
//!   [`scalar::atan_kappa`] with smooth behaviour across `κ = 0`,
//! * gyrovector-space point operations on slices — Möbius addition,
//!   exponential/logarithmic maps, geodesic distance, κ-matrix
//!   multiplication and κ-activations ([`ops`]),
//! * the [`UnifiedSpace`] descriptor for a single constant-curvature
//!   subspace and [`ProductManifold`] for the mixed-curvature product space
//!   used by the node encoder and the MNN retrieval index,
//! * plain-`f64` reference implementations that the autodiff crate is
//!   property-tested against.
//!
//! Everything here is dependency-free scalar/slice math so it can be reused
//! by the offline trainer, the nearest-neighbour index builder and the
//! online retrieval simulator alike.

pub mod ops;
pub mod product;
pub mod scalar;
pub mod space;

pub use ops::{
    distance, distance_gram, exp_map, exp_map_origin, kappa_activation, kappa_matmul, lambda_x,
    log_map, log_map_origin, mobius_add, mobius_neg, project_to_ball,
};
pub use product::{ProductManifold, ProductPoint, SubspaceSpec};
pub use scalar::{atan_kappa, cos_kappa, sin_kappa, tan_kappa, KAPPA_EPS};
pub use space::{Curvature, SpaceKind, UnifiedSpace};

/// Numerical guard used when projecting points back inside the Poincaré ball
/// (the paper's "out of boundary" stability issue, Section V-B).
pub const BOUNDARY_EPS: f64 = 1e-5;

/// Minimum norm under which direction vectors are treated as zero.
pub const MIN_NORM: f64 = 1e-15;

/// Euclidean dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean norm of a slice.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm_agree() {
        let a = [3.0, 4.0];
        assert!((norm(&a) - 5.0).abs() < 1e-12);
        assert!((norm_sq(&a) - 25.0).abs() < 1e-12);
        assert!((dot(&a, &a) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0];
        assert_eq!(dot(&a, &b), 0.0);
    }
}
